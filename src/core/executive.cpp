#include "core/executive.hpp"

#include <algorithm>
#include <cstring>

#include "cluster/relay.hpp"
#include "core/factory.hpp"
#include "core/transport.hpp"
#include "i2o/wire.hpp"
#include "util/clock.hpp"

namespace xdaq::core {

namespace {

/// Patches the 12-bit target field of an encoded frame in place.
void patch_target(std::span<std::byte> frame, i2o::Tid tid) noexcept {
  std::uint32_t word = i2o::get_u32(frame, 4);
  word = (word & ~0x00000FFFu) | tid;
  i2o::put_u32(frame, 4, word);
}

/// Patches the 12-bit initiator field of an encoded frame in place.
void patch_initiator(std::span<std::byte> frame, i2o::Tid tid) noexcept {
  std::uint32_t word = i2o::get_u32(frame, 4);
  word = (word & ~0x00FFF000u) | (static_cast<std::uint32_t>(tid) << 12);
  i2o::put_u32(frame, 4, word);
}

/// Bounds on the store-and-forward retry queue: envelopes beyond the queue
/// cap or the per-envelope attempt cap are dropped and counted, never
/// buffered without limit.
constexpr std::size_t kMaxRelayRetryQueue = 128;
constexpr std::uint32_t kMaxRelayRetryAttempts = 512;

std::unique_ptr<mem::Pool> make_pool(const ExecutiveConfig& config) {
  if (config.pool_kind == ExecutiveConfig::PoolKind::Simple) {
    return std::make_unique<mem::SimplePool>();
  }
  return std::make_unique<mem::TablePool>(mem::TablePool::kDefaultMinClass,
                                          config.pool_hugepages);
}

/// shard_of_ stores shard indices in a uint8_t per TiD.
constexpr std::size_t kMaxShards = 255;

}  // namespace

void ExecCounters::wire(obs::MetricsRegistry& registry) {
  posted = &registry.counter("exec.posted");
  dispatched = &registry.counter("exec.dispatched");
  sent_local = &registry.counter("exec.sent_local");
  sent_remote = &registry.counter("exec.sent_remote");
  failed_replies = &registry.counter("exec.failed_replies");
  dropped_unknown = &registry.counter("exec.dropped_unknown");
  dropped_malformed = &registry.counter("exec.dropped_malformed");
  default_handled = &registry.counter("exec.default_handled");
  rejected_disabled = &registry.counter("exec.rejected_disabled");
  watchdog_trips = &registry.counter("exec.watchdog_trips");
  timer_fires = &registry.counter("exec.timer_fires");
  peer_state_changes = &registry.counter("exec.peer_state_changes");
  synth_unavailable = &registry.counter("exec.synth_unavailable");
  dispatch_batches = &registry.counter("exec.dispatch_batches");
  steals = &registry.counter("exec.steals");
  stolen_items = &registry.counter("exec.stolen_items");
}

/// Thread-local owner mark for dispatch_active(): set while a thread runs
/// one of this executive's dispatch batches. A plain global atomic cannot
/// answer "is MY calling thread inside a batch" once N loops dispatch
/// concurrently.
thread_local const Executive* t_dispatch_exec = nullptr;

bool Executive::dispatch_active() const noexcept {
  return t_dispatch_exec == this;
}

const Scheduler& Executive::scheduler() const noexcept {
  return shards_[0]->scheduler;
}

const Scheduler& Executive::scheduler(std::size_t idx) const noexcept {
  return shards_[idx]->scheduler;
}

Executive::Executive(ExecutiveConfig config)
    : config_(std::move(config)),
      log_("exec/" + config_.name),
      pool_(make_pool(config_)),
      probes_(config_.probe_capacity) {
  instrument_.store(config_.instrument, std::memory_order_relaxed);
  if (config_.trace_capacity > 0) {
    trace_ring_.resize(config_.trace_capacity);
  }

  const std::size_t n_shards =
      std::clamp<std::size_t>(config_.shards, 1, kMaxShards);
  config_.shards = n_shards;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.inbound_capacity));
  }
  if (n_shards > 1) {
    for (std::size_t i = 0; i < n_shards; ++i) {
      const std::string prefix = "exec.shard" + std::to_string(i);
      shards_[i]->dispatched = &metrics_.counter(prefix + ".dispatched");
      shards_[i]->batches = &metrics_.counter(prefix + ".batches");
      shards_[i]->steals = &metrics_.counter(prefix + ".steals");
    }
  }

  // Observability: counters always run (they predate the obs layer);
  // the hop trace ring and the dispatch timing histogram are the optional
  // paths XDAQ_OBS_OFF / observe=false switch off.
  stats_.wire(metrics_);
  obs_on_ = config_.observe && obs::enabled();
  if (obs_on_) {
    if (config_.hop_trace_capacity > 0) {
      hops_ = std::make_unique<obs::TraceRing>(config_.hop_trace_capacity);
    }
    // Per-dispatch cost in raw rdtsc ticks, sampled 1-in-64 (see
    // dispatch()); no calibration on the hot path. 64 linear bins to 256k
    // ticks (~0.1 ms at typical clock rates); slower dispatches count as
    // overflow, which is itself the signal that matters.
    dispatch_ticks_ =
        &metrics_.histogram("exec.dispatch_ticks", 0.0, 262144.0, 64);
  }
  // Scheduler depth/served per priority and pool stats are sampled at
  // snapshot time instead of double-counted on the hot path. Per-priority
  // figures aggregate across shards under the pre-sharding names, so
  // existing dashboards keep working; per-shard pending and the stolen
  // total appear only when there is more than one shard.
  metrics_.register_probe([this](std::vector<obs::Sample>& out) {
    for (int p = 0; p < static_cast<int>(i2o::kNumPriorities); ++p) {
      std::int64_t depth = 0;
      std::int64_t served = 0;
      for (const auto& sh : shards_) {
        depth += static_cast<std::int64_t>(sh->scheduler.depth_at(p));
        served += static_cast<std::int64_t>(sh->scheduler.served_at(p));
      }
      out.push_back({"sched.pending.p" + std::to_string(p), depth});
      out.push_back({"sched.served.p" + std::to_string(p), served});
    }
    if (shards_.size() > 1) {
      std::int64_t stolen = 0;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        out.push_back(
            {"sched.shard" + std::to_string(i) + ".pending",
             static_cast<std::int64_t>(shards_[i]->scheduler.pending())});
        stolen += static_cast<std::int64_t>(shards_[i]->scheduler.stolen());
      }
      out.push_back({"sched.stolen", stolen});
    }
    const mem::PoolStats ps = pool_->stats();
    out.push_back({"pool.allocs", static_cast<std::int64_t>(ps.allocs)});
    out.push_back({"pool.frees", static_cast<std::int64_t>(ps.frees)});
    out.push_back({"pool.grows", static_cast<std::int64_t>(ps.grows)});
    out.push_back({"pool.failures",
                   static_cast<std::int64_t>(ps.failures)});
    out.push_back({"pool.outstanding",
                   static_cast<std::int64_t>(ps.outstanding)});
    out.push_back({"pool.bytes_reserved",
                   static_cast<std::int64_t>(ps.bytes_reserved)});
    // Block allocations vs. views cut from them: together these tell how
    // many frames flowed through without a private block of their own.
    out.push_back({"pool.views", static_cast<std::int64_t>(ps.views)});
    // Bytes of pool arena memory actually backed by huge pages (0 when
    // pool_hugepages is off or the system granted none).
    out.push_back({"pool.hugepages",
                   static_cast<std::int64_t>(ps.hugepage_bytes)});
  });

  // cluster.relay.* counters: the store-and-forward path's audit trail.
  relay_origin_ = &metrics_.counter("cluster.relay.origin");
  relay_forwarded_ = &metrics_.counter("cluster.relay.forwarded");
  relay_delivered_ = &metrics_.counter("cluster.relay.delivered");
  relay_dropped_ttl_ = &metrics_.counter("cluster.relay.dropped_ttl");
  relay_dropped_noroute_ = &metrics_.counter("cluster.relay.dropped_noroute");
  relay_dropped_queue_ = &metrics_.counter("cluster.relay.dropped_queue");
  relay_requeued_ = &metrics_.counter("cluster.relay.requeued");
  relay_retry_drops_ = &metrics_.counter("cluster.relay.retry_drops");

  // The resolver owns route policy; interning proxies (and naming them)
  // stays the executive's job, injected as a callback so the cluster
  // library never links core.
  resolver_ = std::make_unique<cluster::Resolver>(
      config_.node_id,
      [this](i2o::NodeId node, i2o::Tid remote_tid, i2o::Tid via_pt,
             const std::string& name) -> Result<i2o::Tid> {
        auto proxy = table_.intern_proxy(node, remote_tid, via_pt);
        if (!proxy.is_ok()) {
          return proxy;
        }
        if (!name.empty()) {
          const std::scoped_lock lock(devices_mutex_);
          names_[name] = proxy.value();
        }
        return proxy;
      });

  // The kernel occupies TiD 1, like any other device ("even the executive
  // gets such a TiD").
  auto kernel = std::make_unique<KernelDevice>();
  // Cluster-fabric frames are addressed to TiD 1 because every node has
  // one: relay envelopes hop executive-to-executive, and gossip needs no
  // per-device discovery.
  kernel->bind(i2o::OrgId::kXdaq, cluster::kXfnRelay,
               [this](const MessageContext& ctx) { handle_relay(ctx); });
  kernel->bind(i2o::OrgId::kXdaq, cluster::kXfnGossip,
               [this](const MessageContext& ctx) {
                 std::function<void(std::span<const std::byte>)> sink;
                 {
                   const std::scoped_lock lock(gossip_mutex_);
                   sink = gossip_sink_;
                 }
                 if (sink) {
                   sink(ctx.payload);
                 }
               });
  auto tid = table_.allocate_local(kernel.get());
  // The very first allocation of a fresh table cannot fail or collide.
  kernel->attach(this, tid.value(), config_.name);
  kernel->set_state(DeviceState::Enabled);
  {
    const std::scoped_lock lock(devices_mutex_);
    names_[config_.name] = tid.value();
    devices_[tid.value()] = std::move(kernel);
  }

  timers_ = std::make_unique<TimerService>(
      [this](i2o::Tid target, std::uint32_t timer_id) {
        auto frame = alloc_frame(sizeof(std::uint32_t), /*is_private=*/true);
        if (!frame.is_ok()) {
          log_.warn("timer expiry dropped: ", frame.status().to_string());
          return;
        }
        i2o::FrameHeader hdr;
        hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
        hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kXdaq);
        hdr.xfunction = kXfnTimerExpired;
        hdr.target = target;
        hdr.initiator = kernel_tid();
        auto bytes = frame.value().bytes();
        if (!i2o::encode_header(hdr, bytes).is_ok()) {
          return;
        }
        i2o::put_u32(bytes, i2o::kPrivateHeaderBytes, timer_id);
        stats_.timer_fires->add();
        (void)post(std::move(frame).value());
      });

  if (config_.handler_deadline.count() > 0) {
    watchdog_enabled_ = true;
    watchdog_thread_ = std::thread(
        [this, deadline = config_.handler_deadline] {
          watchdog_main(deadline);
        });
  }
}

Executive::~Executive() {
  stop();
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
  timers_->shutdown();
  // Stop task-mode transports before tearing down devices.
  {
    const std::scoped_lock lock(devices_mutex_);
    for (auto& [tid, dev] : devices_) {
      if (auto* pt = dynamic_cast<TransportDevice*>(dev.get())) {
        pt->transport_down();
      }
    }
  }
  // Drop queued frames before the pool goes away (members destruct in
  // reverse declaration order; being explicit keeps the invariant obvious).
  for (auto& sh : shards_) {
    sh->inbound.close();
    while (sh->inbound.try_pop()) {
    }
    while (sh->scheduler.next()) {
    }
  }
}

// ------------------------------------------------------------ device admin

Result<i2o::Tid> Executive::install(std::unique_ptr<Device> device,
                                    const std::string& instance_name,
                                    const i2o::ParamList& params) {
  if (device == nullptr) {
    return {Errc::InvalidArgument, "null device"};
  }
  if (instance_name.empty()) {
    return {Errc::InvalidArgument, "instance name required"};
  }
  Device* raw = device.get();
  {
    const std::scoped_lock lock(devices_mutex_);
    if (names_.contains(instance_name)) {
      return {Errc::AlreadyExists,
              "instance name in use: " + instance_name};
    }
    auto tid = table_.allocate_local(raw);
    if (!tid.is_ok()) {
      return tid;
    }
    raw->attach(this, tid.value(), instance_name);
    names_[instance_name] = tid.value();
    devices_[tid.value()] = std::move(device);
    // Per-TiD affinity: each device is owned by exactly one shard,
    // assigned round-robin at install time. The kernel bypasses install()
    // and keeps the shard_of_ default, so exec traffic stays on shard 0.
    if (shards_.size() > 1) {
      shard_of_[tid.value() & i2o::kMaxTid].store(
          static_cast<std::uint8_t>(next_shard_ % shards_.size()),
          std::memory_order_relaxed);
      ++next_shard_;
    }
  }
  if (auto* pt = dynamic_cast<TransportDevice*>(raw); pt != nullptr) {
    // Every transport reports liveness into its executive: transitions are
    // counted, and a Down peer immediately fails that node's in-flight
    // requests instead of letting callers burn their timeouts.
    pt->set_peer_state_sink(
        [this](i2o::NodeId node, PeerState from, PeerState to) {
          on_peer_state_change(node, from, to);
        });
    // Each transport's counters join the node's metrics snapshot under
    // "pt.<instance>.*" - sampled at snapshot time, no parallel counters.
    metrics_.register_probe(
        [pt, prefix = "pt." + instance_name](std::vector<obs::Sample>& out) {
          pt->append_metrics(prefix, out);
        });
    {
      const std::scoped_lock lock(polling_mutex_);
      transport_pts_.push_back(pt);
      if (pt->mode() == TransportDevice::Mode::Polling) {
        polling_pts_.push_back(pt);
      }
    }
  }
  // plugin() runs unlocked: "At this point the newly created class can
  // obtain its TiD and retrieve parameter settings from the executive."
  raw->plugin();
  if (!params.empty()) {
    if (Status s = configure(raw->tid(), params); !s.is_ok()) {
      return s;
    }
  }
  log_.info("installed ", raw->class_name(), " as '", instance_name,
            "' tid=", raw->tid());
  return raw->tid();
}

Result<i2o::Tid> Executive::install_class(const std::string& class_name,
                                          const std::string& instance_name,
                                          const i2o::ParamList& params) {
  auto device = DeviceFactory::instance().create(class_name);
  if (!device.is_ok()) {
    return device.status();
  }
  return install(std::move(device).value(), instance_name, params);
}

Device* Executive::device(i2o::Tid tid) const {
  const std::scoped_lock lock(devices_mutex_);
  const auto it = devices_.find(tid);
  return it == devices_.end() ? nullptr : it->second.get();
}

Result<i2o::Tid> Executive::tid_of(const std::string& instance_name) const {
  const std::scoped_lock lock(devices_mutex_);
  const auto it = names_.find(instance_name);
  if (it == names_.end()) {
    return {Errc::NotFound, "unknown instance: " + instance_name};
  }
  return it->second;
}

Status Executive::apply_state_op(Device& dev, i2o::Function fn) {
  const DeviceState s = dev.state();
  switch (fn) {
    case i2o::Function::ExecConfigure:
      return {Errc::Internal, "configure handled separately"};
    case i2o::Function::ExecEnable:
      if (s != DeviceState::Loaded && s != DeviceState::Configured) {
        return {Errc::FailedPrecondition,
                "enable requires Loaded/Configured state"};
      }
      if (Status st = dev.on_enable(); !st.is_ok()) {
        return st;
      }
      dev.set_state(DeviceState::Enabled);
      return Status::ok();
    case i2o::Function::ExecSuspend:
      if (s != DeviceState::Enabled) {
        return {Errc::FailedPrecondition, "suspend requires Enabled state"};
      }
      if (Status st = dev.on_suspend(); !st.is_ok()) {
        return st;
      }
      dev.set_state(DeviceState::Suspended);
      return Status::ok();
    case i2o::Function::ExecResume:
      if (s != DeviceState::Suspended) {
        return {Errc::FailedPrecondition, "resume requires Suspended state"};
      }
      if (Status st = dev.on_resume(); !st.is_ok()) {
        return st;
      }
      dev.set_state(DeviceState::Enabled);
      return Status::ok();
    case i2o::Function::ExecHalt:
      if (Status st = dev.on_halt(); !st.is_ok()) {
        return st;
      }
      dev.set_state(DeviceState::Halted);
      return Status::ok();
    case i2o::Function::ExecReset:
      dev.set_state(DeviceState::Loaded);
      return Status::ok();
    default:
      return {Errc::Unsupported, "not a state operation"};
  }
}

Status Executive::configure(i2o::Tid tid, const i2o::ParamList& params) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  const DeviceState s = dev->state();
  if (s != DeviceState::Loaded && s != DeviceState::Configured) {
    return {Errc::FailedPrecondition, "configure requires Loaded state"};
  }
  if (Status st = dev->on_configure(params); !st.is_ok()) {
    return st;
  }
  dev->set_state(DeviceState::Configured);
  return Status::ok();
}

Status Executive::enable(i2o::Tid tid) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  return apply_state_op(*dev, i2o::Function::ExecEnable);
}

Status Executive::suspend(i2o::Tid tid) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  return apply_state_op(*dev, i2o::Function::ExecSuspend);
}

Status Executive::resume(i2o::Tid tid) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  return apply_state_op(*dev, i2o::Function::ExecResume);
}

Status Executive::halt(i2o::Tid tid) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  return apply_state_op(*dev, i2o::Function::ExecHalt);
}

Status Executive::reset(i2o::Tid tid) {
  Device* dev = device(tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no local device with that TiD"};
  }
  return apply_state_op(*dev, i2o::Function::ExecReset);
}

Status Executive::enable_all() {
  std::vector<i2o::Tid> tids;
  {
    const std::scoped_lock lock(devices_mutex_);
    for (const auto& [tid, dev] : devices_) {
      if (tid != kernel_tid()) {
        tids.push_back(tid);
      }
    }
  }
  for (const i2o::Tid tid : tids) {
    Device* dev = device(tid);
    if (dev == nullptr) {
      continue;
    }
    const DeviceState s = dev->state();
    if (s == DeviceState::Enabled) {
      continue;
    }
    if (Status st = enable(tid); !st.is_ok()) {
      return st;
    }
  }
  return Status::ok();
}

// ----------------------------------------------------- transports & remotes

Status Executive::set_route(i2o::NodeId node, i2o::Tid pt_tid) {
  auto pt = transport_for(pt_tid);
  if (!pt.is_ok()) {
    return pt.status();
  }
  resolver_->routes().set_direct(node, pt_tid);
  return Status::ok();
}

Result<i2o::Tid> Executive::register_remote(i2o::NodeId node,
                                            i2o::Tid remote_tid,
                                            const std::string& name) {
  return resolver_->resolve(node, remote_tid, name);
}

Result<i2o::Tid> Executive::register_remote_via(i2o::NodeId node,
                                                i2o::Tid remote_tid,
                                                i2o::Tid pt_tid,
                                                const std::string& name) {
  auto pt = transport_for(pt_tid);
  if (!pt.is_ok()) {
    return pt.status();
  }
  return resolver_->resolve_via(node, remote_tid, pt_tid, name);
}

PeerState Executive::peer_state(i2o::NodeId node) const {
  const cluster::NextHop hop = resolver_->next_hop(node);
  if (hop.kind != cluster::NextHop::Kind::Direct) {
    // Relay-routed peers have no link-level heartbeat from here; gossip
    // owns their liveness.
    return PeerState::Unknown;
  }
  auto pt = transport_for(hop.via_pt);
  return pt.is_ok() ? pt.value()->peer_state(node) : PeerState::Unknown;
}

void Executive::add_peer_state_listener(PeerStateListener listener) {
  if (!listener) {
    return;
  }
  const std::scoped_lock lock(listeners_mutex_);
  peer_listeners_.push_back(std::move(listener));
}

void Executive::set_gossip_sink(
    std::function<void(std::span<const std::byte>)> sink) {
  const std::scoped_lock lock(gossip_mutex_);
  gossip_sink_ = std::move(sink);
}

void Executive::on_peer_state_change(i2o::NodeId node, PeerState from,
                                     PeerState to) {
  stats_.peer_state_changes->add();
  log_.info("peer ", node, " ", to_string(from), " -> ", to_string(to));
  if (to == PeerState::Down) {
    fail_inflight_to(node);
  }
  std::vector<PeerStateListener> listeners;
  {
    const std::scoped_lock lock(listeners_mutex_);
    listeners = peer_listeners_;
  }
  for (const auto& listener : listeners) {
    listener(node, from, to);
  }
}

namespace {
/// Per-node bound on remembered in-flight requests: enough for any sane
/// request/reply fan-out; overflow falls back to caller-side timeouts.
constexpr std::size_t kMaxInflightPerNode = 256;
}  // namespace

void Executive::record_inflight(i2o::NodeId node,
                                const i2o::FrameHeader& hdr) {
  const std::scoped_lock lock(inflight_mutex_);
  auto& records = inflight_[node];
  if (records.size() >= kMaxInflightPerNode) {
    records.erase(records.begin());
  }
  records.push_back(hdr);
}

void Executive::resolve_inflight(i2o::NodeId node,
                                 const i2o::FrameHeader& reply) {
  const std::scoped_lock lock(inflight_mutex_);
  const auto it = inflight_.find(node);
  if (it == inflight_.end()) {
    return;
  }
  // The wire reply's target is the original initiator (the remote patched
  // it back); match on that plus the transaction context.
  auto& records = it->second;
  for (auto r = records.begin(); r != records.end(); ++r) {
    if (r->initiator == reply.target &&
        r->transaction_context == reply.transaction_context) {
      records.erase(r);
      break;
    }
  }
  if (records.empty()) {
    inflight_.erase(it);
  }
}

void Executive::fail_inflight_to(i2o::NodeId node) {
  std::vector<i2o::FrameHeader> orphaned;
  {
    const std::scoped_lock lock(inflight_mutex_);
    const auto it = inflight_.find(node);
    if (it == inflight_.end()) {
      return;
    }
    orphaned = std::move(it->second);
    inflight_.erase(it);
  }
  // Synthesize the reply the dead peer will never send: FAIL-flagged, with
  // the error category in the parameter payload. Waiters (Requester and
  // friends) unblock through their normal on_reply path.
  const i2o::ParamList params{
      {"error", std::string(to_string(Errc::PeerDown)) + ": peer " +
                    std::to_string(node) + " is down"}};
  for (const i2o::FrameHeader& request : orphaned) {
    i2o::FrameHeader reply_hdr = i2o::make_reply_header(
        request, /*failed=*/true);
    reply_hdr.sgl_offset_words = 0;  // the synthesized reply carries no SGL
    auto frame = alloc_frame(i2o::param_list_bytes(params),
                             reply_hdr.is_private());
    if (!frame.is_ok()) {
      continue;
    }
    auto bytes = frame.value().bytes();
    if (!i2o::encode_header(reply_hdr, bytes).is_ok()) {
      continue;
    }
    if (!i2o::encode_param_list(params,
                                bytes.subspan(reply_hdr.header_bytes()))
             .is_ok()) {
      continue;
    }
    // Count before posting: the waiter can observe the reply (and read
    // stats) the instant post() enqueues it.
    stats_.synth_unavailable->add();
    if (!post(std::move(frame).value()).is_ok()) {
      stats_.synth_unavailable->sub();
    }
  }
}

Result<TransportDevice*> Executive::transport_for(i2o::Tid pt_tid) const {
  Device* dev = device(pt_tid);
  if (dev == nullptr) {
    return {Errc::NotFound, "no device with PT TiD"};
  }
  auto* pt = dynamic_cast<TransportDevice*>(dev);
  if (pt == nullptr) {
    return {Errc::InvalidArgument, "device is not a peer transport"};
  }
  return pt;
}

// ----------------------------------------------------------------- messaging

Result<mem::FrameRef> Executive::alloc_frame(std::size_t payload_bytes,
                                             bool is_private) {
  if (payload_bytes > i2o::kMaxPayloadBytes) {
    return {Errc::InvalidArgument,
            "payload exceeds one-frame limit; use chaining or an SGL"};
  }
  return pool_->allocate(
      i2o::frame_bytes_for_payload(payload_bytes, is_private));
}

Status Executive::post(mem::FrameRef frame) {
  auto hdr = i2o::decode_header(frame.bytes());
  if (!hdr.is_ok()) {
    stats_.dropped_malformed->add();
    return hdr.status();
  }
  ScheduledItem in;
  in.header = hdr.value();
  in.frame = std::move(frame);
  // Routed by target TiD to the owning shard's inbound queue (the single
  // queue at N=1).
  if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
    stats_.dropped_malformed->add();
    return {Errc::ResourceExhausted, "inbound queue full"};
  }
  stats_.posted->add();
  return Status::ok();
}

std::size_t Executive::post_batch(std::span<mem::FrameRef> frames) {
  if (frames.empty()) {
    return 0;
  }
  // Validate every frame up front so the queue sees one homogeneous burst.
  // The staging vector holds (header, frame*) pairs - not ScheduledItems -
  // so the queue elements are built in place under the queue lock
  // (push_batch_make) instead of being staged and moved a second time.
  // thread_local: a producer posting bursts in a loop reuses the
  // allocation instead of paying a heap round trip per call.
  struct Validated {
    i2o::FrameHeader header;
    mem::FrameRef* frame;
  };
  thread_local std::vector<Validated> valid;
  valid.clear();
  valid.reserve(frames.size());
  for (mem::FrameRef& frame : frames) {
    auto hdr = i2o::decode_header(frame.bytes());
    if (!hdr.is_ok()) {
      stats_.dropped_malformed->add();
      frame.reset();
      continue;
    }
    valid.push_back({hdr.value(), &frame});
  }
  std::size_t pushed = 0;
  if (shards_.size() == 1) {
    pushed = shards_[0]->inbound.push_batch_make(
        std::span<Validated>(valid), [](Validated&& v) {
          ScheduledItem in;
          in.header = v.header;
          in.frame = std::move(*v.frame);
          return in;
        });
    // Backpressure: frames past the accepted prefix go back to the pool.
    for (std::size_t i = pushed; i < valid.size(); ++i) {
      stats_.dropped_malformed->add();
      valid[i].frame->reset();
    }
  } else {
    // Multi-shard: the burst fans out by target TiD. Per-item pushes keep
    // per-device FIFO order (all of one device's frames hit one queue in
    // submission order); the single-queue batching fast path above is the
    // one the N=1 hot path keeps.
    for (Validated& v : valid) {
      ScheduledItem in;
      in.header = v.header;
      in.frame = std::move(*v.frame);
      if (shard_for(in.header.target).inbound.try_push(std::move(in))) {
        ++pushed;
      } else {
        stats_.dropped_malformed->add();
        in.frame.reset();
      }
    }
  }
  if (pushed > 0) {
    stats_.posted->add(pushed);
  }
  return pushed;
}

Status Executive::frame_send(mem::FrameRef frame) {
  auto hdr = i2o::decode_header(frame.bytes());
  if (!hdr.is_ok()) {
    return hdr.status();
  }
  record_hop(hdr.value(), obs::Hop::Send);
  // Local targets resolve through the flat table without touching the
  // address-table mutex; only proxies (and misses) take the slow path.
  if (table_.local_device(hdr.value().target) != nullptr) {
    ScheduledItem in;
    in.header = hdr.value();
    in.frame = std::move(frame);
    if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
      return {Errc::ResourceExhausted, "inbound queue full"};
    }
    stats_.posted->add();
    stats_.sent_local->add();
    return Status::ok();
  }
  auto entry = table_.lookup(hdr.value().target);
  if (!entry.is_ok()) {
    stats_.dropped_unknown->add();
    return {Errc::Unroutable, "target TiD not in address table"};
  }
  if (entry.value().kind == AddressEntry::Kind::Local) {
    ScheduledItem in;
    in.header = hdr.value();
    in.frame = std::move(frame);
    if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
      return {Errc::ResourceExhausted, "inbound queue full"};
    }
    stats_.posted->add();
    stats_.sent_local->add();
    return Status::ok();
  }

  // Proxy: rewrite the target to the remote node's local TiD and push the
  // encoded frame through the routed peer transport.
  const AddressEntry& proxy = entry.value();
  if (proxy.via_pt == i2o::kNullTid) {
    // Relay-routed proxy: no direct transport. Wrap the frame in an
    // envelope and hand it to the current next hop - resolved per frame,
    // so a route upgraded to Direct by gossip is used immediately.
    return relay_send(std::move(frame), proxy, hdr.value());
  }
  auto pt = transport_for(proxy.via_pt);
  if (!pt.is_ok()) {
    return {Errc::Unroutable, "proxy's peer transport is gone"};
  }
  // Liveness gate: a peer already declared Down fails synchronously - the
  // caller learns within one call instead of one timeout.
  if (pt.value()->peer_state(proxy.node) == PeerState::Down) {
    return {Errc::Unavailable, "peer node is down"};
  }
  patch_target(frame.bytes(), proxy.remote_tid);
  // Hand the live reference to the transport: zero-copy transports gather
  // straight from pooled memory and hold the ref until the kernel has the
  // bytes; the base-class fallback degrades to the span path.
  Status sent =
      pt.value()->transport_send_frame(proxy.node, std::move(frame));
  if (sent.is_ok()) {
    stats_.sent_remote->add();
    record_hop(hdr.value(), obs::Hop::TxWire);
    // Remember requests awaiting a remote reply so a peer death can
    // synthesize their FAIL replies immediately.
    if (!hdr.value().is_reply() && hdr.value().initiator != i2o::kNullTid) {
      record_inflight(proxy.node, hdr.value());
    }
  }
  return sent;
}

Status Executive::deliver_from_wire(i2o::NodeId src_node, i2o::Tid pt_tid,
                                    std::span<const std::byte> wire,
                                    std::uint64_t t_wire) {
  auto hdr = i2o::decode_header(wire);
  if (!hdr.is_ok()) {
    stats_.dropped_malformed->add();
    return hdr.status();
  }
  record_hop(hdr.value(), obs::Hop::RxWire);
  auto frame = pool_->allocate(wire.size());
  if (!frame.is_ok()) {
    return frame.status();
  }
  std::memcpy(frame.value().bytes().data(), wire.data(), wire.size());

  // A reply from this node settles the matching in-flight record (if the
  // peer later dies, no FAIL frame is synthesized for it).
  if (hdr.value().is_reply()) {
    resolve_inflight(src_node, hdr.value());
  }

  // Transparent reply routing: intern a proxy for the remote initiator and
  // substitute it, so local code can reply without knowing about nodes.
  i2o::FrameHeader header = hdr.value();
  if (header.initiator != i2o::kNullTid) {
    auto proxy = table_.intern_proxy(src_node, header.initiator, pt_tid);
    if (!proxy.is_ok()) {
      return proxy.status();
    }
    patch_initiator(frame.value().bytes(), proxy.value());
    header.initiator = proxy.value();
  }

  ScheduledItem in;
  in.header = header;
  in.frame = std::move(frame).value();
  if (instrument_.load(std::memory_order_relaxed)) {
    in.probe.t_wire = t_wire != 0 ? t_wire : rdtsc();
    in.probe.t_posted = rdtsc();
  }
  // Shard routing happens here, at delivery time: the receiving transport
  // thread hands the frame straight to the owning shard's inbound queue.
  if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
    return {Errc::ResourceExhausted, "inbound queue full"};
  }
  stats_.posted->add();
  return Status::ok();
}

Status Executive::deliver_from_wire(i2o::NodeId src_node, i2o::Tid pt_tid,
                                    mem::FrameRef frame,
                                    std::uint64_t t_wire) {
  auto hdr = i2o::decode_header(frame.bytes());
  if (!hdr.is_ok()) {
    stats_.dropped_malformed->add();
    return hdr.status();
  }
  record_hop(hdr.value(), obs::Hop::RxWire);

  if (hdr.value().is_reply()) {
    resolve_inflight(src_node, hdr.value());
  }

  // Same proxy interning as the span overload, but the initiator rewrite
  // happens in place in the pooled bytes the transport received into - no
  // allocation, no memcpy. Sibling views of the same rx block are
  // disjoint, so the in-place patch cannot corrupt a neighbour frame.
  i2o::FrameHeader header = hdr.value();
  if (header.initiator != i2o::kNullTid) {
    auto proxy = table_.intern_proxy(src_node, header.initiator, pt_tid);
    if (!proxy.is_ok()) {
      return proxy.status();
    }
    patch_initiator(frame.bytes(), proxy.value());
    header.initiator = proxy.value();
  }

  ScheduledItem in;
  in.header = header;
  in.frame = std::move(frame);
  if (instrument_.load(std::memory_order_relaxed)) {
    in.probe.t_wire = t_wire != 0 ? t_wire : rdtsc();
    in.probe.t_posted = rdtsc();
  }
  // Same shard routing as the span overload: zero-copy views go to the
  // owning shard's queue directly from the transport thread.
  if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
    return {Errc::ResourceExhausted, "inbound queue full"};
  }
  stats_.posted->add();
  return Status::ok();
}

// -------------------------------------------------------------- relay fabric

Status Executive::relay_send(mem::FrameRef frame, const AddressEntry& proxy,
                             const i2o::FrameHeader& hdr) {
  const cluster::NextHop hop = resolver_->next_hop(proxy.node);
  if (hop.kind == cluster::NextHop::Kind::Direct) {
    // Gossip learned a direct link since the proxy was interned: skip the
    // envelope entirely. The relay-routed proxy TiD keeps working; only
    // the per-frame hop decision changes.
    auto pt = transport_for(hop.via_pt);
    if (!pt.is_ok()) {
      return {Errc::Unroutable, "proxy's peer transport is gone"};
    }
    if (pt.value()->peer_state(proxy.node) == PeerState::Down) {
      return {Errc::Unavailable, "peer node is down"};
    }
    patch_target(frame.bytes(), proxy.remote_tid);
    Status sent =
        pt.value()->transport_send_frame(proxy.node, std::move(frame));
    if (sent.is_ok()) {
      stats_.sent_remote->add();
      record_hop(hdr, obs::Hop::TxWire);
      if (!hdr.is_reply() && hdr.initiator != i2o::kNullTid) {
        record_inflight(proxy.node, hdr);
      }
    }
    return sent;
  }
  if (hop.kind != cluster::NextHop::Kind::Relay) {
    relay_dropped_noroute_->add();
    return {Errc::Unroutable, "no route to relay-proxied node"};
  }

  // Pre-patch the inner frame's target to its TiD on the destination node:
  // intermediate hops forward the envelope without unwrapping, so the
  // inner bytes must already be final here.
  patch_target(frame.bytes(), proxy.remote_tid);
  const std::span<const std::byte> inner = frame.bytes();
  if (cluster::kRelayHeaderBytes + inner.size() > i2o::kMaxPayloadBytes) {
    return {Errc::InvalidArgument, "frame too large to relay"};
  }
  auto env = alloc_frame(cluster::kRelayHeaderBytes + inner.size(),
                         /*is_private=*/true);
  if (!env.is_ok()) {
    return env.status();
  }
  i2o::FrameHeader env_hdr;
  env_hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  env_hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kXdaq);
  env_hdr.xfunction = cluster::kXfnRelay;
  // Every node's kernel lives at TiD 1, so the envelope target needs no
  // patching at any hop; null initiator = envelopes get no replies.
  env_hdr.target = i2o::kExecutiveTid;
  env_hdr.initiator = i2o::kNullTid;
  auto bytes = env.value().bytes();
  if (Status s = i2o::encode_header(env_hdr, bytes); !s.is_ok()) {
    return s;
  }
  cluster::RelayHeader rh;
  rh.src = config_.node_id;
  rh.dst = proxy.node;
  rh.ttl = resolver_->initial_ttl();
  rh.inner_len = static_cast<std::uint32_t>(inner.size());
  auto payload = bytes.subspan(i2o::kPrivateHeaderBytes);
  cluster::encode_relay_header(rh, payload);
  std::memcpy(payload.data() + cluster::kRelayHeaderBytes, inner.data(),
              inner.size());
  Status sent = send_envelope(proxy.node, std::move(env).value());
  if (sent.is_ok()) {
    relay_origin_->add();
    stats_.sent_remote->add();
    record_hop(hdr, obs::Hop::TxWire);
    if (!hdr.is_reply() && hdr.initiator != i2o::kNullTid) {
      record_inflight(proxy.node, hdr);
    }
  }
  return sent;
}

Status Executive::send_envelope(i2o::NodeId dst, mem::FrameRef envelope) {
  const cluster::NextHop hop = resolver_->next_hop(dst);
  i2o::NodeId hop_node = dst;
  i2o::Tid hop_pt = hop.via_pt;
  if (hop.kind == cluster::NextHop::Kind::Relay) {
    const cluster::NextHop via = resolver_->next_hop(hop.relay_node);
    if (via.kind != cluster::NextHop::Kind::Direct) {
      return {Errc::Unroutable, "relay hop is not directly reachable"};
    }
    hop_node = hop.relay_node;
    hop_pt = via.via_pt;
  } else if (hop.kind != cluster::NextHop::Kind::Direct) {
    return {Errc::Unroutable, "no route to envelope destination"};
  }
  auto pt = transport_for(hop_pt);
  if (!pt.is_ok()) {
    return pt.status();
  }
  if (pt.value()->peer_state(hop_node) == PeerState::Down) {
    return {Errc::Unavailable, "relay hop peer is down"};
  }
  return pt.value()->transport_send_frame(hop_node, std::move(envelope));
}

void Executive::handle_relay(const MessageContext& ctx) {
  auto rh = cluster::decode_relay_header(ctx.payload);
  if (!rh.is_ok()) {
    stats_.dropped_malformed->add();
    return;
  }
  if (rh.value().dst == config_.node_id) {
    relay_delivered_->add();
    (void)deliver_relayed(rh.value().src,
                          cluster::relay_inner(rh.value(), ctx.payload));
    return;
  }
  // Loop guard: an envelope bouncing between stale routes burns its TTL
  // and dies here instead of circulating forever.
  if (rh.value().ttl <= 1) {
    relay_dropped_ttl_->add();
    return;
  }
  // Forward zero-copy: bump the refcount on the delivered frame and patch
  // the TTL byte in place (we are the frame's only owner at dispatch).
  mem::FrameRef fwd = ctx.frame;
  cluster::patch_relay_ttl(fwd.bytes().subspan(i2o::kPrivateHeaderBytes),
                           static_cast<std::uint8_t>(rh.value().ttl - 1));
  Status sent = send_envelope(rh.value().dst, std::move(fwd));
  if (sent.is_ok()) {
    relay_forwarded_->add();
    return;
  }
  // Transient failure (backpressure, peer reconnecting): park the envelope
  // in a bounded retry queue drained from shard 0's pump.
  {
    const std::scoped_lock lock(relay_mutex_);
    if (relay_retry_.size() < kMaxRelayRetryQueue) {
      relay_requeued_->add();
      relay_retry_.push_back(PendingRelay{ctx.frame, 0});
      relay_pending_.store(true, std::memory_order_release);
      return;
    }
  }
  relay_dropped_queue_->add();
  fail_relayed_envelope(ctx.frame);
}

void Executive::fail_relayed_envelope(const mem::FrameRef& envelope) {
  relay_retry_drops_->add();
  const auto env_payload =
      envelope.bytes().subspan(i2o::kPrivateHeaderBytes);
  auto rh = cluster::decode_relay_header(env_payload);
  if (!rh.is_ok()) {
    return;
  }
  auto inner_hdr =
      i2o::decode_header(cluster::relay_inner(rh.value(), env_payload));
  if (!inner_hdr.is_ok() || inner_hdr.value().is_reply() ||
      inner_hdr.value().initiator == i2o::kNullTid) {
    return;  // nothing awaits this envelope; the drop stays a drop
  }
  i2o::FrameHeader reply_hdr =
      i2o::make_reply_header(inner_hdr.value(), /*failed=*/true);
  reply_hdr.sgl_offset_words = 0;
  const i2o::ParamList params{
      {"error", std::string(to_string(Errc::ResourceExhausted)) +
                    ": relay retry queue overflow at node " +
                    std::to_string(config_.node_id)}};
  auto reply = alloc_frame(i2o::param_list_bytes(params),
                           reply_hdr.is_private());
  if (!reply.is_ok()) {
    return;
  }
  auto reply_bytes = reply.value().bytes();
  if (!i2o::encode_header(reply_hdr, reply_bytes).is_ok() ||
      !i2o::encode_param_list(
           params, reply_bytes.subspan(reply_hdr.header_bytes()))
           .is_ok()) {
    return;
  }
  const std::span<const std::byte> wire = reply.value().bytes();
  if (cluster::kRelayHeaderBytes + wire.size() > i2o::kMaxPayloadBytes) {
    return;
  }
  auto env = alloc_frame(cluster::kRelayHeaderBytes + wire.size(),
                         /*is_private=*/true);
  if (!env.is_ok()) {
    return;
  }
  i2o::FrameHeader env_hdr;
  env_hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  env_hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kXdaq);
  env_hdr.xfunction = cluster::kXfnRelay;
  env_hdr.target = i2o::kExecutiveTid;
  env_hdr.initiator = i2o::kNullTid;
  auto env_bytes = env.value().bytes();
  if (!i2o::encode_header(env_hdr, env_bytes).is_ok()) {
    return;
  }
  cluster::RelayHeader back;
  // The reply envelope claims the unreachable DESTINATION as its source:
  // that is the node the initiator's executive recorded the request
  // in-flight against, so resolve_inflight and the reply's initiator
  // proxy both line up at the origin.
  back.src = rh.value().dst;
  back.dst = rh.value().src;
  back.ttl = resolver_->initial_ttl();
  back.inner_len = static_cast<std::uint32_t>(wire.size());
  auto back_payload = env_bytes.subspan(i2o::kPrivateHeaderBytes);
  cluster::encode_relay_header(back, back_payload);
  std::memcpy(back_payload.data() + cluster::kRelayHeaderBytes, wire.data(),
              wire.size());
  (void)send_envelope(back.dst, std::move(env).value());
}

Status Executive::deliver_relayed(i2o::NodeId src_node,
                                  std::span<const std::byte> wire) {
  auto hdr = i2o::decode_header(wire);
  if (!hdr.is_ok()) {
    stats_.dropped_malformed->add();
    return hdr.status();
  }
  auto frame = pool_->allocate(wire.size());
  if (!frame.is_ok()) {
    return frame.status();
  }
  std::memcpy(frame.value().bytes().data(), wire.data(), wire.size());

  // The origin recorded the in-flight request against this node id, so a
  // relayed reply settles it just like a direct wire reply would.
  if (hdr.value().is_reply()) {
    resolve_inflight(src_node, hdr.value());
  }

  // Reply routing for relayed traffic goes through the resolver: if we
  // have a direct link back to the origin the proxy uses it, otherwise
  // the reply relays through the route table like any other frame.
  i2o::FrameHeader header = hdr.value();
  if (header.initiator != i2o::kNullTid) {
    auto proxy = resolver_->resolve(src_node, header.initiator);
    if (!proxy.is_ok()) {
      relay_dropped_noroute_->add();
      return proxy.status();
    }
    patch_initiator(frame.value().bytes(), proxy.value());
    header.initiator = proxy.value();
  }

  ScheduledItem in;
  in.header = header;
  in.frame = std::move(frame).value();
  if (!shard_for(in.header.target).inbound.try_push(std::move(in))) {
    return {Errc::ResourceExhausted, "inbound queue full"};
  }
  stats_.posted->add();
  return Status::ok();
}

void Executive::drain_relay_queue() {
  std::vector<PendingRelay> pending;
  {
    const std::scoped_lock lock(relay_mutex_);
    pending.swap(relay_retry_);
    relay_pending_.store(false, std::memory_order_release);
  }
  std::vector<PendingRelay> still_pending;
  for (PendingRelay& p : pending) {
    auto rh = cluster::decode_relay_header(
        p.frame.bytes().subspan(i2o::kPrivateHeaderBytes));
    if (!rh.is_ok()) {
      continue;
    }
    mem::FrameRef fwd = p.frame;
    if (send_envelope(rh.value().dst, std::move(fwd)).is_ok()) {
      relay_forwarded_->add();
      continue;
    }
    if (++p.attempts >= kMaxRelayRetryAttempts) {
      relay_dropped_queue_->add();
      fail_relayed_envelope(p.frame);
      continue;
    }
    still_pending.push_back(std::move(p));
  }
  // Overflow victims are failed outside relay_mutex_: the FAIL synthesis
  // allocates and sends, neither of which belongs under the queue lock.
  std::vector<PendingRelay> overflow;
  if (!still_pending.empty()) {
    const std::scoped_lock lock(relay_mutex_);
    for (PendingRelay& p : still_pending) {
      if (relay_retry_.size() >= kMaxRelayRetryQueue) {
        overflow.push_back(std::move(p));
        continue;
      }
      relay_retry_.push_back(std::move(p));
    }
    if (!relay_retry_.empty()) {
      relay_pending_.store(true, std::memory_order_release);
    }
  }
  for (PendingRelay& p : overflow) {
    relay_dropped_queue_->add();
    fail_relayed_envelope(p.frame);
  }
}

// -------------------------------------------------------------------- timers

std::uint32_t Executive::arm_timer(i2o::Tid target,
                                   std::chrono::nanoseconds delay,
                                   std::chrono::nanoseconds period) {
  return timers_->arm(target, delay, period);
}

bool Executive::cancel_timer(std::uint32_t timer_id) {
  return timers_->cancel(timer_id);
}

// --------------------------------------------------------------- events

Status Executive::register_event_listener(i2o::Tid source,
                                          i2o::Tid listener,
                                          std::uint32_t mask) {
  if (listener == i2o::kNullTid) {
    return {Errc::InvalidArgument, "listener TiD required"};
  }
  const std::scoped_lock lock(events_mutex_);
  auto& listeners = event_listeners_[source];
  for (auto it = listeners.begin(); it != listeners.end(); ++it) {
    if (it->listener == listener) {
      if (mask == 0) {
        listeners.erase(it);  // mask 0 = unregister
      } else {
        it->mask = mask;
      }
      return Status::ok();
    }
  }
  if (mask != 0) {
    listeners.push_back(EventListener{listener, mask});
  }
  return Status::ok();
}

std::size_t Executive::post_event(i2o::Tid source, std::uint32_t event_code,
                                  std::span<const std::byte> payload) {
  std::vector<i2o::Tid> targets;
  {
    const std::scoped_lock lock(events_mutex_);
    const auto it = event_listeners_.find(source);
    if (it == event_listeners_.end()) {
      return 0;
    }
    for (const EventListener& l : it->second) {
      if ((l.mask & event_code) != 0 || l.mask == ~0u) {
        targets.push_back(l.listener);
      }
    }
  }
  std::size_t notified = 0;
  for (const i2o::Tid target : targets) {
    auto frame = alloc_frame(4 + payload.size(), /*is_private=*/true);
    if (!frame.is_ok()) {
      continue;
    }
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kXdaq);
    hdr.xfunction = kXfnEventNotify;
    hdr.target = target;
    hdr.initiator = source;
    auto bytes = frame.value().bytes();
    if (!i2o::encode_header(hdr, bytes).is_ok()) {
      continue;
    }
    i2o::put_u32(bytes, i2o::kPrivateHeaderBytes, event_code);
    if (!payload.empty()) {
      std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes + 4,
                  payload.data(), payload.size());
    }
    if (frame_send(std::move(frame).value()).is_ok()) {
      ++notified;
    }
  }
  return notified;
}

std::size_t Executive::event_listener_count(i2o::Tid source) const {
  const std::scoped_lock lock(events_mutex_);
  const auto it = event_listeners_.find(source);
  return it == event_listeners_.end() ? 0 : it->second.size();
}

// ------------------------------------------------------------ loop of control

void Executive::run() {
  running_.store(true, std::memory_order_relaxed);
  start_worker_shards();
  while (running_.load(std::memory_order_relaxed)) {
    pump(0, /*allow_block=*/true);
  }
}

void Executive::start() {
  if (loop_thread_.joinable()) {
    return;  // already started
  }
  running_.store(true, std::memory_order_relaxed);
  start_worker_shards();
  loop_thread_ = std::thread([this] {
    pool_->warm_thread_cache();
    while (running_.load(std::memory_order_relaxed)) {
      pump(0, /*allow_block=*/true);
    }
  });
}

void Executive::start_worker_shards() {
  const std::scoped_lock lock(workers_mutex_);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    if (shards_[i]->thread.joinable()) {
      continue;  // already running
    }
    shards_[i]->thread = std::thread([this, i] {
      // Pin this shard's pool thread cache up front so steady-state
      // allocation stays shard-local from the first frame.
      pool_->warm_thread_cache();
      while (running_.load(std::memory_order_relaxed)) {
        pump(i, /*allow_block=*/true);
      }
    });
  }
}

void Executive::join_worker_shards() {
  const std::scoped_lock lock(workers_mutex_);
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) {
      sh->thread.join();
    }
  }
}

void Executive::stop() {
  running_.store(false, std::memory_order_relaxed);
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  join_worker_shards();
}

bool Executive::run_once() {
  bool any = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    any = pump(i, /*allow_block=*/false) || any;
  }
  return any;
}

bool Executive::pump(std::size_t idx, bool allow_block) {
  Shard& sh = *shards_[idx];
  // N=1 runs the seed's lock-free loop verbatim: no shard mutex on any
  // path, no steal scans, identical behavior down to counter timing.
  const bool multi = shards_.size() > 1;

  // 1. Drain a bounded batch from the shard's inbound queue into its
  //    scheduler's priority FIFOs - one queue-mutex acquisition per
  //    burst, not one per frame. Single shard: each item moves straight
  //    from the queue into its priority FIFO (no staging hop; the
  //    scheduler is dispatch-thread-only). Multi-shard: stage without any
  //    lock, then enqueue under the shard mutex - never nesting the shard
  //    mutex inside the queue mutex.
  if (multi) {
    if (sh.inbound.drain(sh.drain_buf, config_.inbound_drain) > 0) {
      const std::scoped_lock lock(sh.mutex);
      for (ScheduledItem& in : sh.drain_buf) {
        sh.scheduler.enqueue(default_priority_for(in.header), std::move(in));
      }
      sh.drain_buf.clear();
    }
  } else {
    sh.inbound.drain_apply(
        [&sh](ScheduledItem&& in) {
          sh.scheduler.enqueue(default_priority_for(in.header),
                               std::move(in));
        },
        config_.inbound_drain);
  }

  // 2. Scan polling-mode peer transports (paper section 4: "In polling
  //    mode, the executive periodically scans all registered PTs").
  //    Shard 0 owns the scan; sibling shards never touch polling PTs, so
  //    a polling transport's receive path stays single-threaded.
  bool have_polling = false;
  if (idx == 0) {
    {
      const std::scoped_lock lock(polling_mutex_);
      for (TransportDevice* pt : polling_pts_) {
        if (pt->state() == DeviceState::Enabled) {
          have_polling = true;
          pt->transport_pump();
        }
      }
    }
    // Retry parked relay envelopes once their next hop has drained or
    // reconnected. Flag-gated so the common no-relay case costs one load.
    if (relay_pending_.load(std::memory_order_acquire)) {
      drain_relay_queue();
    }
  }

  // 3. Dispatch up to dispatch_batch messages per the I2O
  //    priority/round-robin algorithm. Fairness is the scheduler's
  //    invariant, so a batch is exactly the sequence a message-at-a-time
  //    loop would have produced. The shard mutex brackets only the pop:
  //    handlers run with no lock held.
  const std::size_t batch = std::max<std::size_t>(config_.dispatch_batch, 1);
  std::size_t dispatched = 0;
  t_dispatch_exec = this;
  ScheduledItem item;  // scratch reused across the batch
  while (dispatched < batch) {
    bool got;
    if (multi) {
      const std::scoped_lock lock(sh.mutex);
      got = sh.scheduler.next(item);
      // Published under the mutex: thieves skip the in-flight device.
      sh.active_tid = got ? item.header.target : i2o::kNullTid;
    } else {
      got = sh.scheduler.next(item);
    }
    if (!got) {
      break;
    }
    // Watchdog granularity is the dispatch batch: one clock read arms it
    // for the whole batch (at the default dispatch_batch=1 that is
    // exactly the old per-message bracket). handler_tid still tracks
    // each message so a trip blames the device that was running.
    if (watchdog_enabled_) {
      if (dispatched == 0) {
        sh.handler_start_ns.store(now_ns(), std::memory_order_release);
      }
      sh.handler_tid.store(item.header.target, std::memory_order_relaxed);
    }
    dispatch(item, sh);
    ++dispatched;
  }
  if (multi && dispatched > 0) {
    const std::scoped_lock lock(sh.mutex);
    sh.active_tid = i2o::kNullTid;
  }

  // 3b. Work stealing: a shard that found nothing raids the most
  //     backlogged sibling before going idle, so one hot device cannot
  //     starve the other cores.
  if (multi && dispatched == 0) {
    dispatched = try_steal(sh);
  }

  t_dispatch_exec = nullptr;
  if (dispatched > 0) {
    if (watchdog_enabled_) {
      sh.handler_start_ns.store(0, std::memory_order_release);
    }
    // Drain sends the batch's handlers corked: replies issued during the
    // batch leave in one gathered syscall per connection instead of one
    // per frame. (After the watchdog disarms - a blocked socket is wire
    // backpressure, not a stuck handler.)
    {
      const std::scoped_lock lock(polling_mutex_);
      for (TransportDevice* pt : transport_pts_) {
        pt->transport_flush();
      }
    }
    // Frames the batch released come back to the pool in one call: one
    // stats update and (for same-class frames) one lock round trip
    // instead of one per message.
    if (!sh.release_batch.empty()) {
      pool_->recycle_batch(sh.release_batch);
      sh.release_batch.clear();
    }
    sh.idle_pumps = 0;
    stats_.dispatch_batches->add();
    if (sh.batches != nullptr) {
      sh.batches->bump();
    }
    return true;
  }

  // 4. Idle policy: spin when a polling PT needs low-latency scanning
  //    (yielding occasionally so co-located executives make progress on
  //    machines with fewer cores than nodes), otherwise sleep on the
  //    shard's inbound condition variable. The blocking drain stages
  //    WITHOUT the shard mutex - a shard must never sleep while holding
  //    the lock a thief needs.
  if (allow_block) {
    if (have_polling) {
      if (++sh.idle_pumps > 4096) {
        sh.idle_pumps = 0;
        std::this_thread::yield();
      }
    } else if (sh.inbound.drain_for(sh.drain_buf, config_.inbound_drain,
                                    std::chrono::microseconds(200)) > 0) {
      if (multi) {
        const std::scoped_lock lock(sh.mutex);
        for (ScheduledItem& in : sh.drain_buf) {
          sh.scheduler.enqueue(default_priority_for(in.header),
                               std::move(in));
        }
      } else {
        for (ScheduledItem& in : sh.drain_buf) {
          sh.scheduler.enqueue(default_priority_for(in.header),
                               std::move(in));
        }
      }
      sh.drain_buf.clear();
    }
  }
  return false;
}

std::size_t Executive::try_steal(Shard& thief) {
  // Victim selection: the sibling with the deepest backlog, read via the
  // lock-free pending() gauges. Below steal_threshold the imbalance is
  // not worth disturbing the victim's cache locality for.
  std::size_t best = shards_.size();
  std::size_t best_pending = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == &thief) {
      continue;
    }
    const std::size_t p = shards_[i]->scheduler.pending();
    if (p >= config_.steal_threshold && p > best_pending) {
      best = i;
      best_pending = p;
    }
  }
  if (best == shards_.size()) {
    return 0;
  }
  Shard& victim = *shards_[best];
  thief.steal_items.clear();
  thief.steal_tids.clear();
  std::size_t taken;
  {
    const std::scoped_lock lock(victim.mutex);
    // Take about half the victim's backlog (whole devices at a time),
    // skipping the device the victim is dispatching right now. The mutex
    // also carries the happens-before for all per-device state the moved
    // devices' handlers touched on the victim's thread.
    const std::size_t want =
        std::min(config_.steal_max, best_pending / 2 + 1);
    taken = victim.scheduler.steal(want, victim.active_tid,
                                   thief.steal_items, thief.steal_tids);
  }
  if (taken == 0) {
    return 0;
  }
  stats_.steals->add();
  stats_.stolen_items->add(taken);
  if (thief.steals != nullptr) {
    thief.steals->bump();
  }

  // Dispatch the stolen batch locally, in the (priority, FIFO) order the
  // victim would have used per device. A handler fault mid-batch
  // quarantines its device: the rest of that device's stolen messages
  // are dropped here, mirroring what discard_for does for queued ones.
  std::size_t done = 0;
  thief.steal_quarantined.clear();
  if (watchdog_enabled_) {
    thief.handler_start_ns.store(now_ns(), std::memory_order_release);
  }
  for (ScheduledItem& stolen : thief.steal_items) {
    const i2o::Tid tid = stolen.header.target;
    if (std::find(thief.steal_quarantined.begin(),
                  thief.steal_quarantined.end(),
                  tid) != thief.steal_quarantined.end()) {
      stolen.frame.reset();
      continue;
    }
    if (watchdog_enabled_) {
      thief.handler_tid.store(tid, std::memory_order_relaxed);
    }
    dispatch(stolen, thief);
    ++done;
    Device* dev = table_.local_device(tid);
    if (dev != nullptr && dev->state() == DeviceState::Failed) {
      thief.steal_quarantined.push_back(tid);
    }
  }

  // End the loans: each moved device re-enters the victim's rotations at
  // every level where messages parked while it was away.
  {
    const std::scoped_lock lock(victim.mutex);
    for (const i2o::Tid tid : thief.steal_tids) {
      victim.scheduler.return_loan(tid);
    }
  }
  thief.steal_items.clear();
  thief.steal_tids.clear();
  return done;
}

std::size_t Executive::discard_scheduled(i2o::Tid tid) {
  Shard& home = shard_for(tid);
  if (shards_.size() > 1) {
    const std::scoped_lock lock(home.mutex);
    return home.scheduler.discard_for(tid);
  }
  return home.scheduler.discard_for(tid);
}

// ------------------------------------------------------------------ dispatch

void Executive::dispatch(ScheduledItem& item, Shard& sh) {
  const bool inst = instrument_.load(std::memory_order_relaxed) &&
                    item.probe.t_wire != 0;
  if (inst) {
    item.probe.t_demux = rdtsc();
  }
  // 1-in-64 sampling: the rdtsc pair and histogram add cost tens of ns,
  // which is a real tax on a sub-100ns dispatch if paid per message.
  // Sampled, the histogram still converges on the same shape (dispatch
  // cost does not correlate with a power-of-two message index) while the
  // amortized overhead drops under the 5% budget obs_overhead enforces.
  // The sample counter is per shard; the histogram's bins are atomic, so
  // N shards feed one "exec.dispatch_ticks" safely.
  const bool timed =
      dispatch_ticks_ != nullptr && (++sh.dispatch_sample & 63u) == 0;
  const std::uint64_t t0 = timed ? rdtsc() : 0;
  record_hop(item.header, obs::Hop::Dispatch);

  MessageContext ctx;
  ctx.header = item.header;
  ctx.frame = std::move(item.frame);  // move: no refcount round trip
  ctx.payload = i2o::payload_of(
      ctx.header, std::span<const std::byte>(ctx.frame.bytes()));

  // Flat-table resolution (one atomic load); proxies and unknown TiDs
  // both end up as drops here, so the slow lookup is never needed.
  Device* dev = table_.local_device(ctx.header.target);
  if (dev == nullptr) {
    stats_.dropped_unknown->add();
    if (!ctx.header.is_reply()) {
      send_fail_reply(ctx, "unknown target TiD");
    }
    trace(ctx.header, TraceEntry::Outcome::Dropped);
    return;
  }
  TraceEntry::Outcome outcome = TraceEntry::Outcome::Delivered;

  if (ctx.header.is_reply()) {
    dev->on_reply(ctx);
    stats_.dispatched->add();
    if (sh.dispatched != nullptr) {
      sh.dispatched->bump();
    }
  } else if (ctx.header.is_private()) {
    // Core timer expiries and event notifications surface through their
    // dedicated hooks in every live state.
    if (ctx.header.org() == i2o::OrgId::kXdaq &&
        ctx.header.xfunction == kXfnTimerExpired) {
      const DeviceState s = dev->state();
      if (s != DeviceState::Halted && s != DeviceState::Failed &&
          ctx.payload.size() >= 4) {
        dev->on_timer(i2o::get_u32(ctx.payload, 0));
      }
    } else if (ctx.header.org() == i2o::OrgId::kXdaq &&
               ctx.header.xfunction == kXfnEventNotify) {
      const DeviceState s = dev->state();
      if (s != DeviceState::Halted && s != DeviceState::Failed &&
          ctx.payload.size() >= 4) {
        dev->on_event(ctx.header.initiator, i2o::get_u32(ctx.payload, 0),
                      ctx.payload.subspan(4));
      }
    } else if (dev->state() != DeviceState::Enabled) {
      stats_.rejected_disabled->add();
      send_fail_reply(ctx, "device not enabled");
      outcome = TraceEntry::Outcome::FailReplied;
    } else {
      // The watchdog is armed per dispatch batch in pump(); here only the
      // overrun verdict is consumed, after the untrusted handler returns.
      if (inst) {
        item.probe.t_upcall = rdtsc();
      }
      bool handled = false;
      bool faulted = false;
      try {
        handled = dev->dispatch_private(ctx);
      } catch (const std::exception& e) {
        faulted = true;
        log_.error("handler threw in '", dev->instance_name(), "': ",
                   e.what());
      } catch (...) {
        faulted = true;
        log_.error("handler threw in '", dev->instance_name(), "'");
      }
      if (inst) {
        item.probe.t_app_done = rdtsc();
      }
      if (watchdog_enabled_ &&
          sh.handler_overrun.load(std::memory_order_relaxed) &&
          sh.handler_overrun.exchange(false, std::memory_order_acq_rel)) {
        faulted = true;
        log_.error("watchdog: handler overran deadline in '",
                   dev->instance_name(), "'");
        stats_.watchdog_trips->add();
      }
      if (faulted) {
        // Quarantine: the paper notes a misbehaving handler must not stall
        // the system; the device is failed and its backlog discarded
        // (from its HOME shard - a thief dispatching a stolen batch
        // quarantines the victim's queue, not its own).
        dev->set_state(DeviceState::Failed);
        discard_scheduled(dev->tid());
        send_fail_reply(ctx, "handler fault");
        outcome = TraceEntry::Outcome::FailReplied;
      } else if (!handled) {
        // "The system can provide default procedures if for a given event
        // no code is supplied": the default is a failure report.
        stats_.default_handled->add();
        send_fail_reply(ctx, "no handler bound for xfunction");
      } else {
        stats_.dispatched->add();
        if (sh.dispatched != nullptr) {
          sh.dispatched->bump();
        }
      }
    }
  } else {
    deliver_standard(*dev, ctx);
  }

  trace(ctx.header, outcome);

  // Release: a sole-owner frame from our own pool joins the batch flushed
  // at the end of the pump; anything else drops its reference now.
  if (mem::BlockHeader* blk = ctx.frame.release_for_batch()) {
    if (blk->owner == pool_.get()) {
      sh.release_batch.push_back(blk);
    } else {
      blk->owner->recycle(blk);
    }
  }
  if (inst) {
    item.probe.t_released = rdtsc();
    // ProbeLog is a plain ring; N shards appending race without this
    // lock. Cold path: only taken when instrumentation is armed.
    const std::scoped_lock lock(probes_mutex_);
    probes_.append(item.probe);
  }
  if (timed) {
    dispatch_ticks_->add(static_cast<double>(rdtsc() - t0));
  }
}

void Executive::deliver_standard(Device& dev, const MessageContext& ctx) {
  const auto fn = ctx.header.fn();
  const bool is_exec =
      static_cast<std::uint8_t>(fn) >=
      static_cast<std::uint8_t>(i2o::Function::ExecStatusGet);
  if (is_exec) {
    if (dev.tid() != kernel_tid()) {
      send_fail_reply(ctx, "executive messages must target the kernel");
      return;
    }
    handle_exec(ctx);
  } else {
    handle_util(dev, ctx);
  }
  stats_.dispatched->add();
}

void Executive::handle_util(Device& dev, const MessageContext& ctx) {
  switch (ctx.header.fn()) {
    case i2o::Function::UtilNop:
      // NOP doubles as a liveness ping; answer when a reply path exists.
      (void)send_param_reply(ctx, {});
      return;
    case i2o::Function::UtilParamsGet:
      (void)send_param_reply(ctx, dev.on_params_get());
      return;
    case i2o::Function::UtilParamsSet: {
      auto params = i2o::decode_param_list(ctx.payload);
      if (!params.is_ok()) {
        send_fail_reply(ctx, "malformed parameter list");
        return;
      }
      const Status st = dev.on_params_set(params.value());
      if (st.is_ok()) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, st.to_string());
      }
      return;
    }
    case i2o::Function::UtilAbort:
      // Abort outstanding requests: flush the device's scheduled backlog
      // on its home shard.
      discard_scheduled(dev.tid());
      (void)send_param_reply(ctx, {});
      return;
    case i2o::Function::UtilEventRegister: {
      // Subscribe the initiator to this device's events. The mask rides
      // in the parameter list; 0 unregisters.
      auto params = i2o::decode_param_list(ctx.payload);
      if (!params.is_ok()) {
        send_fail_reply(ctx, "malformed parameter list");
        return;
      }
      const std::uint32_t mask = static_cast<std::uint32_t>(std::strtoul(
          i2o::param_value(params.value(), "mask").c_str(), nullptr, 0));
      const Status st =
          register_event_listener(dev.tid(), ctx.header.initiator, mask);
      if (st.is_ok()) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, st.to_string());
      }
      return;
    }
    case i2o::Function::UtilClaim:
    case i2o::Function::UtilEventAck:
      (void)send_param_reply(ctx, {});
      return;
    default:
      send_fail_reply(ctx, "unsupported utility function");
      return;
  }
}

void Executive::handle_exec(const MessageContext& ctx) {
  i2o::ParamList params;
  if (!ctx.payload.empty()) {
    auto decoded = i2o::decode_param_list(ctx.payload);
    if (!decoded.is_ok()) {
      send_fail_reply(ctx, "malformed parameter list");
      return;
    }
    params = std::move(decoded).value();
  }

  switch (ctx.header.fn()) {
    case i2o::Function::ExecStatusGet:
      (void)send_param_reply(ctx, exec_status());
      return;
    case i2o::Function::ExecConfigure:
    case i2o::Function::ExecEnable:
    case i2o::Function::ExecSuspend:
    case i2o::Function::ExecResume:
    case i2o::Function::ExecHalt:
    case i2o::Function::ExecReset: {
      const Status st = exec_apply(params, ctx.header.fn());
      if (st.is_ok()) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, st.to_string());
      }
      return;
    }
    case i2o::Function::ExecPluginLoad: {
      const Status st = exec_plugin_load(params);
      if (st.is_ok()) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, st.to_string());
      }
      return;
    }
    case i2o::Function::ExecTidLookup: {
      auto tid = tid_of(i2o::param_value(params, "instance"));
      if (tid.is_ok()) {
        (void)send_param_reply(ctx,
                               {{"tid", std::to_string(tid.value())}});
      } else {
        send_fail_reply(ctx, tid.status().to_string());
      }
      return;
    }
    case i2o::Function::ExecSysTabSet: {
      const Status st = exec_systab_set(params);
      if (st.is_ok()) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, st.to_string());
      }
      return;
    }
    case i2o::Function::ExecTimerSet: {
      auto target = tid_of(i2o::param_value(params, "instance"));
      if (!target.is_ok()) {
        send_fail_reply(ctx, target.status().to_string());
        return;
      }
      const auto delay = std::chrono::nanoseconds(
          std::strtoll(i2o::param_value(params, "delay_ns").c_str(), nullptr,
                       10));
      const auto period = std::chrono::nanoseconds(
          std::strtoll(i2o::param_value(params, "period_ns").c_str(), nullptr,
                       10));
      const std::uint32_t id = arm_timer(target.value(), delay, period);
      (void)send_param_reply(ctx, {{"timer", std::to_string(id)}});
      return;
    }
    case i2o::Function::ExecTimerCancel: {
      const auto id = static_cast<std::uint32_t>(
          std::strtoul(i2o::param_value(params, "timer").c_str(), nullptr,
                       10));
      if (cancel_timer(id)) {
        (void)send_param_reply(ctx, {});
      } else {
        send_fail_reply(ctx, "timer not pending");
      }
      return;
    }
    default:
      send_fail_reply(ctx, "unsupported executive function");
      return;
  }
}

i2o::ParamList Executive::exec_status() const {
  i2o::ParamList out;
  out.emplace_back("node", std::to_string(config_.node_id));
  out.emplace_back("name", config_.name);
  const ExecutiveStats snap = stats_.snapshot();
  out.emplace_back("posted", std::to_string(snap.posted));
  out.emplace_back("dispatched", std::to_string(snap.dispatched));
  const std::scoped_lock lock(devices_mutex_);
  out.emplace_back("devices", std::to_string(devices_.size()));
  for (const auto& [tid, dev] : devices_) {
    out.emplace_back("device." + dev->instance_name(),
                     dev->class_name() + "/" +
                         std::string(to_string(dev->state())));
  }
  return out;
}

Status Executive::exec_apply(const i2o::ParamList& params, i2o::Function fn) {
  const std::string instance = i2o::param_value(params, "instance");
  if (instance.empty()) {
    return {Errc::InvalidArgument, "missing 'instance' parameter"};
  }
  if (instance == "*") {
    // The wildcard addresses application devices only: peer transports
    // are infrastructure - suspending or halting them wholesale would cut
    // the very control plane delivering this message. Control transports
    // explicitly by instance name.
    std::vector<i2o::Tid> tids;
    {
      const std::scoped_lock lock(devices_mutex_);
      for (const auto& [tid, dev] : devices_) {
        if (tid != kernel_tid() &&
            dynamic_cast<TransportDevice*>(dev.get()) == nullptr) {
          tids.push_back(tid);
        }
      }
    }
    for (const i2o::Tid tid : tids) {
      Device* dev = device(tid);
      if (dev == nullptr) {
        continue;
      }
      const Status st = (fn == i2o::Function::ExecConfigure)
                            ? configure(tid, params)
                            : apply_state_op(*dev, fn);
      if (!st.is_ok()) {
        return st;
      }
    }
    return Status::ok();
  }
  auto tid = tid_of(instance);
  if (!tid.is_ok()) {
    return tid.status();
  }
  if (fn == i2o::Function::ExecConfigure) {
    return configure(tid.value(), params);
  }
  Device* dev = device(tid.value());
  if (dev == nullptr) {
    return {Errc::NotFound, "instance is not a local device"};
  }
  return apply_state_op(*dev, fn);
}

Status Executive::exec_plugin_load(const i2o::ParamList& params) {
  const std::string class_name = i2o::param_value(params, "class");
  const std::string instance = i2o::param_value(params, "instance");
  if (class_name.empty() || instance.empty()) {
    return {Errc::InvalidArgument, "plugin load needs 'class' and 'instance'"};
  }
  auto tid = install_class(class_name, instance, params);
  return tid.is_ok() ? Status::ok() : tid.status();
}

Status Executive::exec_systab_set(const i2o::ParamList& params) {
  // Routes first ("route.<node>" = "<pt instance>"), then remote device
  // registrations ("remote.<name>" = "<node>:<tid>").
  for (const auto& [key, value] : params) {
    if (key.rfind("route.", 0) == 0) {
      const auto node =
          static_cast<i2o::NodeId>(std::strtoul(key.c_str() + 6, nullptr, 10));
      auto pt_tid = tid_of(value);
      if (!pt_tid.is_ok()) {
        return pt_tid.status();
      }
      if (Status st = set_route(node, pt_tid.value()); !st.is_ok()) {
        return st;
      }
    }
  }
  for (const auto& [key, value] : params) {
    if (key.rfind("remote.", 0) == 0) {
      const std::string name = key.substr(7);
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        return {Errc::InvalidArgument, "remote entry needs '<node>:<tid>'"};
      }
      const auto node = static_cast<i2o::NodeId>(
          std::strtoul(value.substr(0, colon).c_str(), nullptr, 10));
      const auto rtid = static_cast<i2o::Tid>(
          std::strtoul(value.substr(colon + 1).c_str(), nullptr, 10));
      auto proxy = register_remote(node, rtid, name);
      if (!proxy.is_ok()) {
        return proxy.status();
      }
    }
  }
  return Status::ok();
}

void Executive::send_fail_reply(const MessageContext& ctx,
                                std::string_view reason) {
  if (ctx.header.initiator == i2o::kNullTid || ctx.header.is_reply()) {
    return;  // nobody to tell, or replying to a reply would loop
  }
  stats_.failed_replies->add();
  (void)send_param_reply(ctx, {{"error", std::string(reason)}},
                         /*failed=*/true);
}

Status Executive::send_param_reply(const MessageContext& ctx,
                                   const i2o::ParamList& params,
                                   bool failed) {
  if (ctx.header.initiator == i2o::kNullTid) {
    return {Errc::Unroutable, "no initiator to reply to"};
  }
  const i2o::FrameHeader reply_hdr =
      i2o::make_reply_header(ctx.header, failed);
  const std::size_t payload_bytes = i2o::param_list_bytes(params);
  auto frame = alloc_frame(payload_bytes, reply_hdr.is_private());
  if (!frame.is_ok()) {
    return frame.status();
  }
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(reply_hdr, bytes); !st.is_ok()) {
    return st;
  }
  if (Status st = i2o::encode_param_list(
          params, bytes.subspan(reply_hdr.header_bytes()));
      !st.is_ok()) {
    return st;
  }
  return frame_send(std::move(frame).value());
}

ExecutiveStats Executive::stats() const { return stats_.snapshot(); }

void Executive::trace(const i2o::FrameHeader& hdr,
                      TraceEntry::Outcome outcome) {
  // The ring is sized once in the constructor and never resized, so the
  // empty check needs no lock - tracing disabled must not cost a mutex
  // round trip per dispatched message.
  if (trace_ring_.empty()) {
    return;
  }
  const std::scoped_lock lock(trace_mutex_);
  TraceEntry& e = trace_ring_[trace_next_];
  e.t_ns = now_ns();
  e.target = hdr.target;
  e.initiator = hdr.initiator;
  e.function = hdr.function;
  e.xfunction = hdr.is_private() ? hdr.xfunction : 0;
  e.organization = hdr.is_private() ? hdr.organization : 0;
  e.is_reply = hdr.is_reply();
  e.outcome = outcome;
  trace_next_ = (trace_next_ + 1) % trace_ring_.size();
  ++trace_total_;
}

std::vector<TraceEntry> Executive::recent_dispatches() const {
  const std::scoped_lock lock(trace_mutex_);
  std::vector<TraceEntry> out;
  if (trace_ring_.empty()) {
    return out;
  }
  const std::size_t n =
      std::min<std::uint64_t>(trace_total_, trace_ring_.size());
  out.reserve(n);
  // Oldest first: entries wrap around trace_next_.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx =
        (trace_next_ + trace_ring_.size() - n + i) % trace_ring_.size();
    out.push_back(trace_ring_[idx]);
  }
  return out;
}

void Executive::record_hop_slow(const i2o::FrameHeader& hdr, obs::Hop hop) {
  obs::HopRecord rec;
  rec.trace_id = hdr.initiator_context;
  rec.t_ns = now_ns();
  rec.node = config_.node_id;
  rec.target = hdr.target;
  rec.hop = hop;
  rec.is_reply = hdr.is_reply();
  hops_->record(rec);
}

void Executive::watchdog_main(std::chrono::nanoseconds deadline) {
  // One watchdog covers every shard: the scan is a handful of relaxed
  // loads per tick, so per-shard threads would buy nothing.
  const auto tick = std::chrono::nanoseconds(
      std::max<std::int64_t>(deadline.count() / 4, 100'000));
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(tick);
    const std::uint64_t now = now_ns();
    for (const auto& sh : shards_) {
      const std::uint64_t start =
          sh->handler_start_ns.load(std::memory_order_acquire);
      if (start != 0 &&
          now - start > static_cast<std::uint64_t>(deadline.count())) {
        sh->handler_overrun.store(true, std::memory_order_release);
      }
    }
  }
}

}  // namespace xdaq::core
