#include "core/remote_device.hpp"

#include "core/executive.hpp"

namespace xdaq::core {

Result<RemoteDevice> RemoteDevice::open(Requester& requester,
                                        i2o::Tid kernel,
                                        const std::string& instance_name,
                                        std::chrono::nanoseconds timeout) {
  if (!requester.attached()) {
    return {Errc::FailedPrecondition, "requester not installed"};
  }
  auto reply = requester.call_standard(kernel, i2o::Function::ExecTidLookup,
                                       {{"instance", instance_name}},
                                       CallOptions{.timeout = timeout});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    return {Errc::NotFound, "no instance '" + instance_name +
                                "' on the target executive"};
  }
  auto params = reply.value().params();
  if (!params.is_ok()) {
    return params.status();
  }
  const auto resolved = static_cast<i2o::Tid>(std::strtoul(
      i2o::param_value(params.value(), "tid").c_str(), nullptr, 10));
  if (resolved == i2o::kNullTid) {
    return {Errc::Internal, "TiD lookup reply carried no tid"};
  }

  // If the kernel is a proxy, the resolved TiD lives on that node and
  // needs a local proxy of its own (through the same route).
  Executive& exec = requester.executive();
  i2o::Tid target = resolved;
  auto kernel_entry = exec.address_table().lookup(kernel);
  if (kernel_entry.is_ok() &&
      kernel_entry.value().kind == AddressEntry::Kind::Proxy) {
    const AddressEntry& ke = kernel_entry.value();
    // Pin the device proxy to the kernel proxy's route; a relay-routed
    // kernel (via_pt == kNullTid) resolves through the route table.
    auto proxy = ke.via_pt != i2o::kNullTid
                     ? exec.resolver().resolve_via(ke.node, resolved,
                                                   ke.via_pt)
                     : exec.resolver().resolve(ke.node, resolved);
    if (!proxy.is_ok()) {
      return proxy.status();
    }
    target = proxy.value();
  }
  return RemoteDevice(requester, target, kernel, instance_name, timeout);
}

Result<Requester::Reply> RemoteDevice::util_call(
    i2o::Function fn, const i2o::ParamList& params) {
  auto reply = requester_->call_standard(target_, fn, params,
                                         CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply;
  }
  if (reply.value().failed()) {
    auto error_params = reply.value().params();
    std::string reason = "remote utility call failed";
    if (error_params.is_ok()) {
      const std::string msg = i2o::param_value(error_params.value(),
                                               "error");
      if (!msg.empty()) {
        reason = msg;
      }
    }
    return {Errc::Internal, reason};
  }
  return reply;
}

Status RemoteDevice::ping() {
  auto reply = util_call(i2o::Function::UtilNop, {});
  return reply.is_ok() ? Status::ok() : reply.status();
}

Result<i2o::ParamList> RemoteDevice::params() {
  auto reply = util_call(i2o::Function::UtilParamsGet, {});
  if (!reply.is_ok()) {
    return reply.status();
  }
  return reply.value().params();
}

Result<std::string> RemoteDevice::param(const std::string& key) {
  auto all = params();
  if (!all.is_ok()) {
    return all.status();
  }
  return i2o::param_value(all.value(), key);
}

Status RemoteDevice::set_params(const i2o::ParamList& params) {
  auto reply = util_call(i2o::Function::UtilParamsSet, params);
  return reply.is_ok() ? Status::ok() : reply.status();
}

Result<std::string> RemoteDevice::state() { return param("state"); }

Status RemoteDevice::exec_op(i2o::Function fn) {
  auto reply = requester_->call_standard(kernel_, fn,
                                         {{"instance", instance_}},
                                         CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    auto error_params = reply.value().params();
    std::string reason = "remote executive call failed";
    if (error_params.is_ok()) {
      const std::string msg = i2o::param_value(error_params.value(),
                                               "error");
      if (!msg.empty()) {
        reason = msg;
      }
    }
    return {Errc::FailedPrecondition, reason};
  }
  return Status::ok();
}

Status RemoteDevice::configure(const i2o::ParamList& params) {
  i2o::ParamList full = params;
  full.emplace_back("instance", instance_);
  auto reply = requester_->call_standard(
      kernel_, i2o::Function::ExecConfigure, full,
      CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    return {Errc::FailedPrecondition, "remote configure failed"};
  }
  return Status::ok();
}

Status RemoteDevice::enable() { return exec_op(i2o::Function::ExecEnable); }
Status RemoteDevice::suspend() {
  return exec_op(i2o::Function::ExecSuspend);
}
Status RemoteDevice::resume() { return exec_op(i2o::Function::ExecResume); }
Status RemoteDevice::halt() { return exec_op(i2o::Function::ExecHalt); }
Status RemoteDevice::reset() { return exec_op(i2o::Function::ExecReset); }

Result<Requester::Reply> RemoteDevice::call(
    i2o::OrgId org, std::uint16_t xfunction,
    std::span<const std::byte> payload) {
  return requester_->call_private(target_, org, xfunction, payload,
                                  CallOptions{.timeout = timeout_});
}

}  // namespace xdaq::core
