// address_table.hpp - TiD allocation and local/proxy resolution.
//
// Paper section 3.4: every device instance gets a numeric Target ID unique
// within one IOP. "To communicate with a remote device, the executive
// creates a local TiD for the target device along with information how to
// reach this device" - the proxy entry. The caller never learns whether a
// TiD is local or proxied (Proxy pattern, location transparency).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::core {

class Device;

/// One resolution result.
struct AddressEntry {
  enum class Kind : std::uint8_t { Local, Proxy };
  Kind kind = Kind::Local;
  Device* local = nullptr;          ///< Kind::Local
  i2o::NodeId node = i2o::kNullNode;  ///< Kind::Proxy: remote node id
  i2o::Tid remote_tid = i2o::kNullTid;  ///< Kind::Proxy: TiD on that node
  i2o::Tid via_pt = i2o::kNullTid;  ///< Kind::Proxy: local PT that reaches it
};

/// Thread-safe TiD table. TiD 1 is reserved for the executive kernel and
/// allocated through allocate_local like any other device.
class AddressTable {
 public:
  AddressTable() = default;

  /// Registers a local device, returning its new TiD. Fails with
  /// ResourceExhausted when the 12-bit space is full.
  Result<i2o::Tid> allocate_local(Device* device);

  /// Returns the existing proxy TiD for (node, remote_tid, via_pt) or
  /// creates one. Idempotent per route: re-interning the same remote
  /// device through the same peer transport yields the same local TiD,
  /// while a different transport yields a distinct proxy — this is what
  /// lets one node "use multiple transports to send and receive in
  /// parallel" (paper section 4). via_pt == kNullTid marks a
  /// relay-routed proxy (no direct transport; the executive's send path
  /// consults the cluster route table per frame).
  ///
  /// Hot path: every wire delivery re-interns the initiator, so the hit
  /// case takes only a shared (read) lock; the table mutates under the
  /// exclusive lock only on a genuine miss.
  Result<i2o::Tid> intern_proxy(i2o::NodeId node, i2o::Tid remote_tid,
                                i2o::Tid via_pt);

  /// Resolves a TiD; NotFound for unknown/released ids.
  Result<AddressEntry> lookup(i2o::Tid tid) const;

  /// Lock-free local resolution: the device registered under `tid`, or
  /// nullptr when the TiD is unknown, released, or a proxy. This is the
  /// paper's "replace search by table lookup" optimization applied to
  /// dispatch - the 12-bit TiD indexes a flat table directly, so the
  /// per-message path costs one atomic load instead of a mutex plus a
  /// tree walk. Callers needing proxy details still use lookup().
  [[nodiscard]] Device* local_device(i2o::Tid tid) const noexcept {
    return tid <= i2o::kMaxTid
               ? local_fast_[tid].load(std::memory_order_acquire)
               : nullptr;
  }

  /// Proxy lookup by remote coordinates and route.
  std::optional<i2o::Tid> find_proxy(i2o::NodeId node, i2o::Tid remote_tid,
                                     i2o::Tid via_pt) const;

  /// Releases a TiD (device unload). Proxies pointing through a released
  /// PT are left to fail at send time (Unroutable), matching I2O's lazy
  /// teardown.
  Status release(i2o::Tid tid);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t proxy_count() const;

 private:
  Result<i2o::Tid> next_tid_locked();

  /// Read-mostly: dispatch-path lookups (proxy resolution, initiator
  /// interning hits) share the lock; only allocation/interning-miss/
  /// release paths take it exclusively.
  mutable std::shared_mutex mutex_;
  std::map<i2o::Tid, AddressEntry> entries_;
  /// Flat TiD -> local device table mirroring the Local entries of
  /// `entries_` (null elsewhere). Written under mutex_, read lock-free.
  std::array<std::atomic<Device*>, i2o::kMaxTid + 1> local_fast_{};
  /// (node, remote tid, via pt) -> local proxy TiD.
  std::map<std::uint64_t, i2o::Tid> proxy_index_;
  i2o::Tid next_ = 1;  ///< 1 goes to the executive kernel first
  std::vector<i2o::Tid> free_list_;
};

}  // namespace xdaq::core
