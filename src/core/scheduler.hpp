// scheduler.hpp - the I2O dispatch algorithm.
//
// Paper section 4: "For scheduling the dispatching of messages we follow
// the algorithm given in the I2O specification. There exist seven priority
// levels and for each one the messages are scheduled to a FIFO. All
// devices are then dispatched in round-robin manner."
//
// Concretely: each priority level keeps a per-device FIFO plus a rotation
// of devices that have pending messages. next() serves the highest
// non-empty priority, taking one message from the device at the front of
// that level's rotation, then moves the device to the back (round robin).
// Messages for one device at one priority stay FIFO.
//
// Threading model: one Scheduler instance belongs to one executive shard.
// With a single shard it is touched by the dispatch thread only (the
// executive's inbound queue provides the thread-safe boundary), exactly
// the seed behaviour. With multiple shards the owning shard's mutex
// serializes every mutating call - enqueue/next/discard_for on the home
// dispatch loop plus steal/return_loan from thieving sibling shards; the
// scheduler itself stays lock-free. The observability counters (depth_,
// served_, stolen_, pending_) are relaxed atomics readable from ANY
// thread without the mutex: writers are serialized (per the above), so
// the single-writer load+store update pattern stays exact, and snapshot
// readers tolerate values that are one message stale.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/probes.hpp"
#include "i2o/frame.hpp"
#include "i2o/types.hpp"
#include "mem/pool.hpp"

namespace xdaq::core {

/// One scheduled message. The probe rides along so whitebox timing covers
/// the full path from wire event to frame release (paper Table 1).
struct ScheduledItem {
  i2o::FrameHeader header;
  mem::FrameRef frame;
  DispatchProbe probe;
};

/// Grow-only ring FIFO for the per-device message queues. A deque of
/// ~100-byte ScheduledItems allocates and frees a chunk every few
/// pushes; this ring doubles when full and then recycles its slots
/// forever, so steady-state enqueue/serve never touches the heap.
/// Popped slots hold a moved-from T until overwritten.
template <typename T>
class RingFifo {
 public:
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void push_back(T item) {
    if (count_ == slots_.size()) {
      grow();
    }
    slots_[tail_] = std::move(item);
    if (++tail_ == slots_.size()) {
      tail_ = 0;
    }
    ++count_;
  }

  /// Precondition: !empty().
  [[nodiscard]] T& front() noexcept { return slots_[head_]; }

  /// Precondition: !empty().
  void pop_front() noexcept {
    if (++head_ == slots_.size()) {
      head_ = 0;
    }
    --count_;
  }

 private:
  void grow() {
    std::vector<T> bigger(slots_.empty() ? 8 : slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
    tail_ = count_;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

class Scheduler {
 public:
  /// Queues a message for `header.target` at `priority` (clamped to the
  /// seven I2O levels; numerically lower = served first).
  void enqueue(int priority, ScheduledItem item);

  /// Serves the next message per the I2O algorithm; nullopt when idle.
  std::optional<ScheduledItem> next();

  /// In-place variant of next() for the dispatch loop: move-assigns into
  /// `out` (no optional construction, one move less per message). Returns
  /// false when idle, leaving `out` untouched.
  bool next(ScheduledItem& out);

  /// Total queued messages across all levels (relaxed; any thread). Work
  /// stealing scans sibling shards' pending() without their mutexes; the
  /// steal itself re-checks under the victim's lock.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Queued messages at one priority level.
  [[nodiscard]] std::size_t pending_at(int priority) const;

  /// Drops all queued messages for a device (quarantine/unload). Returns
  /// how many were discarded.
  std::size_t discard_for(i2o::Tid tid);

  // --- work stealing (multi-shard executives) ----------------------------

  /// Takes the WHOLE queued backlog of selected devices - every priority
  /// level, each device's messages emitted in (priority, FIFO) order - so
  /// per-device ordering and single-dispatcher affinity survive the move.
  /// Victim devices are chosen from the lowest priority levels first and
  /// from the BACK of each rotation, disturbing the victim shard's own
  /// round-robin progress least. `skip_tid` (the device the victim is
  /// dispatching right now) is never taken. Chosen TiDs are left "on
  /// loan": messages arriving for them park in their FIFOs but the
  /// devices stay out of every rotation, so the victim cannot dispatch
  /// them while the thief works. Appends to `out_items`/`out_tids`;
  /// returns the number of messages taken (stops after max_items).
  std::size_t steal(std::size_t max_items, i2o::Tid skip_tid,
                    std::vector<ScheduledItem>& out_items,
                    std::vector<i2o::Tid>& out_tids);

  /// Ends a loan taken by steal(): the device re-enters the rotation at
  /// every level where messages parked while it was away.
  void return_loan(i2o::Tid tid);

  /// True while `tid` is out on loan to a thieving shard.
  [[nodiscard]] bool is_loaned(i2o::Tid tid) const noexcept;

  /// Messages taken from this scheduler by thieves (relaxed; any thread).
  [[nodiscard]] std::uint64_t stolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }

  /// Messages served since construction, per priority (stats).
  [[nodiscard]] const std::array<std::atomic<std::uint64_t>,
                                 i2o::kNumPriorities>&
  served_per_priority() const noexcept {
    return served_;
  }

  // Thread-safe observability counters. The scheduler itself is dispatch-
  // thread-only (pending_at walks per-level maps), but the metrics
  // registry samples queue depths from whatever thread asks for a
  // snapshot; these single-writer relaxed atomics make that race-free.

  /// Queue depth of one priority level (relaxed; any thread).
  [[nodiscard]] std::size_t depth_at(int priority) const noexcept {
    if (priority < 0 ||
        priority >= static_cast<int>(i2o::kNumPriorities)) {
      return 0;
    }
    return depth_[static_cast<std::size_t>(priority)].load(
        std::memory_order_relaxed);
  }
  /// Messages served at one priority level (relaxed; any thread).
  [[nodiscard]] std::uint64_t served_at(int priority) const noexcept {
    if (priority < 0 ||
        priority >= static_cast<int>(i2o::kNumPriorities)) {
      return 0;
    }
    return served_[static_cast<std::size_t>(priority)].load(
        std::memory_order_relaxed);
  }

 private:
  struct Level {
    /// Entries persist once created (erased only by discard_for): a
    /// device that empties keeps its map node and its ring storage, so a
    /// steady message flow re-uses both instead of churning the heap.
    std::unordered_map<i2o::Tid, RingFifo<ScheduledItem>> fifos;
    std::deque<i2o::Tid> rotation;  ///< devices with pending messages
    /// One-entry FIFO cache: bursts usually target one device, so the
    /// hash lookup is skipped when consecutive messages hit the same
    /// TiD. Mapped references of unordered_map are stable across other
    /// inserts/erases; the cache is dropped when its own entry is erased.
    i2o::Tid cached_tid = i2o::kNullTid;
    RingFifo<ScheduledItem>* cached_fifo = nullptr;
  };

  /// Moves every queued message for `tid` (all levels, priority order)
  /// into `out` and removes the device from every rotation. Returns the
  /// number of messages extracted.
  std::size_t extract_device(i2o::Tid tid, std::vector<ScheduledItem>& out);

  /// Serialized-writer (home dispatch thread, or any thread holding the
  /// owning shard's mutex) load+store updates; other threads only read.
  /// served_ doubles as the public stats array.
  std::array<Level, i2o::kNumPriorities> levels_;
  std::array<std::atomic<std::uint64_t>, i2o::kNumPriorities> served_{};
  std::array<std::atomic<std::size_t>, i2o::kNumPriorities> depth_{};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> stolen_{0};
  /// TiDs currently out on loan to thieving shards. Almost always empty
  /// (and ALWAYS empty in a single-shard executive), so the hot-path
  /// check is one branch on empty().
  std::vector<i2o::Tid> loaned_;
  /// Bit p set iff levels_[p] has a non-empty rotation; next() jumps to
  /// the highest-priority populated level with one countr_zero instead
  /// of probing every level on every call.
  std::uint8_t nonempty_mask_ = 0;
};

/// Maps a function code to its default priority: control-plane traffic
/// (executive and utility classes) is served ahead of application frames.
[[nodiscard]] int default_priority_for(const i2o::FrameHeader& hdr) noexcept;

}  // namespace xdaq::core
