// scheduler.hpp - the I2O dispatch algorithm.
//
// Paper section 4: "For scheduling the dispatching of messages we follow
// the algorithm given in the I2O specification. There exist seven priority
// levels and for each one the messages are scheduled to a FIFO. All
// devices are then dispatched in round-robin manner."
//
// Concretely: each priority level keeps a per-device FIFO plus a rotation
// of devices that have pending messages. next() serves the highest
// non-empty priority, taking one message from the device at the front of
// that level's rotation, then moves the device to the back (round robin).
// Messages for one device at one priority stay FIFO.
//
// The scheduler is used from the dispatch thread only; the executive's
// inbound queue provides the thread-safe boundary.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "core/probes.hpp"
#include "i2o/frame.hpp"
#include "i2o/types.hpp"
#include "mem/pool.hpp"

namespace xdaq::core {

/// One scheduled message. The probe rides along so whitebox timing covers
/// the full path from wire event to frame release (paper Table 1).
struct ScheduledItem {
  i2o::FrameHeader header;
  mem::FrameRef frame;
  DispatchProbe probe;
};

class Scheduler {
 public:
  /// Queues a message for `header.target` at `priority` (clamped to the
  /// seven I2O levels; numerically lower = served first).
  void enqueue(int priority, ScheduledItem item);

  /// Serves the next message per the I2O algorithm; nullopt when idle.
  std::optional<ScheduledItem> next();

  /// Total queued messages across all levels.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// Queued messages at one priority level.
  [[nodiscard]] std::size_t pending_at(int priority) const;

  /// Drops all queued messages for a device (quarantine/unload). Returns
  /// how many were discarded.
  std::size_t discard_for(i2o::Tid tid);

  /// Messages served since construction, per priority (stats).
  [[nodiscard]] const std::array<std::uint64_t, i2o::kNumPriorities>&
  served_per_priority() const noexcept {
    return served_;
  }

 private:
  struct Level {
    std::unordered_map<i2o::Tid, std::deque<ScheduledItem>> fifos;
    std::deque<i2o::Tid> rotation;  ///< devices with pending messages
  };

  std::array<Level, i2o::kNumPriorities> levels_;
  std::array<std::uint64_t, i2o::kNumPriorities> served_{};
  std::size_t pending_ = 0;
};

/// Maps a function code to its default priority: control-plane traffic
/// (executive and utility classes) is served ahead of application frames.
[[nodiscard]] int default_priority_for(const i2o::FrameHeader& hdr) noexcept;

}  // namespace xdaq::core
