#include "daq/builder_unit.hpp"

#include "core/factory.hpp"
#include "daq/protocol.hpp"
#include "i2o/wire.hpp"

namespace xdaq::daq {

BuilderUnit::BuilderUnit() : Device("BuilderUnit") {
  bind(i2o::OrgId::kDaq, kXfnFragment,
       [this](const core::MessageContext& ctx) { handle_fragment(ctx); });
}

Status BuilderUnit::on_configure(const i2o::ParamList& params) {
  for (const auto& [key, value] : params) {
    if (key == "evm_tid") {
      evm_tid_ = static_cast<i2o::Tid>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "verify") {
      verify_ = (value == "1" || value == "true");
    } else if (key == "progress_every") {
      progress_every_ = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  return Status::ok();
}

void BuilderUnit::handle_fragment(const core::MessageContext& ctx) {
  auto header = decode_fragment_header(ctx.payload);
  if (!header.is_ok()) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    (void)post_event(kEvCorruptFragment);
    return;
  }
  const FragmentHeader& fh = header.value();
  const auto data =
      ctx.payload.subspan(kFragmentHeaderBytes, fh.data_bytes);
  if (verify_ && fnv1a(data) != fh.checksum) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    (void)post_event(kEvCorruptFragment);
    return;
  }
  fragments_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(fh.data_bytes, std::memory_order_relaxed);

  auto [it, inserted] = partial_.try_emplace(fh.event_id);
  Partial& p = it->second;
  if (inserted) {
    p.total = fh.total_sources;
  } else if (p.total != fh.total_sources) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    partial_.erase(it);
    return;
  }
  const std::uint64_t bit = 1ULL << (fh.source_id % 64);
  if ((p.seen_mask & bit) != 0) {
    return;  // duplicate fragment; drop
  }
  p.seen_mask |= bit;
  ++p.received;
  if (p.received == p.total) {
    partial_.erase(it);
    const std::uint64_t built =
        built_.fetch_add(1, std::memory_order_relaxed) + 1;
    notify_done(fh.event_id);
    if (progress_every_ != 0 && built % progress_every_ == 0) {
      std::byte payload[8];
      i2o::put_u64(payload, 0, built);
      (void)post_event(kEvBuilderProgress, payload);
    }
  }
}

void BuilderUnit::notify_done(std::uint64_t event_id) {
  if (evm_tid_ == i2o::kNullTid) {
    return;
  }
  const auto payload = encode_event_done(EventDoneMsg{event_id});
  auto frame =
      make_private_frame(evm_tid_, i2o::OrgId::kDaq, kXfnEventDone, payload);
  if (frame.is_ok()) {
    (void)frame_send(std::move(frame).value());
  }
}

i2o::ParamList BuilderUnit::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("built", std::to_string(events_built()));
  params.emplace_back("fragments", std::to_string(fragments_received()));
  params.emplace_back("bytes", std::to_string(bytes_received()));
  params.emplace_back("corrupt", std::to_string(corrupt_fragments()));
  return params;
}

XDAQ_REGISTER_DEVICE(BuilderUnit)

}  // namespace xdaq::daq
