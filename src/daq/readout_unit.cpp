#include "daq/readout_unit.hpp"

#include <algorithm>
#include <sstream>

#include "core/executive.hpp"
#include "core/factory.hpp"
#include "daq/protocol.hpp"

namespace xdaq::daq {

ReadoutUnit::ReadoutUnit() : Device("ReadoutUnit") {}

Status ReadoutUnit::on_configure(const i2o::ParamList& params) {
  // Parse into locals and commit only after validation, so a rejected
  // configure leaves the device unchanged.
  auto evm_tid = evm_tid_;
  auto bu_tids = bu_tids_;
  auto fragment_bytes = fragment_bytes_;
  auto source_id = source_id_;
  auto total_sources = total_sources_;
  auto batch = batch_;
  auto max_events = max_events_;
  auto pace_ns = pace_ns_;
  for (const auto& [key, value] : params) {
    if (key == "evm_tid") {
      evm_tid = static_cast<i2o::Tid>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "bu_tids") {
      bu_tids.clear();
      std::istringstream iss(value);
      std::string tok;
      while (iss >> tok) {
        bu_tids.push_back(static_cast<i2o::Tid>(
            std::strtoul(tok.c_str(), nullptr, 10)));
      }
    } else if (key == "fragment_bytes") {
      fragment_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "source_id") {
      source_id = static_cast<std::uint16_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "total_sources") {
      total_sources = static_cast<std::uint16_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "batch") {
      batch = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "max_events") {
      max_events = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "pace_ns") {
      pace_ns = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  if (total_sources == 0 || source_id >= total_sources) {
    return {Errc::InvalidArgument, "source_id/total_sources inconsistent"};
  }
  if (batch == 0) {
    return {Errc::InvalidArgument, "batch must be >= 1"};
  }
  if (fragment_bytes > i2o::kMaxPayloadBytes - kFragmentHeaderBytes) {
    return {Errc::InvalidArgument, "fragment exceeds one-frame capacity"};
  }
  evm_tid_ = evm_tid;
  bu_tids_ = std::move(bu_tids);
  fragment_bytes_ = fragment_bytes;
  source_id_ = source_id;
  total_sources_ = total_sources;
  batch_ = batch;
  max_events_ = max_events;
  pace_ns_ = pace_ns;
  return Status::ok();
}

Status ReadoutUnit::on_enable() {
  if (evm_tid_ == i2o::kNullTid || bu_tids_.empty()) {
    return {Errc::FailedPrecondition, "evm_tid and bu_tids must be set"};
  }
  if (pace_ns_ == 0) {
    request_assignments();
  } else {
    // Paced mode: the timer is the trigger; replies never re-request, so
    // the offered load is pace-bound rather than round-trip-bound.
    const auto period = std::chrono::nanoseconds(pace_ns_);
    pace_timer_ = executive().arm_timer(tid(), period, period);
  }
  return Status::ok();
}

Status ReadoutUnit::on_halt() {
  if (pace_timer_ != 0) {
    executive().cancel_timer(pace_timer_);
    pace_timer_ = 0;
  }
  return Status::ok();
}

void ReadoutUnit::on_timer(std::uint32_t timer_id) {
  if (timer_id == pace_timer_ && !finished()) {
    request_assignments();
  }
}

void ReadoutUnit::request_assignments() {
  std::uint32_t want = batch_;
  if (max_events_ != 0) {
    const std::uint64_t generated = generated_.load();
    if (generated >= max_events_) {
      return;
    }
    want = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(want, max_events_ - generated));
  }
  const auto payload = encode_allocate(AllocateMsg{want});
  auto frame =
      make_private_frame(evm_tid_, i2o::OrgId::kDaq, kXfnAllocate, payload);
  if (!frame.is_ok()) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!frame_send(std::move(frame).value()).is_ok()) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ReadoutUnit::on_reply(const core::MessageContext& ctx) {
  if (!ctx.header.is_private() ||
      ctx.header.org() != i2o::OrgId::kDaq ||
      ctx.header.xfunction != kXfnAllocate || ctx.header.is_failed()) {
    return;
  }
  auto confirm = decode_confirm(ctx.payload);
  if (!confirm.is_ok()) {
    return;
  }
  for (const Assignment& a : confirm.value().assignments) {
    if (send_fragment(a.event_id,
                      static_cast<std::uint16_t>(
                          a.builder_index % bu_tids_.size()))
            .is_ok()) {
      generated_.fetch_add(1, std::memory_order_relaxed);
    } else {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Pipeline: immediately request the next batch until done. Paced RUs
  // wait for their timer instead.
  if (pace_ns_ == 0) {
    request_assignments();
  }
}

Status ReadoutUnit::send_fragment(std::uint64_t event_id,
                                  std::uint16_t builder_index) {
  const std::size_t payload_bytes = kFragmentHeaderBytes + fragment_bytes_;
  auto frame = executive().alloc_frame(payload_bytes, /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame.status();
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kDaq);
  hdr.xfunction = kXfnFragment;
  hdr.target = bu_tids_[builder_index];
  hdr.initiator = tid();
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
    return st;
  }
  auto payload = bytes.subspan(i2o::kPrivateHeaderBytes);
  auto data = payload.subspan(kFragmentHeaderBytes, fragment_bytes_);
  fill_fragment_data(data, event_id, source_id_);

  FragmentHeader fh;
  fh.event_id = event_id;
  fh.source_id = source_id_;
  fh.total_sources = total_sources_;
  fh.data_bytes = static_cast<std::uint32_t>(fragment_bytes_);
  fh.checksum = fnv1a(data);
  encode_fragment_header(fh, payload);
  return frame_send(std::move(frame).value());
}

i2o::ParamList ReadoutUnit::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("generated", std::to_string(events_generated()));
  params.emplace_back("send_failures", std::to_string(send_failures()));
  params.emplace_back("fragment_bytes", std::to_string(fragment_bytes_));
  params.emplace_back("max_events", std::to_string(max_events_));
  params.emplace_back("pace_ns", std::to_string(pace_ns_));
  return params;
}

XDAQ_REGISTER_DEVICE(ReadoutUnit)

}  // namespace xdaq::daq
