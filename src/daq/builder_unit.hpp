// builder_unit.hpp - the BU device class: assembles complete events.
//
// Collects one fragment per readout unit for every event assigned to it,
// verifies fragment integrity (FNV-1a checksum), and notifies the event
// manager when an event is complete.
//
// Configuration parameters:
//   evm_tid        - (proxy) TiD of the event manager (0 = no
//                    notifications)
//   verify         - "1" to recompute checksums on receipt (default on)
//   progress_every - emit a kEvBuilderProgress event notification every N
//                    built events (0 = off); corrupt fragments always
//                    emit kEvCorruptFragment
#pragma once

#include <atomic>
#include <cstdint>
#include <map>

#include "core/device.hpp"

namespace xdaq::daq {

class BuilderUnit : public core::Device {
 public:
  BuilderUnit();

  [[nodiscard]] std::uint64_t events_built() const noexcept {
    return built_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fragments_received() const noexcept {
    return fragments_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t corrupt_fragments() const noexcept {
    return corrupt_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t events_in_progress() const noexcept {
    return partial_.size();
  }

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  i2o::ParamList on_params_get() override;

 private:
  void handle_fragment(const core::MessageContext& ctx);
  void notify_done(std::uint64_t event_id);

  i2o::Tid evm_tid_ = i2o::kNullTid;
  bool verify_ = true;
  std::uint64_t progress_every_ = 0;

  /// event id -> fragments received so far (bitmask over source ids keeps
  /// duplicates from double-counting; up to 64 sources).
  struct Partial {
    std::uint64_t seen_mask = 0;
    std::uint16_t received = 0;
    std::uint16_t total = 0;
  };
  std::map<std::uint64_t, Partial> partial_;

  std::atomic<std::uint64_t> built_{0};
  std::atomic<std::uint64_t> fragments_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> corrupt_{0};
};

}  // namespace xdaq::daq
