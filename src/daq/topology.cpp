#include "daq/topology.hpp"

#include <sstream>

#include "cluster/hash_ring.hpp"

namespace xdaq::daq {

Result<EventBuilderTopology> EventBuilderTopology::build(
    pt::Cluster& cluster, const EventBuilderParams& p) {
  if (cluster.size() != nodes_required(p)) {
    return {Errc::InvalidArgument,
            "cluster size does not match topology (need readouts + "
            "builders + 1 nodes)"};
  }
  EventBuilderTopology topo;
  topo.params = p;

  // Role -> cluster-index map. Default: RUs on [0, n), BUs on [n, n+m),
  // the EVM on n+m. Hash placement derives a deterministic permutation
  // from the consistent-hash ring instead: each role key claims the node
  // the ring assigns it, then retires that node (one instance per node).
  std::vector<std::size_t> ru_slot(p.readouts);
  std::vector<std::size_t> bu_slot(p.builders);
  std::size_t evm_node = p.readouts + p.builders;
  if (p.hash_placement) {
    cluster::HashRing ring;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      ring.add_node(cluster.node_id(i));
    }
    const auto take = [&cluster, &ring](const std::string& key) {
      const i2o::NodeId node = ring.lookup(key);
      ring.remove_node(node);
      // Cluster node ids are 1-based and dense: node_id(i) == i + 1.
      return static_cast<std::size_t>(node - cluster.node_id(0));
    };
    evm_node = take("evm");
    for (std::size_t j = 0; j < p.builders; ++j) {
      bu_slot[j] = take("bu" + std::to_string(j));
    }
    for (std::size_t i = 0; i < p.readouts; ++i) {
      ru_slot[i] = take("ru" + std::to_string(i));
    }
  } else {
    for (std::size_t i = 0; i < p.readouts; ++i) {
      ru_slot[i] = i;
    }
    for (std::size_t j = 0; j < p.builders; ++j) {
      bu_slot[j] = p.readouts + j;
    }
  }

  // Event manager first, so its name resolves for connect().
  {
    auto evm = std::make_unique<EventManager>();
    topo.evm = evm.get();
    auto tid = cluster.install(evm_node, std::move(evm), "evm",
                               {{"builders", std::to_string(p.builders)}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }

  // Builder units.
  for (std::size_t j = 0; j < p.builders; ++j) {
    const std::size_t node = bu_slot[j];
    auto evm_proxy = cluster.connect(node, evm_node, "evm");
    if (!evm_proxy.is_ok()) {
      return evm_proxy.status();
    }
    auto bu = std::make_unique<BuilderUnit>();
    topo.builders.push_back(bu.get());
    auto tid = cluster.install(
        node, std::move(bu), "bu",
        {{"evm_tid", std::to_string(evm_proxy.value())},
         {"verify", p.verify ? "1" : "0"}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }

  // Readout units: each needs the EVM proxy plus a proxy per builder.
  for (std::size_t i = 0; i < p.readouts; ++i) {
    const std::size_t ru_node = ru_slot[i];
    auto evm_proxy = cluster.connect(ru_node, evm_node, "evm");
    if (!evm_proxy.is_ok()) {
      return evm_proxy.status();
    }
    std::ostringstream bu_tids;
    for (std::size_t j = 0; j < p.builders; ++j) {
      auto bu_proxy = cluster.connect(ru_node, bu_slot[j], "bu");
      if (!bu_proxy.is_ok()) {
        return bu_proxy.status();
      }
      if (j != 0) {
        bu_tids << ' ';
      }
      bu_tids << bu_proxy.value();
    }
    auto ru = std::make_unique<ReadoutUnit>();
    topo.readouts.push_back(ru.get());
    auto tid = cluster.install(
        ru_node, std::move(ru), "ru",
        {{"evm_tid", std::to_string(evm_proxy.value())},
         {"bu_tids", bu_tids.str()},
         {"fragment_bytes", std::to_string(p.fragment_bytes)},
         {"source_id", std::to_string(i)},
         {"total_sources", std::to_string(p.readouts)},
         {"batch", std::to_string(p.batch)},
         {"max_events", std::to_string(p.max_events)},
         {"pace_ns", std::to_string(p.pace_ns)}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }
  return topo;
}

std::uint64_t EventBuilderTopology::events_built() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->events_built();
  }
  return total;
}

std::uint64_t EventBuilderTopology::bytes_built() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->bytes_received();
  }
  return total;
}

std::uint64_t EventBuilderTopology::corrupt_fragments() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->corrupt_fragments();
  }
  return total;
}

bool EventBuilderTopology::complete() const {
  return params.max_events != 0 && events_built() >= params.max_events;
}

}  // namespace xdaq::daq
