#include "daq/topology.hpp"

#include <sstream>

namespace xdaq::daq {

Result<EventBuilderTopology> EventBuilderTopology::build(
    pt::Cluster& cluster, const EventBuilderParams& p) {
  if (cluster.size() != nodes_required(p)) {
    return {Errc::InvalidArgument,
            "cluster size does not match topology (need readouts + "
            "builders + 1 nodes)"};
  }
  EventBuilderTopology topo;
  topo.params = p;
  const std::size_t evm_node = p.readouts + p.builders;

  // Event manager first, so its name resolves for connect().
  {
    auto evm = std::make_unique<EventManager>();
    topo.evm = evm.get();
    auto tid = cluster.install(evm_node, std::move(evm), "evm",
                               {{"builders", std::to_string(p.builders)}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }

  // Builder units.
  for (std::size_t j = 0; j < p.builders; ++j) {
    const std::size_t node = p.readouts + j;
    auto evm_proxy = cluster.connect(node, evm_node, "evm");
    if (!evm_proxy.is_ok()) {
      return evm_proxy.status();
    }
    auto bu = std::make_unique<BuilderUnit>();
    topo.builders.push_back(bu.get());
    auto tid = cluster.install(
        node, std::move(bu), "bu",
        {{"evm_tid", std::to_string(evm_proxy.value())},
         {"verify", p.verify ? "1" : "0"}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }

  // Readout units: each needs the EVM proxy plus a proxy per builder.
  for (std::size_t i = 0; i < p.readouts; ++i) {
    auto evm_proxy = cluster.connect(i, evm_node, "evm");
    if (!evm_proxy.is_ok()) {
      return evm_proxy.status();
    }
    std::ostringstream bu_tids;
    for (std::size_t j = 0; j < p.builders; ++j) {
      auto bu_proxy = cluster.connect(i, p.readouts + j, "bu");
      if (!bu_proxy.is_ok()) {
        return bu_proxy.status();
      }
      if (j != 0) {
        bu_tids << ' ';
      }
      bu_tids << bu_proxy.value();
    }
    auto ru = std::make_unique<ReadoutUnit>();
    topo.readouts.push_back(ru.get());
    auto tid = cluster.install(
        i, std::move(ru), "ru",
        {{"evm_tid", std::to_string(evm_proxy.value())},
         {"bu_tids", bu_tids.str()},
         {"fragment_bytes", std::to_string(p.fragment_bytes)},
         {"source_id", std::to_string(i)},
         {"total_sources", std::to_string(p.readouts)},
         {"batch", std::to_string(p.batch)},
         {"max_events", std::to_string(p.max_events)}});
    if (!tid.is_ok()) {
      return tid.status();
    }
  }
  return topo;
}

std::uint64_t EventBuilderTopology::events_built() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->events_built();
  }
  return total;
}

std::uint64_t EventBuilderTopology::bytes_built() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->bytes_received();
  }
  return total;
}

std::uint64_t EventBuilderTopology::corrupt_fragments() const {
  std::uint64_t total = 0;
  for (const BuilderUnit* bu : builders) {
    total += bu->corrupt_fragments();
  }
  return total;
}

bool EventBuilderTopology::complete() const {
  return params.max_events != 0 && events_built() >= params.max_events;
}

}  // namespace xdaq::daq
