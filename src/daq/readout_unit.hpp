// readout_unit.hpp - the RU device class: a synthetic detector source.
//
// Substitutes the paper's custom embedded readout hardware with a
// deterministic data generator exercising the identical framework path:
// on enable, the RU requests event assignments from the EVM
// (Allocate), and for every confirmed event it pushes one fragment to the
// assigned builder unit (peer-to-peer frame, crossing channels).
//
// Configuration parameters:
//   evm_tid         - (proxy) TiD of the event manager
//   bu_tids         - space-separated (proxy) TiDs of the builder units
//   fragment_bytes  - payload per fragment (default 2048)
//   source_id       - this RU's index among all RUs
//   total_sources   - number of RUs (fragments per complete event)
//   batch           - assignments requested per Allocate (default 8)
//   max_events      - stop after this many events (0 = unlimited)
//   pace_ns         - 0 (default): free-running, each Confirm triggers the
//                     next Allocate immediately. > 0: a periodic timer
//                     issues one Allocate every pace_ns, modelling a fixed
//                     trigger rate - weak-scaling runs use this so the
//                     offered load grows with the number of RUs instead of
//                     saturating one shared core.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/device.hpp"

namespace xdaq::daq {

class ReadoutUnit : public core::Device {
 public:
  ReadoutUnit();

  [[nodiscard]] std::uint64_t events_generated() const noexcept {
    return generated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t send_failures() const noexcept {
    return send_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool finished() const noexcept {
    return max_events_ != 0 &&
           generated_.load(std::memory_order_relaxed) >= max_events_;
  }

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  void on_reply(const core::MessageContext& ctx) override;
  void on_timer(std::uint32_t timer_id) override;
  i2o::ParamList on_params_get() override;

 private:
  void request_assignments();
  Status send_fragment(std::uint64_t event_id, std::uint16_t builder_index);

  i2o::Tid evm_tid_ = i2o::kNullTid;
  std::vector<i2o::Tid> bu_tids_;
  std::size_t fragment_bytes_ = 2048;
  std::uint16_t source_id_ = 0;
  std::uint16_t total_sources_ = 1;
  std::uint32_t batch_ = 8;
  std::uint64_t max_events_ = 0;
  std::uint64_t pace_ns_ = 0;
  std::uint32_t pace_timer_ = 0;

  std::atomic<std::uint64_t> generated_{0};
  std::atomic<std::uint64_t> send_failures_{0};
};

}  // namespace xdaq::daq
