// protocol.hpp - wire messages of the event-builder application classes.
//
// The paper's framework was built for the CMS data-acquisition system,
// whose canonical workload is event building: n readout units (RU) hold
// one fragment each of every physics event, and m builder units (BU)
// assemble complete events - "n nodes talk to m other nodes in both
// directions, thus resulting in communication channels that cross over"
// (the origin of the XDAQ name). An event manager (EVM) hands out event
// assignments so fragments of one event converge on one builder.
//
// All messages are private frames in OrgId::kDaq.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::daq {

// xfunction codes.
inline constexpr std::uint16_t kXfnAllocate = 0x0010;  ///< RU -> EVM
inline constexpr std::uint16_t kXfnConfirm = 0x0011;   ///< EVM -> RU (reply)
inline constexpr std::uint16_t kXfnFragment = 0x0012;  ///< RU -> BU
inline constexpr std::uint16_t kXfnEventDone = 0x0013; ///< BU -> EVM

// I2O event-notification codes emitted by the daq device classes
// (subscribe with Device::subscribe_events / UtilEventRegister).
inline constexpr std::uint32_t kEvBuilderProgress = 0x0001;
inline constexpr std::uint32_t kEvCorruptFragment = 0x0002;

/// Allocate: how many event assignments the RU wants.
struct AllocateMsg {
  std::uint32_t count = 0;
};

/// One event assignment: event id plus the index of the builder that will
/// assemble it (an index into the RU's configured builder list, so the
/// EVM never needs to know per-node proxy TiDs).
struct Assignment {
  std::uint64_t event_id = 0;
  std::uint16_t builder_index = 0;
};

/// Confirm: the assignments granted for one Allocate.
struct ConfirmMsg {
  std::vector<Assignment> assignments;
};

/// Fragment header preceding the fragment data.
struct FragmentHeader {
  std::uint64_t event_id = 0;
  std::uint16_t source_id = 0;      ///< which RU produced it
  std::uint16_t total_sources = 0;  ///< fragments per complete event
  std::uint32_t data_bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a of the data, integrity check
};
inline constexpr std::size_t kFragmentHeaderBytes = 24;

/// EventDone: a builder completed this event.
struct EventDoneMsg {
  std::uint64_t event_id = 0;
};

// Encoding (little-endian, validated on decode).
std::vector<std::byte> encode_allocate(const AllocateMsg& m);
Result<AllocateMsg> decode_allocate(std::span<const std::byte> in);

std::vector<std::byte> encode_confirm(const ConfirmMsg& m);
Result<ConfirmMsg> decode_confirm(std::span<const std::byte> in);

/// Writes the fragment header into out[0..24); data follows externally.
void encode_fragment_header(const FragmentHeader& h, std::span<std::byte> out);
Result<FragmentHeader> decode_fragment_header(std::span<const std::byte> in);

std::vector<std::byte> encode_event_done(const EventDoneMsg& m);
Result<EventDoneMsg> decode_event_done(std::span<const std::byte> in);

/// FNV-1a, the integrity check carried in every fragment.
std::uint64_t fnv1a(std::span<const std::byte> data) noexcept;

/// Deterministic fragment payload for (event, source): reproducible at
/// the builder, which lets tests verify end-to-end integrity.
void fill_fragment_data(std::span<std::byte> out, std::uint64_t event_id,
                        std::uint16_t source_id) noexcept;

}  // namespace xdaq::daq
