#include "daq/event_manager.hpp"

#include <algorithm>

#include "core/factory.hpp"
#include "daq/protocol.hpp"

namespace xdaq::daq {

EventManager::EventManager() : Device("EventManager") {
  bind(i2o::OrgId::kDaq, kXfnAllocate,
       [this](const core::MessageContext& ctx) { handle_allocate(ctx); });
  bind(i2o::OrgId::kDaq, kXfnEventDone,
       [this](const core::MessageContext& ctx) { handle_event_done(ctx); });
}

Status EventManager::on_configure(const i2o::ParamList& params) {
  if (const std::string v = i2o::param_value(params, "builders");
      !v.empty()) {
    builders_ = static_cast<std::uint32_t>(
        std::strtoul(v.c_str(), nullptr, 10));
    if (builders_ == 0) {
      return {Errc::InvalidArgument, "builders must be >= 1"};
    }
  }
  if (const std::string v = i2o::param_value(params, "max_in_flight");
      !v.empty()) {
    max_in_flight_ = std::strtoull(v.c_str(), nullptr, 10);
  }
  return Status::ok();
}

i2o::ParamList EventManager::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("builders", std::to_string(builders_));
  params.emplace_back("assigned", std::to_string(events_assigned()));
  params.emplace_back("completed", std::to_string(events_completed()));
  params.emplace_back("in_flight", std::to_string(in_flight()));
  return params;
}

void EventManager::handle_allocate(const core::MessageContext& ctx) {
  auto msg = decode_allocate(ctx.payload);
  if (!msg.is_ok()) {
    (void)frame_reply(ctx, {}, /*failed=*/true);
    return;
  }
  std::uint32_t grant = msg.value().count;
  auto [it, inserted] = next_per_ru_.try_emplace(ctx.header.initiator, 1);
  std::uint64_t& next = it->second;
  if (max_in_flight_ != 0) {
    const std::uint64_t outstanding =
        next - 1 > completed_.load(std::memory_order_relaxed)
            ? next - 1 - completed_.load(std::memory_order_relaxed)
            : 0;
    const std::uint64_t free_slots =
        max_in_flight_ > outstanding ? max_in_flight_ - outstanding : 0;
    grant = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(grant, free_slots));
  }
  ConfirmMsg confirm;
  confirm.assignments.reserve(grant);
  for (std::uint32_t i = 0; i < grant; ++i) {
    Assignment a;
    a.event_id = next++;
    a.builder_index = static_cast<std::uint16_t>(a.event_id % builders_);
    confirm.assignments.push_back(a);
  }
  // Progress = highest event id granted to any RU.
  std::uint64_t prev = assigned_.load(std::memory_order_relaxed);
  while (next - 1 > prev &&
         !assigned_.compare_exchange_weak(prev, next - 1,
                                          std::memory_order_relaxed)) {
  }
  (void)frame_reply(ctx, encode_confirm(confirm));
}

void EventManager::handle_event_done(const core::MessageContext& ctx) {
  auto msg = decode_event_done(ctx.payload);
  if (!msg.is_ok()) {
    return;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
}

XDAQ_REGISTER_DEVICE(EventManager)

}  // namespace xdaq::daq
