#include "daq/protocol.hpp"

#include "i2o/wire.hpp"

namespace xdaq::daq {

std::vector<std::byte> encode_allocate(const AllocateMsg& m) {
  std::vector<std::byte> out(4);
  i2o::put_u32(out, 0, m.count);
  return out;
}

Result<AllocateMsg> decode_allocate(std::span<const std::byte> in) {
  if (in.size() < 4) {
    return {Errc::MalformedFrame, "Allocate truncated"};
  }
  AllocateMsg m;
  m.count = i2o::get_u32(in, 0);
  if (m.count == 0) {
    return {Errc::MalformedFrame, "Allocate for zero events"};
  }
  return m;
}

std::vector<std::byte> encode_confirm(const ConfirmMsg& m) {
  std::vector<std::byte> out(4 + m.assignments.size() * 10);
  i2o::put_u32(out, 0, static_cast<std::uint32_t>(m.assignments.size()));
  std::size_t off = 4;
  for (const Assignment& a : m.assignments) {
    i2o::put_u64(out, off, a.event_id);
    i2o::put_u16(out, off + 8, a.builder_index);
    off += 10;
  }
  return out;
}

Result<ConfirmMsg> decode_confirm(std::span<const std::byte> in) {
  if (in.size() < 4) {
    return {Errc::MalformedFrame, "Confirm truncated"};
  }
  const std::uint32_t count = i2o::get_u32(in, 0);
  if (in.size() < 4 + static_cast<std::size_t>(count) * 10) {
    return {Errc::MalformedFrame, "Confirm shorter than its count"};
  }
  ConfirmMsg m;
  m.assignments.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    Assignment a;
    a.event_id = i2o::get_u64(in, off);
    a.builder_index = i2o::get_u16(in, off + 8);
    m.assignments.push_back(a);
    off += 10;
  }
  return m;
}

void encode_fragment_header(const FragmentHeader& h,
                            std::span<std::byte> out) {
  i2o::put_u64(out, 0, h.event_id);
  i2o::put_u16(out, 8, h.source_id);
  i2o::put_u16(out, 10, h.total_sources);
  i2o::put_u32(out, 12, h.data_bytes);
  i2o::put_u64(out, 16, h.checksum);
}

Result<FragmentHeader> decode_fragment_header(std::span<const std::byte> in) {
  if (in.size() < kFragmentHeaderBytes) {
    return {Errc::MalformedFrame, "Fragment header truncated"};
  }
  FragmentHeader h;
  h.event_id = i2o::get_u64(in, 0);
  h.source_id = i2o::get_u16(in, 8);
  h.total_sources = i2o::get_u16(in, 10);
  h.data_bytes = i2o::get_u32(in, 12);
  h.checksum = i2o::get_u64(in, 16);
  if (h.total_sources == 0) {
    return {Errc::MalformedFrame, "Fragment with zero total sources"};
  }
  if (h.source_id >= h.total_sources) {
    return {Errc::MalformedFrame, "Fragment source id out of range"};
  }
  if (in.size() - kFragmentHeaderBytes < h.data_bytes) {
    return {Errc::MalformedFrame, "Fragment data truncated"};
  }
  return h;
}

std::vector<std::byte> encode_event_done(const EventDoneMsg& m) {
  std::vector<std::byte> out(8);
  i2o::put_u64(out, 0, m.event_id);
  return out;
}

Result<EventDoneMsg> decode_event_done(std::span<const std::byte> in) {
  if (in.size() < 8) {
    return {Errc::MalformedFrame, "EventDone truncated"};
  }
  EventDoneMsg m;
  m.event_id = i2o::get_u64(in, 0);
  return m;
}

std::uint64_t fnv1a(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

void fill_fragment_data(std::span<std::byte> out, std::uint64_t event_id,
                        std::uint16_t source_id) noexcept {
  // xorshift64 seeded by (event, source): cheap and reproducible.
  std::uint64_t x = event_id * 0x9E3779B97F4A7C15ULL + source_id + 1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    out[i] = static_cast<std::byte>(x >> ((i % 8) * 8));
  }
}

}  // namespace xdaq::daq
