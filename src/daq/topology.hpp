// topology.hpp - canonical event-builder deployment over a Cluster.
//
// Lays out the paper's n x m crossing-channel workload on an in-process
// cluster: nodes [0, n) run readout units, nodes [n, n+m) run builder
// units, node n+m runs the event manager. All proxies and configuration
// parameters are wired so enable_all() starts the flow.
#pragma once

#include <cstdint>
#include <vector>

#include "daq/builder_unit.hpp"
#include "daq/event_manager.hpp"
#include "daq/readout_unit.hpp"
#include "pt/cluster.hpp"

namespace xdaq::daq {

struct EventBuilderParams {
  std::size_t readouts = 2;
  std::size_t builders = 2;
  std::size_t fragment_bytes = 2048;
  std::uint64_t max_events = 1000;  ///< per-RU event count (0 = unlimited)
  std::uint32_t batch = 8;
  bool verify = true;
  /// > 0: each RU issues one Allocate every pace_ns instead of
  /// re-requesting on reply (fixed trigger rate; see ReadoutUnit).
  std::uint64_t pace_ns = 0;
  /// Place instances on nodes by consistent hashing over the cluster's
  /// node ids (cluster::HashRing) instead of the fixed block layout.
  /// Still one instance per node; only the role->node permutation moves.
  bool hash_placement = false;
};

/// Installed devices (owned by their executives; raw pointers are views).
struct EventBuilderTopology {
  std::vector<ReadoutUnit*> readouts;
  std::vector<BuilderUnit*> builders;
  EventManager* evm = nullptr;
  EventBuilderParams params;

  /// Nodes needed in the cluster for `p`.
  static std::size_t nodes_required(const EventBuilderParams& p) {
    return p.readouts + p.builders + 1;
  }

  /// Installs and wires everything. The cluster must have exactly
  /// nodes_required() nodes and not be started yet.
  static Result<EventBuilderTopology> build(pt::Cluster& cluster,
                                            const EventBuilderParams& p);

  /// Total events fully assembled across all builders.
  [[nodiscard]] std::uint64_t events_built() const;
  /// Total payload bytes assembled across all builders.
  [[nodiscard]] std::uint64_t bytes_built() const;
  [[nodiscard]] std::uint64_t corrupt_fragments() const;
  /// True once every RU generated max_events and all were built.
  [[nodiscard]] bool complete() const;
};

}  // namespace xdaq::daq
