// event_manager.hpp - the EVM device class.
//
// Hands out event assignments to readout units (Allocate -> Confirm) and
// tracks completion notices from builder units (EventDone).
//
// Every readout unit holds one fragment of every event (the detector
// trigger is global), so each RU is granted ids from its own sequence
// starting at 1, and builder assignment is the deterministic
// event_id % builders - fragments of one event from every RU therefore
// converge on the same builder without the EVM addressing RUs directly.
// The Allocate/Confirm handshake is the per-RU flow control.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>

#include "core/device.hpp"

namespace xdaq::daq {

class EventManager : public core::Device {
 public:
  EventManager();

  [[nodiscard]] std::uint64_t events_assigned() const noexcept {
    return assigned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return assigned_.load(std::memory_order_relaxed) -
           completed_.load(std::memory_order_relaxed);
  }

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  i2o::ParamList on_params_get() override;

 private:
  void handle_allocate(const core::MessageContext& ctx);
  void handle_event_done(const core::MessageContext& ctx);

  std::uint32_t builders_ = 1;
  /// Cap on events granted to one RU but not yet completed anywhere
  /// (approximate flow control); 0 disables the cap.
  std::uint64_t max_in_flight_ = 0;
  /// Per-RU grant sequence (keyed by the requesting initiator TiD); all
  /// sequences start at event 1.
  std::map<i2o::Tid, std::uint64_t> next_per_ru_;
  std::atomic<std::uint64_t> assigned_{0};  ///< highest event id granted
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace xdaq::daq
