// register.hpp - explicit factory registration of the daq device classes.
//
// Static-initializer registration (XDAQ_REGISTER_DEVICE) is dropped by
// the linker when nothing else references the object file in a static
// archive. Programs that load daq classes by name (ExecPluginLoad / xcl
// `xdaq load`) call this once instead; it is idempotent.
#pragma once

namespace xdaq::daq {

/// Registers EventManager, ReadoutUnit, and BuilderUnit with the
/// process-wide DeviceFactory. Safe to call more than once.
void register_device_classes();

}  // namespace xdaq::daq
