#include "daq/register.hpp"

#include "core/factory.hpp"
#include "daq/builder_unit.hpp"
#include "daq/event_manager.hpp"
#include "daq/readout_unit.hpp"

namespace xdaq::daq {

void register_device_classes() {
  auto& factory = core::DeviceFactory::instance();
  // AlreadyExists simply means the static registration was linked in.
  (void)factory.register_class(
      "EventManager", [] { return std::make_unique<EventManager>(); });
  (void)factory.register_class(
      "ReadoutUnit", [] { return std::make_unique<ReadoutUnit>(); });
  (void)factory.register_class(
      "BuilderUnit", [] { return std::make_unique<BuilderUnit>(); });
}

}  // namespace xdaq::daq
