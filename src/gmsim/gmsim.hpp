// gmsim.hpp - simulated Myrinet/GM message-passing substrate.
//
// The paper benchmarks XDAQ over Myricom's GM 1.1.3 user-level library on
// M2M-PCI64 hardware. That hardware is unavailable, so this module provides
// the closest synthetic equivalent exercising the same code path:
//
//  * ports opened on a shared fabric (the "switch"),
//  * token-limited non-blocking sends (gm_send_with_callback's token
//    discipline becomes an in-flight cap with ResourceExhausted),
//  * receive buffers provided up front (gm_provide_receive_buffer),
//  * non-blocking event polling (gm_receive returning NO_EVENT),
//  * FIFO, lossless delivery per sender/receiver pair,
//  * an optional latency model (fixed per-message cost plus a per-byte
//    serialization cost) so latency-vs-payload curves have the paper's
//    linear shape.
//
// Both the raw-GM baseline and the XDAQ GmPeerTransport in the Fig. 6
// benchmark run on exactly this API, so their difference isolates the
// framework overhead the same way the paper's subtraction does.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace xdaq::gmsim {

using PortId = std::uint16_t;

struct FabricConfig {
  std::size_t send_tokens = 64;   ///< max in-flight messages per sender port
  std::size_t max_message_bytes = 300 * 1024;
  std::uint64_t wire_latency_ns = 0;  ///< fixed cost per message
  double ns_per_byte = 0.0;           ///< serialization cost per payload byte
};

struct PortStats {
  std::uint64_t sends = 0;
  std::uint64_t send_rejects = 0;  ///< token starvation
  std::uint64_t receives = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t truncations = 0;  ///< message larger than receive buffer
};

/// A received message, copied into one of the provided receive buffers.
struct RecvEvent {
  PortId src = 0;
  std::size_t length = 0;            ///< valid bytes in `buffer`
  std::span<std::byte> buffer;       ///< the buffer the caller provided
};

class Fabric;

/// A communication endpoint. poll()/receive() must be called from a single
/// consumer thread; send() may be called from any thread.
class Port {
 public:
  ~Port();
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  [[nodiscard]] PortId id() const noexcept { return id_; }

  /// Non-blocking send. Fails with ResourceExhausted when all send tokens
  /// are in flight (caller retries, as a GM application would), NotFound
  /// when the destination port does not exist, InvalidArgument when the
  /// message exceeds the fabric's maximum size.
  Status send(PortId dst, std::span<const std::byte> data);

  /// Hands a buffer to the port for a future incoming message. Buffers are
  /// consumed in FIFO order; the memory must stay valid until the buffer
  /// comes back through a RecvEvent.
  void provide_receive_buffer(std::span<std::byte> buf);

  /// Non-blocking receive. Returns nullopt when no message is deliverable
  /// (none pending, the head's modeled arrival time is still in the
  /// future, or no receive buffer is available).
  std::optional<RecvEvent> poll();

  /// Blocking receive with timeout. Spins briefly for the co-located
  /// low-latency case, then sleeps on a condition variable until a sender
  /// notifies (the analogue of gm_blocking_receive) - a dedicated
  /// receiver thread must not spin, or it starves other threads on small
  /// machines.
  std::optional<RecvEvent> receive(std::chrono::nanoseconds timeout);

  [[nodiscard]] PortStats stats() const;

  /// Provided-but-unused receive buffers (tests).
  [[nodiscard]] std::size_t available_receive_buffers() const;

 private:
  friend class Fabric;
  Port(Fabric* fabric, PortId id) : fabric_(fabric), id_(id) {}

  struct InFlight {
    PortId src;
    std::uint64_t deliver_at_ns;
    std::vector<std::byte> data;
  };

  void enqueue(InFlight msg);

  Fabric* fabric_;
  PortId id_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< signalled by enqueue for receive()
  std::deque<InFlight> inbound_;
  std::deque<std::span<std::byte>> rx_buffers_;
  PortStats stats_;

  // Lock-free gate in front of the mutex: a consumer polling an empty or
  // not-yet-deliverable port must not touch the mutex at all, or its spin
  // loop would convoy senders into futex sleeps (tens of us per message).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> head_deliver_at_{
      ~std::uint64_t{0}};  ///< earliest deliverable time of the head
};

/// The shared interconnect: a registry of ports plus the latency model.
/// Create one Fabric per simulated network; open one Port per node.
class Fabric {
 public:
  explicit Fabric(FabricConfig config = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Opens a port with the given id; fails if the id is in use.
  Result<std::unique_ptr<Port>> open_port(PortId id);

  [[nodiscard]] const FabricConfig& config() const noexcept { return config_; }

  /// Number of currently open ports.
  [[nodiscard]] std::size_t port_count() const;

 private:
  friend class Port;

  Port* find_port(PortId id) const;
  void close_port(PortId id);

  /// Send-token accounting: in-flight messages per source port.
  bool try_take_token(PortId src);
  void return_token(PortId src);

  FabricConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<PortId, Port*> ports_;
  std::unordered_map<PortId, std::size_t> in_flight_;
};

}  // namespace xdaq::gmsim
