#include "gmsim/gmsim.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

namespace xdaq::gmsim {

// --------------------------------------------------------------------- Port

Port::~Port() {
  if (fabric_ != nullptr) {
    fabric_->close_port(id_);
  }
}

Status Port::send(PortId dst, std::span<const std::byte> data) {
  if (data.size() > fabric_->config().max_message_bytes) {
    return {Errc::InvalidArgument, "message exceeds fabric maximum"};
  }
  Port* target = fabric_->find_port(dst);
  if (target == nullptr) {
    return {Errc::NotFound, "destination port not open"};
  }
  if (!fabric_->try_take_token(id_)) {
    const std::scoped_lock lock(mutex_);
    ++stats_.send_rejects;
    return {Errc::ResourceExhausted, "no send token available"};
  }

  InFlight msg;
  msg.src = id_;
  const auto& cfg = fabric_->config();
  msg.deliver_at_ns =
      now_ns() + cfg.wire_latency_ns +
      static_cast<std::uint64_t>(cfg.ns_per_byte *
                                 static_cast<double>(data.size()));
  msg.data.assign(data.begin(), data.end());  // models DMA out of host RAM
  target->enqueue(std::move(msg));

  const std::scoped_lock lock(mutex_);
  ++stats_.sends;
  stats_.bytes_sent += data.size();
  return Status::ok();
}

void Port::enqueue(InFlight msg) {
  {
    const std::scoped_lock lock(mutex_);
    inbound_.push_back(std::move(msg));
    head_deliver_at_.store(inbound_.front().deliver_at_ns,
                           std::memory_order_relaxed);
    pending_.store(inbound_.size(), std::memory_order_release);
  }
  cv_.notify_one();
}

void Port::provide_receive_buffer(std::span<std::byte> buf) {
  const std::scoped_lock lock(mutex_);
  rx_buffers_.push_back(buf);
}

std::optional<RecvEvent> Port::poll() {
  // Lock-free fast path: nothing pending, or the head is still "on the
  // wire". Touching the mutex here would convoy concurrent senders.
  if (pending_.load(std::memory_order_acquire) == 0) {
    return std::nullopt;
  }
  if (head_deliver_at_.load(std::memory_order_acquire) > now_ns()) {
    return std::nullopt;
  }
  std::unique_lock lock(mutex_);
  if (inbound_.empty() || rx_buffers_.empty()) {
    return std::nullopt;
  }
  InFlight& head = inbound_.front();
  if (head.deliver_at_ns > now_ns()) {
    return std::nullopt;  // still "on the wire"
  }
  InFlight msg = std::move(head);
  inbound_.pop_front();
  head_deliver_at_.store(inbound_.empty() ? ~std::uint64_t{0}
                                          : inbound_.front().deliver_at_ns,
                         std::memory_order_relaxed);
  pending_.store(inbound_.size(), std::memory_order_release);
  std::span<std::byte> buf = rx_buffers_.front();
  rx_buffers_.pop_front();

  RecvEvent ev;
  ev.src = msg.src;
  ev.buffer = buf;
  ev.length = std::min(msg.data.size(), buf.size());
  if (ev.length < msg.data.size()) {
    ++stats_.truncations;
  }
  ++stats_.receives;
  stats_.bytes_received += ev.length;
  lock.unlock();

  if (ev.length != 0) {
    std::memcpy(buf.data(), msg.data.data(), ev.length);  // DMA into buffer
  }
  fabric_->return_token(msg.src);
  return ev;
}

std::optional<RecvEvent> Port::receive(std::chrono::nanoseconds timeout) {
  const std::uint64_t deadline = now_ns() + timeout.count();
  // Brief spin catches the co-located back-to-back case cheaply.
  for (int i = 0; i < 512; ++i) {
    if (auto ev = poll()) {
      return ev;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
  for (;;) {
    if (auto ev = poll()) {
      return ev;
    }
    const std::uint64_t now = now_ns();
    if (now >= deadline) {
      return std::nullopt;
    }
    const std::uint64_t head =
        head_deliver_at_.load(std::memory_order_acquire);
    if (head != ~std::uint64_t{0} && head > now) {
      // A message is "on the wire": wait out the modeled latency. Short
      // residues are spun for precision; long ones sleep.
      const std::uint64_t wait_until = std::min(head, deadline);
      if (wait_until - now > 100'000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(wait_until - now - 50'000));
      }
      while (now_ns() < wait_until) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
      continue;
    }
    // Nothing pending (or no receive buffer yet): block until a sender
    // notifies, bounded so the deadline is honoured.
    std::unique_lock lock(mutex_);
    const std::uint64_t remaining = deadline - now;
    cv_.wait_for(lock,
                 std::chrono::nanoseconds(std::min<std::uint64_t>(
                     remaining, 1'000'000)),
                 [this] {
                   return pending_.load(std::memory_order_acquire) > 0;
                 });
  }
}

PortStats Port::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

std::size_t Port::available_receive_buffers() const {
  const std::scoped_lock lock(mutex_);
  return rx_buffers_.size();
}

// ------------------------------------------------------------------- Fabric

Fabric::Fabric(FabricConfig config) : config_(config) {}

Fabric::~Fabric() = default;

Result<std::unique_ptr<Port>> Fabric::open_port(PortId id) {
  const std::scoped_lock lock(mutex_);
  if (ports_.contains(id)) {
    return {Errc::AlreadyExists, "port id already open"};
  }
  auto port = std::unique_ptr<Port>(new Port(this, id));
  ports_[id] = port.get();
  in_flight_[id] = 0;
  return port;
}

std::size_t Fabric::port_count() const {
  const std::scoped_lock lock(mutex_);
  return ports_.size();
}

Port* Fabric::find_port(PortId id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = ports_.find(id);
  return it == ports_.end() ? nullptr : it->second;
}

void Fabric::close_port(PortId id) {
  const std::scoped_lock lock(mutex_);
  ports_.erase(id);
  in_flight_.erase(id);
}

bool Fabric::try_take_token(PortId src) {
  const std::scoped_lock lock(mutex_);
  auto it = in_flight_.find(src);
  if (it == in_flight_.end() || it->second >= config_.send_tokens) {
    return false;
  }
  ++it->second;
  return true;
}

void Fabric::return_token(PortId src) {
  const std::scoped_lock lock(mutex_);
  const auto it = in_flight_.find(src);
  if (it != in_flight_.end() && it->second > 0) {
    --it->second;
  }
}

}  // namespace xdaq::gmsim
