#include "xcl/control.hpp"

#include <stdexcept>

#include "core/monitor_device.hpp"

namespace xdaq::xcl {

namespace {

/// Parses trailing "key value key value..." words into a ParamList.
Result<i2o::ParamList> params_from_words(
    const std::vector<std::string>& words, std::size_t from) {
  if ((words.size() - from) % 2 != 0) {
    return {Errc::InvalidArgument, "parameters must come in key/value pairs"};
  }
  i2o::ParamList out;
  for (std::size_t i = from; i + 1 < words.size(); i += 2) {
    out.emplace_back(words[i], words[i + 1]);
  }
  return out;
}

EvalResult status_to_eval(const Status& st) {
  if (st.is_ok()) {
    return EvalResult::ok("ok");
  }
  return EvalResult::error(st.to_string());
}

std::string params_to_list(const i2o::ParamList& params) {
  std::vector<std::string> pairs;
  pairs.reserve(params.size());
  for (const auto& [k, v] : params) {
    pairs.push_back(join_list({k, v}));
  }
  return join_list(pairs);
}

}  // namespace

ControlSession::ControlSession(core::Executive& host,
                               std::chrono::nanoseconds timeout)
    : host_(host), timeout_(timeout) {
  auto requester = std::make_unique<core::Requester>();
  requester_ = requester.get();
  auto tid = host_.install(std::move(requester), "xcl_requester");
  if (!tid.is_ok()) {
    throw std::runtime_error("ControlSession: requester install failed: " +
                             tid.status().to_string());
  }
}

Status ControlSession::add_node(const std::string& name, i2o::NodeId node) {
  auto proxy = host_.resolver().resolve(node, i2o::kExecutiveTid,
                                        "kernel@" + name);
  if (!proxy.is_ok()) {
    return proxy.status();
  }
  nodes_[name] = NodeInfo{node, proxy.value()};
  return Status::ok();
}

std::vector<std::string> ControlSession::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, info] : nodes_) {
    out.push_back(name);
  }
  return out;
}

Result<ControlSession::NodeInfo> ControlSession::info_of(
    const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return {Errc::NotFound, "unknown node: " + node};
  }
  return it->second;
}

Result<core::Requester::Reply> ControlSession::exec_call(
    const NodeInfo& info, i2o::Function fn, const i2o::ParamList& params) {
  auto reply = requester_->call_standard(
      info.kernel_proxy, fn, params,
      core::CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply;
  }
  if (reply.value().failed()) {
    auto error_params = reply.value().params();
    std::string reason = "remote failure";
    if (error_params.is_ok()) {
      const std::string msg =
          i2o::param_value(error_params.value(), "error");
      if (!msg.empty()) {
        reason = msg;
      }
    }
    return {Errc::Internal, reason};
  }
  return reply;
}

Result<i2o::ParamList> ControlSession::status(const std::string& node) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  auto reply = exec_call(info.value(), i2o::Function::ExecStatusGet, {});
  if (!reply.is_ok()) {
    return reply.status();
  }
  return reply.value().params();
}

Status ControlSession::configure(const std::string& node,
                                 const std::string& instance,
                                 const i2o::ParamList& params) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  i2o::ParamList full = params;
  full.emplace_back("instance", instance);
  auto reply =
      exec_call(info.value(), i2o::Function::ExecConfigure, full);
  return reply.is_ok() ? Status::ok() : reply.status();
}

Status ControlSession::state_op(const std::string& node,
                                const std::string& instance,
                                i2o::Function fn) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  auto reply = exec_call(info.value(), fn, {{"instance", instance}});
  return reply.is_ok() ? Status::ok() : reply.status();
}

Status ControlSession::load(const std::string& node,
                            const std::string& class_name,
                            const std::string& instance,
                            const i2o::ParamList& params) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  i2o::ParamList full = params;
  full.emplace_back("class", class_name);
  full.emplace_back("instance", instance);
  auto reply =
      exec_call(info.value(), i2o::Function::ExecPluginLoad, full);
  return reply.is_ok() ? Status::ok() : reply.status();
}

Result<i2o::Tid> ControlSession::device_proxy(const std::string& node,
                                              const std::string& instance) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  auto reply = exec_call(info.value(), i2o::Function::ExecTidLookup,
                         {{"instance", instance}});
  if (!reply.is_ok()) {
    return reply.status();
  }
  auto params = reply.value().params();
  if (!params.is_ok()) {
    return params.status();
  }
  const std::string tid_text = i2o::param_value(params.value(), "tid");
  if (tid_text.empty()) {
    return {Errc::Internal, "TiD lookup reply carried no tid"};
  }
  const auto remote_tid = static_cast<i2o::Tid>(
      std::strtoul(tid_text.c_str(), nullptr, 10));
  return host_.resolver().resolve(info.value().node, remote_tid);
}

Result<i2o::ParamList> ControlSession::param_get(
    const std::string& node, const std::string& instance) {
  auto proxy = device_proxy(node, instance);
  if (!proxy.is_ok()) {
    return proxy.status();
  }
  auto reply = requester_->call_standard(
      proxy.value(), i2o::Function::UtilParamsGet, {},
      core::CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    return {Errc::Internal, "UtilParamsGet failed on remote device"};
  }
  return reply.value().params();
}

Status ControlSession::param_set(const std::string& node,
                                 const std::string& instance,
                                 const i2o::ParamList& params) {
  auto proxy = device_proxy(node, instance);
  if (!proxy.is_ok()) {
    return proxy.status();
  }
  auto reply = requester_->call_standard(
      proxy.value(), i2o::Function::UtilParamsSet, params,
      core::CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    return {Errc::Internal, "UtilParamsSet failed on remote device"};
  }
  return Status::ok();
}

Result<i2o::ParamList> ControlSession::metrics(const std::string& node,
                                               const std::string& instance) {
  auto proxy = device_proxy(node, instance);
  if (!proxy.is_ok()) {
    return proxy.status();
  }
  auto reply = requester_->call_private(
      proxy.value(), i2o::OrgId::kXdaq, core::kXfnObsSnapshot, {},
      core::CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    return {Errc::Internal, "metrics snapshot failed on remote monitor"};
  }
  return reply.value().params();
}

Status ControlSession::ping(const std::string& node) {
  auto info = info_of(node);
  if (!info.is_ok()) {
    return info.status();
  }
  auto reply = exec_call(info.value(), i2o::Function::UtilNop, {});
  return reply.is_ok() ? Status::ok() : reply.status();
}

void ControlSession::bind(Interp& interp) {
  interp.register_command(
      "xdaq", [this](Interp&, const std::vector<std::string>& w) {
        if (w.size() < 2) {
          return EvalResult::error(
              "wrong # args: should be \"xdaq subcommand ?arg ...?\"");
        }
        const std::string& sub = w[1];

        if (sub == "nodes") {
          return EvalResult::ok(join_list(node_names()));
        }
        if (sub == "ping" && w.size() == 3) {
          return status_to_eval(ping(w[2]));
        }
        if (sub == "status" && w.size() == 3) {
          auto params = status(w[2]);
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          return EvalResult::ok(params_to_list(params.value()));
        }
        if (sub == "configure" && w.size() >= 4) {
          auto params = params_from_words(w, 4);
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          return status_to_eval(configure(w[2], w[3], params.value()));
        }
        if ((sub == "enable" || sub == "suspend" || sub == "resume" ||
             sub == "halt" || sub == "reset") &&
            w.size() == 4) {
          i2o::Function fn = i2o::Function::ExecEnable;
          if (sub == "suspend") {
            fn = i2o::Function::ExecSuspend;
          } else if (sub == "resume") {
            fn = i2o::Function::ExecResume;
          } else if (sub == "halt") {
            fn = i2o::Function::ExecHalt;
          } else if (sub == "reset") {
            fn = i2o::Function::ExecReset;
          }
          return status_to_eval(state_op(w[2], w[3], fn));
        }
        if (sub == "load" && w.size() >= 5) {
          auto params = params_from_words(w, 5);
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          return status_to_eval(load(w[2], w[3], w[4], params.value()));
        }
        if (sub == "tid" && w.size() == 4) {
          auto proxy = device_proxy(w[2], w[3]);
          if (!proxy.is_ok()) {
            return EvalResult::error(proxy.status().to_string());
          }
          return EvalResult::ok(std::to_string(proxy.value()));
        }
        if (sub == "paramget" && (w.size() == 4 || w.size() == 5)) {
          auto params = param_get(w[2], w[3]);
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          if (w.size() == 5) {
            return EvalResult::ok(i2o::param_value(params.value(), w[4]));
          }
          return EvalResult::ok(params_to_list(params.value()));
        }
        if (sub == "metrics" && (w.size() == 3 || w.size() == 4)) {
          auto params =
              metrics(w[2], w.size() == 4 ? w[3] : std::string("monitor"));
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          return EvalResult::ok(params_to_list(params.value()));
        }
        if (sub == "paramset" && w.size() >= 6) {
          auto params = params_from_words(w, 4);
          if (!params.is_ok()) {
            return EvalResult::error(params.status().to_string());
          }
          return status_to_eval(param_set(w[2], w[3], params.value()));
        }
        return EvalResult::error("unknown or malformed xdaq subcommand \"" +
                                 sub + "\"");
      });
}

}  // namespace xdaq::xcl
