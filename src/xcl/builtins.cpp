// builtins.cpp - XCL core commands and the expr evaluator.
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "xcl/interp.hpp"

namespace xdaq::xcl {

namespace {

// ----------------------------------------------------------- expr machinery

/// Expression values: integers, doubles, or strings (for eq/ne).
using Value = std::variant<std::int64_t, double, std::string>;

struct ExprParser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool match(std::string_view op) {
    skip_ws();
    if (text.substr(pos, op.size()) == op) {
      // Do not split ">=" into ">" etc.: reject if a longer operator fits.
      if ((op == "<" || op == ">") && pos + 1 < text.size() &&
          text[pos + 1] == '=') {
        return false;
      }
      if (op == "!" && pos + 1 < text.size() && text[pos + 1] == '=') {
        return false;
      }
      if ((op == "&" || op == "|") && op.size() == 1) {
        return false;  // only && and || exist
      }
      pos += op.size();
      return true;
    }
    return false;
  }

  static bool truthy(const Value& v) {
    if (std::holds_alternative<std::int64_t>(v)) {
      return std::get<std::int64_t>(v) != 0;
    }
    if (std::holds_alternative<double>(v)) {
      return std::get<double>(v) != 0.0;
    }
    return !std::get<std::string>(v).empty();
  }

  static double as_double(const Value& v) {
    if (std::holds_alternative<std::int64_t>(v)) {
      return static_cast<double>(std::get<std::int64_t>(v));
    }
    if (std::holds_alternative<double>(v)) {
      return std::get<double>(v);
    }
    return 0.0;
  }

  static bool both_int(const Value& a, const Value& b) {
    return std::holds_alternative<std::int64_t>(a) &&
           std::holds_alternative<std::int64_t>(b);
  }

  static bool is_num(const Value& v) {
    return !std::holds_alternative<std::string>(v);
  }

  static std::string as_string(const Value& v) {
    if (std::holds_alternative<std::int64_t>(v)) {
      return std::to_string(std::get<std::int64_t>(v));
    }
    if (std::holds_alternative<double>(v)) {
      std::string s = std::to_string(std::get<double>(v));
      return s;
    }
    return std::get<std::string>(v);
  }

  Value parse_primary() {
    skip_ws();
    if (pos >= text.size()) {
      error = "unexpected end of expression";
      return std::int64_t{0};
    }
    const char c = text[pos];
    if (c == '(') {
      ++pos;
      Value v = parse_or();
      skip_ws();
      if (pos >= text.size() || text[pos] != ')') {
        error = "missing close parenthesis";
        return std::int64_t{0};
      }
      ++pos;
      return v;
    }
    if (c == '!') {
      ++pos;
      return static_cast<std::int64_t>(truthy(parse_primary()) ? 0 : 1);
    }
    if (c == '-') {
      ++pos;
      Value v = parse_primary();
      if (std::holds_alternative<std::int64_t>(v)) {
        return -std::get<std::int64_t>(v);
      }
      if (std::holds_alternative<double>(v)) {
        return -std::get<double>(v);
      }
      error = "cannot negate a string";
      return std::int64_t{0};
    }
    if (c == '+') {
      ++pos;
      return parse_primary();
    }
    if (c == '"') {
      const std::size_t close = text.find('"', pos + 1);
      if (close == std::string_view::npos) {
        error = "unterminated string in expression";
        return std::int64_t{0};
      }
      std::string s(text.substr(pos + 1, close - pos - 1));
      pos = close + 1;
      return s;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      const std::size_t start = pos;
      bool is_float = false;
      while (pos < text.size()) {
        const char d = text[pos];
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          ++pos;
        } else if (d == '.' || d == 'e' || d == 'E') {
          is_float = true;
          ++pos;
          if (d != '.' && pos < text.size() &&
              (text[pos] == '+' || text[pos] == '-')) {
            ++pos;
          }
        } else if (d == 'x' || d == 'X') {
          ++pos;  // hex
          while (pos < text.size() &&
                 std::isxdigit(static_cast<unsigned char>(text[pos])) != 0) {
            ++pos;
          }
          break;
        } else {
          break;
        }
      }
      const std::string token(text.substr(start, pos - start));
      if (is_float) {
        return std::strtod(token.c_str(), nullptr);
      }
      return static_cast<std::int64_t>(
          std::strtoll(token.c_str(), nullptr, 0));
    }
    // Bare word: a string operand (used with eq/ne).
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_' || text[pos] == '.' || text[pos] == ':')) {
      ++pos;
    }
    if (pos == start) {
      error = std::string("unexpected character '") + c + "' in expression";
      ++pos;
      return std::int64_t{0};
    }
    std::string word(text.substr(start, pos - start));
    return word;
  }

  Value parse_mul() {
    Value v = parse_primary();
    for (;;) {
      skip_ws();
      if (match("*")) {
        Value r = parse_primary();
        if (both_int(v, r)) {
          v = std::get<std::int64_t>(v) * std::get<std::int64_t>(r);
        } else {
          v = as_double(v) * as_double(r);
        }
      } else if (pos < text.size() && text[pos] == '/' ) {
        ++pos;
        Value r = parse_primary();
        if (both_int(v, r)) {
          const auto d = std::get<std::int64_t>(r);
          if (d == 0) {
            error = "divide by zero";
            return std::int64_t{0};
          }
          v = std::get<std::int64_t>(v) / d;
        } else {
          const double d = as_double(r);
          if (d == 0.0) {
            error = "divide by zero";
            return std::int64_t{0};
          }
          v = as_double(v) / d;
        }
      } else if (pos < text.size() && text[pos] == '%') {
        ++pos;
        Value r = parse_primary();
        if (!both_int(v, r)) {
          error = "% needs integer operands";
          return std::int64_t{0};
        }
        const auto d = std::get<std::int64_t>(r);
        if (d == 0) {
          error = "divide by zero";
          return std::int64_t{0};
        }
        v = std::get<std::int64_t>(v) % d;
      } else {
        return v;
      }
    }
  }

  Value parse_add() {
    Value v = parse_mul();
    for (;;) {
      skip_ws();
      if (pos < text.size() && text[pos] == '+') {
        ++pos;
        Value r = parse_mul();
        if (both_int(v, r)) {
          v = std::get<std::int64_t>(v) + std::get<std::int64_t>(r);
        } else {
          v = as_double(v) + as_double(r);
        }
      } else if (pos < text.size() && text[pos] == '-') {
        ++pos;
        Value r = parse_mul();
        if (both_int(v, r)) {
          v = std::get<std::int64_t>(v) - std::get<std::int64_t>(r);
        } else {
          v = as_double(v) - as_double(r);
        }
      } else {
        return v;
      }
    }
  }

  Value parse_relational() {
    Value v = parse_add();
    for (;;) {
      skip_ws();
      int cmp_kind = 0;  // 1: <, 2: <=, 3: >, 4: >=
      if (match("<=")) {
        cmp_kind = 2;
      } else if (match(">=")) {
        cmp_kind = 4;
      } else if (match("<")) {
        cmp_kind = 1;
      } else if (match(">")) {
        cmp_kind = 3;
      } else {
        return v;
      }
      Value r = parse_add();
      const double a = as_double(v);
      const double b = as_double(r);
      bool res = false;
      switch (cmp_kind) {
        case 1:
          res = a < b;
          break;
        case 2:
          res = a <= b;
          break;
        case 3:
          res = a > b;
          break;
        case 4:
          res = a >= b;
          break;
        default:
          break;
      }
      v = static_cast<std::int64_t>(res ? 1 : 0);
    }
  }

  Value parse_equality() {
    Value v = parse_relational();
    for (;;) {
      skip_ws();
      bool eq = false;
      bool string_cmp = false;
      if (match("==")) {
        eq = true;
      } else if (match("!=")) {
        eq = false;
      } else if (text.substr(pos, 2) == "eq" &&
                 (pos + 2 >= text.size() ||
                  !std::isalnum(static_cast<unsigned char>(text[pos + 2])))) {
        pos += 2;
        eq = true;
        string_cmp = true;
      } else if (text.substr(pos, 2) == "ne" &&
                 (pos + 2 >= text.size() ||
                  !std::isalnum(static_cast<unsigned char>(text[pos + 2])))) {
        pos += 2;
        eq = false;
        string_cmp = true;
      } else {
        return v;
      }
      Value r = parse_relational();
      bool equal = false;
      if (!string_cmp && is_num(v) && is_num(r)) {
        equal = as_double(v) == as_double(r);
      } else {
        equal = as_string(v) == as_string(r);
      }
      v = static_cast<std::int64_t>((equal == eq) ? 1 : 0);
    }
  }

  Value parse_and() {
    Value v = parse_equality();
    for (;;) {
      skip_ws();
      if (text.substr(pos, 2) == "&&") {
        pos += 2;
        Value r = parse_equality();
        v = static_cast<std::int64_t>((truthy(v) && truthy(r)) ? 1 : 0);
      } else {
        return v;
      }
    }
  }

  Value parse_or() {
    Value v = parse_and();
    for (;;) {
      skip_ws();
      if (text.substr(pos, 2) == "||") {
        pos += 2;
        Value r = parse_and();
        v = static_cast<std::int64_t>((truthy(v) || truthy(r)) ? 1 : 0);
      } else {
        return v;
      }
    }
  }
};

std::string value_to_string(const Value& v) {
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::to_string(std::get<std::int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    // Trim trailing zeros the way Tcl prints clean doubles.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
    return buf;
  }
  return std::get<std::string>(v);
}

std::string join_words(const std::vector<std::string>& words,
                       std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < words.size(); ++i) {
    if (i != from) {
      out.push_back(' ');
    }
    out += words[i];
  }
  return out;
}

EvalResult wrong_args(const std::string& usage) {
  return EvalResult::error("wrong # args: should be \"" + usage + "\"");
}

}  // namespace

EvalResult Interp::eval_expr(const std::string& expr) {
  // Like Tcl's expr, run a substitution round first: conditions are
  // usually brace-quoted ({$i < 10}), which defers $/[] substitution to
  // evaluation time.
  auto substituted = substitute(expr, 0);
  if (!substituted.is_ok()) {
    return EvalResult::error(std::string(substituted.status().message()));
  }
  ExprParser parser{substituted.value(), 0, {}};
  const Value v = parser.parse_or();
  if (!parser.error.empty()) {
    return EvalResult::error(parser.error);
  }
  parser.skip_ws();
  if (parser.pos != parser.text.size()) {
    return EvalResult::error("trailing characters in expression: " + expr);
  }
  return EvalResult::ok(value_to_string(v));
}

void Interp::register_builtins() {
  register_command("set", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() == 2) {
      auto v = in.get_var(w[1]);
      if (!v.is_ok()) {
        return EvalResult::error(std::string(v.status().message()));
      }
      return EvalResult::ok(v.value());
    }
    if (w.size() != 3) {
      return wrong_args("set varName ?newValue?");
    }
    in.set_var(w[1], w[2]);
    return EvalResult::ok(w[2]);
  });

  register_command("unset",
                   [](Interp& in, const std::vector<std::string>& w) {
                     for (std::size_t i = 1; i < w.size(); ++i) {
                       in.unset_var(w[i]);
                     }
                     return EvalResult::ok();
                   });

  register_command("incr", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 2 && w.size() != 3) {
      return wrong_args("incr varName ?increment?");
    }
    std::int64_t amount = 1;
    if (w.size() == 3) {
      amount = std::strtoll(w[2].c_str(), nullptr, 10);
    }
    auto current = in.get_var(w[1]);
    const std::int64_t base =
        current.is_ok() ? std::strtoll(current.value().c_str(), nullptr, 10)
                        : 0;
    const std::string next = std::to_string(base + amount);
    in.set_var(w[1], next);
    return EvalResult::ok(next);
  });

  register_command("puts", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() == 2) {
      in.write_output(w[1]);
      return EvalResult::ok();
    }
    if (w.size() == 3 && w[1] == "-nonewline") {
      in.write_output(w[2]);  // sink decides about newlines
      return EvalResult::ok();
    }
    return wrong_args("puts ?-nonewline? string");
  });

  register_command("expr", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() < 2) {
      return wrong_args("expr arg ?arg ...?");
    }
    return in.eval_expr(join_words(w, 1));
  });

  register_command("if", [](Interp& in, const std::vector<std::string>& w) {
    // if cond body ?elseif cond body ...? ?else body?
    std::size_t i = 1;
    while (i < w.size()) {
      if (i + 1 >= w.size()) {
        return wrong_args("if cond body ?elseif cond body? ?else body?");
      }
      EvalResult cond = in.eval_expr(w[i]);
      if (cond.is_error()) {
        return cond;
      }
      const bool take = cond.value != "0" && !cond.value.empty();
      if (take) {
        return in.eval(w[i + 1]);
      }
      i += 2;
      if (i >= w.size()) {
        return EvalResult::ok();
      }
      if (w[i] == "elseif") {
        ++i;
        continue;
      }
      if (w[i] == "else") {
        if (i + 1 >= w.size()) {
          return wrong_args("else body");
        }
        return in.eval(w[i + 1]);
      }
      return EvalResult::error("expected elseif/else, got \"" + w[i] + "\"");
    }
    return EvalResult::ok();
  });

  register_command("while",
                   [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 3) {
      return wrong_args("while cond body");
    }
    for (int guard = 0; guard < 1'000'000; ++guard) {
      EvalResult cond = in.eval_expr(w[1]);
      if (cond.is_error()) {
        return cond;
      }
      if (cond.value == "0" || cond.value.empty()) {
        return EvalResult::ok();
      }
      EvalResult body = in.eval(w[2]);
      if (body.code == EvalResult::Code::Break) {
        return EvalResult::ok();
      }
      if (body.code == EvalResult::Code::Continue) {
        continue;
      }
      if (body.code != EvalResult::Code::Ok) {
        return body;
      }
    }
    return EvalResult::error("while loop exceeded iteration guard");
  });

  register_command("for", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 5) {
      return wrong_args("for init cond next body");
    }
    EvalResult init = in.eval(w[1]);
    if (init.code != EvalResult::Code::Ok) {
      return init;
    }
    for (int guard = 0; guard < 1'000'000; ++guard) {
      EvalResult cond = in.eval_expr(w[2]);
      if (cond.is_error()) {
        return cond;
      }
      if (cond.value == "0" || cond.value.empty()) {
        return EvalResult::ok();
      }
      EvalResult body = in.eval(w[4]);
      if (body.code == EvalResult::Code::Break) {
        return EvalResult::ok();
      }
      if (body.code != EvalResult::Code::Ok &&
          body.code != EvalResult::Code::Continue) {
        return body;
      }
      EvalResult next = in.eval(w[3]);
      if (next.code != EvalResult::Code::Ok) {
        return next;
      }
    }
    return EvalResult::error("for loop exceeded iteration guard");
  });

  register_command("foreach",
                   [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 4) {
      return wrong_args("foreach varName list body");
    }
    auto elems = split_list(w[2]);
    if (!elems.is_ok()) {
      return EvalResult::error(std::string(elems.status().message()));
    }
    for (const std::string& e : elems.value()) {
      in.set_var(w[1], e);
      EvalResult body = in.eval(w[3]);
      if (body.code == EvalResult::Code::Break) {
        return EvalResult::ok();
      }
      if (body.code != EvalResult::Code::Ok &&
          body.code != EvalResult::Code::Continue) {
        return body;
      }
    }
    return EvalResult::ok();
  });

  register_command("proc", [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 4) {
      return wrong_args("proc name args body");
    }
    auto arg_names = split_list(w[2]);
    if (!arg_names.is_ok()) {
      return EvalResult::error(std::string(arg_names.status().message()));
    }
    const std::string name = w[1];
    in.register_command(
        name, [name, args = arg_names.value(),
               body = w[3]](Interp& interp,
                            const std::vector<std::string>& call) {
          const bool variadic = !args.empty() && args.back() == "args";
          const std::size_t fixed = variadic ? args.size() - 1 : args.size();
          if (call.size() - 1 < fixed ||
              (!variadic && call.size() - 1 > fixed)) {
            return EvalResult::error("wrong # args for proc \"" + name +
                                     "\"");
          }
          interp.push_scope();
          for (std::size_t i = 0; i < fixed; ++i) {
            interp.set_var(args[i], call[i + 1]);
          }
          if (variadic) {
            std::vector<std::string> rest(call.begin() + 1 +
                                              static_cast<std::ptrdiff_t>(
                                                  fixed),
                                          call.end());
            interp.set_var("args", join_list(rest));
          }
          EvalResult r = interp.eval(body);
          interp.pop_scope();
          if (r.code == EvalResult::Code::Return) {
            return EvalResult::ok(r.value);
          }
          if (r.code == EvalResult::Code::Break ||
              r.code == EvalResult::Code::Continue) {
            return EvalResult::error(
                "invoked \"break\"/\"continue\" outside of a loop");
          }
          return r;
        });
    return EvalResult::ok();
  });

  register_command("return",
                   [](Interp&, const std::vector<std::string>& w) {
                     EvalResult r;
                     r.code = EvalResult::Code::Return;
                     if (w.size() > 1) {
                       r.value = w[1];
                     }
                     return r;
                   });
  register_command("break", [](Interp&, const std::vector<std::string>&) {
    EvalResult r;
    r.code = EvalResult::Code::Break;
    return r;
  });
  register_command("continue",
                   [](Interp&, const std::vector<std::string>&) {
                     EvalResult r;
                     r.code = EvalResult::Code::Continue;
                     return r;
                   });

  register_command("catch",
                   [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() != 2 && w.size() != 3) {
      return wrong_args("catch script ?resultVarName?");
    }
    EvalResult r = in.eval(w[1]);
    if (w.size() == 3) {
      in.set_var(w[2], r.value);
    }
    return EvalResult::ok(r.is_error() ? "1" : "0");
  });

  register_command("list", [](Interp&, const std::vector<std::string>& w) {
    std::vector<std::string> elems(w.begin() + 1, w.end());
    return EvalResult::ok(join_list(elems));
  });

  register_command("lindex",
                   [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 3) {
      return wrong_args("lindex list index");
    }
    auto elems = split_list(w[1]);
    if (!elems.is_ok()) {
      return EvalResult::error(std::string(elems.status().message()));
    }
    const auto idx = std::strtoll(w[2].c_str(), nullptr, 10);
    if (idx < 0 ||
        static_cast<std::size_t>(idx) >= elems.value().size()) {
      return EvalResult::ok();
    }
    return EvalResult::ok(elems.value()[static_cast<std::size_t>(idx)]);
  });

  register_command("llength",
                   [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 2) {
      return wrong_args("llength list");
    }
    auto elems = split_list(w[1]);
    if (!elems.is_ok()) {
      return EvalResult::error(std::string(elems.status().message()));
    }
    return EvalResult::ok(std::to_string(elems.value().size()));
  });

  register_command("lappend",
                   [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() < 3) {
      return wrong_args("lappend varName value ?value ...?");
    }
    auto current = in.get_var(w[1]);
    std::string list = current.is_ok() ? current.value() : std::string();
    for (std::size_t i = 2; i < w.size(); ++i) {
      if (!list.empty()) {
        list.push_back(' ');
      }
      list += quote_word(w[i]);
    }
    in.set_var(w[1], list);
    return EvalResult::ok(list);
  });

  register_command("string",
                   [](Interp&, const std::vector<std::string>& w) {
    if (w.size() < 2) {
      return wrong_args("string subcommand ?arg ...?");
    }
    if (w[1] == "length" && w.size() == 3) {
      return EvalResult::ok(std::to_string(w[2].size()));
    }
    if (w[1] == "equal" && w.size() == 4) {
      return EvalResult::ok(w[2] == w[3] ? "1" : "0");
    }
    if (w[1] == "toupper" && w.size() == 3) {
      std::string s = w[2];
      for (char& c : s) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return EvalResult::ok(s);
    }
    if (w[1] == "tolower" && w.size() == 3) {
      std::string s = w[2];
      for (char& c : s) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return EvalResult::ok(s);
    }
    return EvalResult::error("unknown string subcommand \"" + w[1] + "\"");
  });

  register_command("error",
                   [](Interp&, const std::vector<std::string>& w) {
                     return EvalResult::error(w.size() > 1 ? w[1]
                                                           : "error");
                   });

  // Control scripts poll hardware; `after ms` is how Tcl sleeps.
  register_command("after", [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 2) {
      return wrong_args("after milliseconds");
    }
    const auto ms = std::strtoll(w[1].c_str(), nullptr, 10);
    if (ms < 0 || ms > 60'000) {
      return EvalResult::error("after: milliseconds out of range [0,60000]");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return EvalResult::ok();
  });

  register_command("append",
                   [](Interp& in, const std::vector<std::string>& w) {
    if (w.size() < 2) {
      return wrong_args("append varName ?value ...?");
    }
    auto current = in.get_var(w[1]);
    std::string out = current.is_ok() ? current.value() : std::string();
    for (std::size_t i = 2; i < w.size(); ++i) {
      out += w[i];
    }
    in.set_var(w[1], out);
    return EvalResult::ok(out);
  });

  register_command("split", [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 2 && w.size() != 3) {
      return wrong_args("split string ?splitChars?");
    }
    const std::string& text = w[1];
    const std::string seps = w.size() == 3 ? w[2] : " \t\n";
    std::vector<std::string> parts;
    std::string cur;
    for (const char c : text) {
      if (seps.find(c) != std::string::npos) {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    parts.push_back(cur);
    return EvalResult::ok(join_list(parts));
  });

  register_command("join", [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 2 && w.size() != 3) {
      return wrong_args("join list ?joinString?");
    }
    auto elems = split_list(w[1]);
    if (!elems.is_ok()) {
      return EvalResult::error(std::string(elems.status().message()));
    }
    const std::string sep = w.size() == 3 ? w[2] : " ";
    std::string out;
    for (std::size_t i = 0; i < elems.value().size(); ++i) {
      if (i != 0) {
        out += sep;
      }
      out += elems.value()[i];
    }
    return EvalResult::ok(out);
  });

  register_command("lrange",
                   [](Interp&, const std::vector<std::string>& w) {
    if (w.size() != 4) {
      return wrong_args("lrange list first last");
    }
    auto elems = split_list(w[1]);
    if (!elems.is_ok()) {
      return EvalResult::error(std::string(elems.status().message()));
    }
    const auto size = static_cast<std::int64_t>(elems.value().size());
    auto parse_index = [size](const std::string& s) -> std::int64_t {
      if (s == "end") {
        return size - 1;
      }
      if (s.rfind("end-", 0) == 0) {
        return size - 1 - std::strtoll(s.c_str() + 4, nullptr, 10);
      }
      return std::strtoll(s.c_str(), nullptr, 10);
    };
    std::int64_t first = std::max<std::int64_t>(0, parse_index(w[2]));
    std::int64_t last = std::min(size - 1, parse_index(w[3]));
    std::vector<std::string> out;
    for (std::int64_t i = first; i <= last; ++i) {
      out.push_back(elems.value()[static_cast<std::size_t>(i)]);
    }
    return EvalResult::ok(join_list(out));
  });

  register_command("info", [](Interp& in,
                              const std::vector<std::string>& w) {
    if (w.size() >= 2 && w[1] == "exists" && w.size() == 3) {
      return EvalResult::ok(in.get_var(w[2]).is_ok() ? "1" : "0");
    }
    if (w.size() == 3 && w[1] == "commands") {
      return EvalResult::ok(in.has_command(w[2]) ? "1" : "0");
    }
    return wrong_args("info exists varName | info commands name");
  });
}

}  // namespace xdaq::xcl
