#include "xcl/interp.hpp"

#include <cctype>
#include <cstdio>

namespace xdaq::xcl {

namespace {

bool is_word_separator(char c) noexcept { return c == ' ' || c == '\t'; }
bool is_command_separator(char c) noexcept {
  return c == '\n' || c == ';' || c == '\r';
}
bool is_var_char(char c) noexcept {
  // Note: ':' is deliberately not a variable character - "$n:" must parse
  // as the variable n followed by a literal colon (XCL has no namespaces).
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds the matching close brace for text[start] == '{'. Returns the
/// index of the close brace or npos. Backslash escapes the next char.
std::size_t match_brace(std::string_view text, std::size_t start) {
  int depth = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      ++i;
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string_view::npos;
}

/// Finds the matching close bracket for text[start] == '['.
std::size_t match_bracket(std::string_view text, std::size_t start) {
  int depth = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      ++i;
      continue;
    }
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string_view::npos;
}

char escape_of(char c) noexcept {
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return '\0';
    default:
      return c;  // \$ \[ \" \\ \{ etc. produce the literal character
  }
}

}  // namespace

Interp::Interp() : scopes_(1) {
  output_ = [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
  };
  register_builtins();
}

void Interp::register_command(const std::string& name, Command fn) {
  commands_[name] = std::move(fn);
}

bool Interp::has_command(const std::string& name) const {
  return commands_.contains(name);
}

void Interp::set_var(const std::string& name, const std::string& value) {
  scopes_.back()[name] = value;
}

Result<std::string> Interp::get_var(const std::string& name) const {
  const auto& local = scopes_.back();
  if (const auto it = local.find(name); it != local.end()) {
    return it->second;
  }
  if (scopes_.size() > 1) {
    const auto& global = scopes_.front();
    if (const auto it = global.find(name); it != global.end()) {
      return it->second;
    }
  }
  return {Errc::NotFound, "can't read \"" + name + "\": no such variable"};
}

void Interp::unset_var(const std::string& name) {
  scopes_.back().erase(name);
  if (scopes_.size() > 1) {
    // Tcl semantics would need upvar machinery; XCL unsets only visible
    // bindings (local first, else global).
    if (!scopes_.back().contains(name)) {
      scopes_.front().erase(name);
    }
  } else {
    scopes_.front().erase(name);
  }
}

void Interp::write_output(const std::string& line) { output_(line); }

void Interp::push_scope() { scopes_.emplace_back(); }

void Interp::pop_scope() {
  if (scopes_.size() > 1) {
    scopes_.pop_back();
  }
}

EvalResult Interp::eval(const std::string& script) {
  return eval_script(script, 0);
}

EvalResult Interp::eval_script(std::string_view script, int depth) {
  // depth tracks substitution nesting within one statement; depth_ tracks
  // total evaluation recursion (proc bodies re-enter through eval()).
  if (depth > kMaxDepth || depth_ >= kMaxDepth) {
    return EvalResult::error("too many nested evaluations");
  }
  struct DepthGuard {
    int& d;
    explicit DepthGuard(int& depth_ref) : d(depth_ref) { ++d; }
    ~DepthGuard() { --d; }
  } guard(depth_);
  EvalResult last = EvalResult::ok();
  std::size_t i = 0;
  while (i < script.size()) {
    // Skip leading separators and blank space.
    while (i < script.size() && (is_word_separator(script[i]) ||
                                 is_command_separator(script[i]))) {
      ++i;
    }
    if (i >= script.size()) {
      break;
    }
    // Comment to end of line.
    if (script[i] == '#') {
      while (i < script.size() && script[i] != '\n') {
        ++i;
      }
      continue;
    }
    // Collect one command: up to an unquoted separator at depth 0.
    const std::size_t start = i;
    int brace = 0;
    int bracket = 0;
    bool quote = false;
    while (i < script.size()) {
      const char c = script[i];
      if (c == '\\') {
        i += 2;
        continue;
      }
      if (quote) {
        if (c == '"') {
          quote = false;
        }
      } else if (c == '"') {
        quote = true;
      } else if (c == '{') {
        ++brace;
      } else if (c == '}') {
        --brace;
      } else if (c == '[') {
        ++bracket;
      } else if (c == ']') {
        --bracket;
      } else if (is_command_separator(c) && brace == 0 && bracket == 0) {
        break;
      }
      ++i;
    }
    if (brace != 0) {
      return EvalResult::error("missing close-brace");
    }
    if (bracket != 0) {
      return EvalResult::error("missing close-bracket");
    }
    if (quote) {
      return EvalResult::error("missing closing quote");
    }
    const std::string_view command = script.substr(start, i - start);
    auto words = parse_words(command, depth);
    if (!words.is_ok()) {
      return EvalResult::error(std::string(words.status().message()));
    }
    if (words.value().empty()) {
      continue;
    }
    last = eval_command(words.value());
    if (last.code != EvalResult::Code::Ok) {
      return last;  // Error/Return/Break/Continue propagate
    }
  }
  return last;
}

Result<std::vector<std::string>> Interp::parse_words(
    std::string_view command, int depth) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < command.size()) {
    while (i < command.size() && is_word_separator(command[i])) {
      ++i;
    }
    if (i >= command.size()) {
      break;
    }
    if (command[i] == '{') {
      const std::size_t close = match_brace(command, i);
      if (close == std::string_view::npos) {
        return {Errc::InvalidArgument, "missing close-brace"};
      }
      words.emplace_back(command.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (command[i] == '"') {
      std::size_t j = i + 1;
      while (j < command.size() && command[j] != '"') {
        if (command[j] == '\\') {
          ++j;
        }
        ++j;
      }
      if (j >= command.size()) {
        return {Errc::InvalidArgument, "missing closing quote"};
      }
      auto sub = substitute(command.substr(i + 1, j - i - 1), depth);
      if (!sub.is_ok()) {
        return sub.status();
      }
      words.push_back(std::move(sub).value());
      i = j + 1;
    } else {
      // Bare word: runs to the next separator at bracket depth 0.
      const std::size_t start = i;
      int bracket = 0;
      while (i < command.size() &&
             (bracket > 0 || !is_word_separator(command[i]))) {
        if (command[i] == '\\') {
          ++i;
        } else if (command[i] == '[') {
          ++bracket;
        } else if (command[i] == ']') {
          --bracket;
        }
        ++i;
      }
      auto sub = substitute(command.substr(start, i - start), depth);
      if (!sub.is_ok()) {
        return sub.status();
      }
      words.push_back(std::move(sub).value());
    }
  }
  return words;
}

Result<std::string> Interp::substitute(std::string_view text, int depth) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      out.push_back(escape_of(text[i + 1]));
      i += 2;
    } else if (c == '$') {
      ++i;
      std::string name;
      if (i < text.size() && text[i] == '{') {
        const std::size_t close = text.find('}', i);
        if (close == std::string_view::npos) {
          return {Errc::InvalidArgument, "missing close-brace for ${"};
        }
        name.assign(text.substr(i + 1, close - i - 1));
        i = close + 1;
      } else {
        while (i < text.size() && is_var_char(text[i])) {
          name.push_back(text[i]);
          ++i;
        }
      }
      if (name.empty()) {
        out.push_back('$');  // bare dollar
        continue;
      }
      auto value = get_var(name);
      if (!value.is_ok()) {
        return value.status();
      }
      out += value.value();
    } else if (c == '[') {
      const std::size_t close = match_bracket(text, i);
      if (close == std::string_view::npos) {
        return {Errc::InvalidArgument, "missing close-bracket"};
      }
      EvalResult r =
          eval_script(text.substr(i + 1, close - i - 1), depth + 1);
      if (r.code != EvalResult::Code::Ok) {
        return {Errc::InvalidArgument, r.value};
      }
      out += r.value;
      i = close + 1;
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

EvalResult Interp::eval_command(const std::vector<std::string>& words) {
  const auto it = commands_.find(words[0]);
  if (it == commands_.end()) {
    return EvalResult::error("invalid command name \"" + words[0] + "\"");
  }
  return it->second(*this, words);
}

// ------------------------------------------------------------- list helpers

Result<std::vector<std::string>> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::string_view sv = text;
  while (i < sv.size()) {
    while (i < sv.size() &&
           (is_word_separator(sv[i]) || sv[i] == '\n' || sv[i] == '\r')) {
      ++i;
    }
    if (i >= sv.size()) {
      break;
    }
    if (sv[i] == '{') {
      const std::size_t close = match_brace(sv, i);
      if (close == std::string_view::npos) {
        return {Errc::InvalidArgument, "unmatched open brace in list"};
      }
      out.emplace_back(sv.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (sv[i] == '"') {
      std::size_t j = i + 1;
      while (j < sv.size() && sv[j] != '"') {
        if (sv[j] == '\\') {
          ++j;
        }
        ++j;
      }
      if (j >= sv.size()) {
        return {Errc::InvalidArgument, "unmatched quote in list"};
      }
      out.emplace_back(sv.substr(i + 1, j - i - 1));
      i = j + 1;
    } else {
      const std::size_t start = i;
      while (i < sv.size() && !is_word_separator(sv[i]) && sv[i] != '\n' &&
             sv[i] != '\r') {
        ++i;
      }
      out.emplace_back(sv.substr(start, i - start));
    }
  }
  return out;
}

std::string quote_word(const std::string& word) {
  if (word.empty()) {
    return "{}";
  }
  const bool needs_quoting =
      word.find_first_of(" \t\n\r{}\"[]$\\") != std::string::npos;
  if (!needs_quoting) {
    return word;
  }
  return "{" + word + "}";
}

std::string join_list(const std::vector<std::string>& elems) {
  std::string out;
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out += quote_word(elems[i]);
  }
  return out;
}

}  // namespace xdaq::xcl
