// interp.hpp - the XCL interpreter: a small Tcl-like command language.
//
// Paper section 4: "Configuration and control of the executive is done
// through I2O executive messages. They are sent from a Tcl script that
// resides on the primary host to all executives in the distributed
// system. We chose Tcl because it is the I2O recommended way for
// configuration and control."
//
// XCL implements the Tcl evaluation model (everything is a command; words
// are formed by brace quoting {no substitution}, double quoting "with
// substitution", variable substitution $var/${var}, and command
// substitution [cmd]) with the core commands a control script needs:
// set/unset/incr, expr, if/while/for/foreach, proc/return/break/continue,
// puts, list/lindex/llength. Cluster-control commands are registered on
// top by xcl::ControlSession (control.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::xcl {

/// Evaluation outcome. Break/Continue/Return propagate through control
/// structures exactly like Tcl's result codes.
struct EvalResult {
  enum class Code : std::uint8_t { Ok, Error, Return, Break, Continue };
  Code code = Code::Ok;
  std::string value;  ///< result string (or error message when Error)

  static EvalResult ok(std::string v = {}) {
    return {Code::Ok, std::move(v)};
  }
  static EvalResult error(std::string msg) {
    return {Code::Error, std::move(msg)};
  }
  [[nodiscard]] bool is_ok() const noexcept { return code == Code::Ok; }
  [[nodiscard]] bool is_error() const noexcept {
    return code == Code::Error;
  }
};

class Interp {
 public:
  using Command =
      std::function<EvalResult(Interp&, const std::vector<std::string>&)>;

  Interp();

  /// Evaluates a script (commands separated by newlines or semicolons).
  /// The result is the last command's result.
  EvalResult eval(const std::string& script);

  /// Registers/overrides a command.
  void register_command(const std::string& name, Command fn);
  [[nodiscard]] bool has_command(const std::string& name) const;

  // Variables (current scope; falls back to global for reads).
  void set_var(const std::string& name, const std::string& value);
  Result<std::string> get_var(const std::string& name) const;
  void unset_var(const std::string& name);

  /// Output sink for `puts` (defaults to stdout); tests capture it.
  void set_output(std::function<void(const std::string&)> sink) {
    output_ = std::move(sink);
  }
  void write_output(const std::string& line);

  /// Evaluates a Tcl-style arithmetic/logic expression.
  EvalResult eval_expr(const std::string& expr);

  /// Used by proc invocation: pushes/pops a local variable scope.
  void push_scope();
  void pop_scope();
  [[nodiscard]] std::size_t scope_depth() const noexcept {
    return scopes_.size();
  }

  /// Recursion/eval-depth guard (runaway scripts error out).
  static constexpr int kMaxDepth = 200;

 private:
  friend struct InterpDetail;

  EvalResult eval_script(std::string_view script, int depth);
  EvalResult eval_command(const std::vector<std::string>& words);
  Result<std::vector<std::string>> parse_words(std::string_view command,
                                               int depth);
  /// Performs $, [] and backslash substitution on a word fragment.
  Result<std::string> substitute(std::string_view text, int depth);

  void register_builtins();

  std::map<std::string, Command> commands_;
  std::vector<std::map<std::string, std::string>> scopes_;  ///< [0]=global
  std::function<void(const std::string&)> output_;
  int depth_ = 0;
};

/// Splits a Tcl list (whitespace-separated words with brace/quote
/// grouping) into elements. Used by foreach and the list commands.
Result<std::vector<std::string>> split_list(const std::string& text);

/// Quotes a word so it survives a round trip through split_list.
std::string quote_word(const std::string& word);

/// Joins elements into a list string.
std::string join_list(const std::vector<std::string>& elems);

}  // namespace xdaq::xcl
