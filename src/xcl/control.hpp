// control.hpp - the primary host's cluster-control session.
//
// Paper section 3.5: "In a distributed I2O environment ... a primary host
// controls all processing nodes." ControlSession is that primary host's
// toolset: it talks to every node's executive kernel through proxy TiDs
// using the standard executive/utility message classes, and exposes the
// whole thing to XCL scripts as the `xdaq` command ensemble.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "core/executive.hpp"
#include "core/requester.hpp"
#include "xcl/interp.hpp"

namespace xdaq::xcl {

class ControlSession {
 public:
  /// `host` is the primary host's executive. A Requester device is
  /// installed on it (instance "xcl_requester"). Routes to controlled
  /// nodes must be configured on `host` before add_node.
  explicit ControlSession(core::Executive& host,
                          std::chrono::nanoseconds timeout =
                              std::chrono::seconds(2));

  ControlSession(const ControlSession&) = delete;
  ControlSession& operator=(const ControlSession&) = delete;

  /// Registers a controllable node under a script-visible name. Interns a
  /// proxy for the remote kernel.
  Status add_node(const std::string& name, i2o::NodeId node);

  [[nodiscard]] std::vector<std::string> node_names() const;

  // --- programmatic control operations ------------------------------------

  Result<i2o::ParamList> status(const std::string& node);
  Status configure(const std::string& node, const std::string& instance,
                   const i2o::ParamList& params);
  Status state_op(const std::string& node, const std::string& instance,
                  i2o::Function fn);
  Status load(const std::string& node, const std::string& class_name,
              const std::string& instance, const i2o::ParamList& params);
  /// Proxy TiD (on the host) for a named device on a controlled node.
  Result<i2o::Tid> device_proxy(const std::string& node,
                                const std::string& instance);
  Result<i2o::ParamList> param_get(const std::string& node,
                                   const std::string& instance);
  Status param_set(const std::string& node, const std::string& instance,
                   const i2o::ParamList& params);
  /// UtilNop round trip to the node's kernel.
  Status ping(const std::string& node);
  /// Full metrics snapshot from the node's MonitorDevice (install one as
  /// `instance` on the node first): executive counters, scheduler depths,
  /// pool stats, per-transport counters, histograms.
  Result<i2o::ParamList> metrics(const std::string& node,
                                 const std::string& instance = "monitor");

  /// Registers the `xdaq` command ensemble on an interpreter.
  void bind(Interp& interp);

  [[nodiscard]] core::Executive& host() noexcept { return host_; }
  [[nodiscard]] core::Requester& requester() noexcept { return *requester_; }

 private:
  struct NodeInfo {
    i2o::NodeId node = i2o::kNullNode;
    i2o::Tid kernel_proxy = i2o::kNullTid;
  };

  Result<NodeInfo> info_of(const std::string& node) const;
  Result<core::Requester::Reply> exec_call(const NodeInfo& info,
                                           i2o::Function fn,
                                           const i2o::ParamList& params);

  core::Executive& host_;
  core::Requester* requester_ = nullptr;  ///< owned by host_
  std::chrono::nanoseconds timeout_;
  std::map<std::string, NodeInfo> nodes_;
};

}  // namespace xdaq::xcl
