#include "netio/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace xdaq::netio {

namespace {
Status errno_status(Errc code, const char* what) {
  return {code, std::string(what) + ": " + std::strerror(errno)};
}

std::uint32_t interest_mask(bool read, bool write) noexcept {
  std::uint32_t ev = 0;
  if (read) {
    ev |= EPOLLIN;
  }
  if (write) {
    ev |= EPOLLOUT;
  }
  return ev;
}
}  // namespace

Status Reactor::init() {
  close();
  epfd_ = ::epoll_create1(0);
  if (epfd_ < 0) {
    return errno_status(Errc::IoError, "epoll_create1");
  }
  wakefd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wakefd_ < 0) {
    const Status st = errno_status(Errc::IoError, "eventfd");
    close();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    const Status st = errno_status(Errc::IoError, "epoll_ctl(wakefd)");
    close();
    return st;
  }
  wake_pending_.store(false, std::memory_order_relaxed);
  return Status::ok();
}

Status Reactor::add(int fd, bool read, bool write) {
  epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(add)");
  }
  return Status::ok();
}

Status Reactor::mod(int fd, bool read, bool write) {
  epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(mod)");
  }
  return Status::ok();
}

Status Reactor::del(int fd) {
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(del)");
  }
  return Status::ok();
}

void Reactor::wake() noexcept {
  if (wakefd_ < 0) {
    return;
  }
  // Pending-wake latch: the first caller of a burst writes the eventfd,
  // later callers see the latch still set and ride that write. The waiter
  // clears the latch before draining, so a caller can never observe the
  // latch set after its wake has already been consumed.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    wakes_coalesced_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t one = 1;
  entries_.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] const ssize_t n =
      ::write(wakefd_, &one, sizeof(one));  // EAGAIN = already pending
}

Result<std::span<Reactor::Event>> Reactor::wait(int timeout_ms) {
  std::array<epoll_event, 256> evs;
  int n;
  for (;;) {
    entries_.fetch_add(1, std::memory_order_relaxed);
    n = ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()),
                     timeout_ms);
    if (n >= 0) {
      break;
    }
    if (errno != EINTR) {
      return errno_status(Errc::IoError, "epoll_wait");
    }
  }
  ready_.clear();
  for (int i = 0; i < n; ++i) {
    const epoll_event& ev = evs[static_cast<std::size_t>(i)];
    if (ev.data.fd == wakefd_) {
      // Clear the latch BEFORE draining: a wake that lands after this
      // store writes the eventfd again (next wait returns immediately); a
      // wake that landed before is covered by this very wakeup.
      wake_pending_.store(false, std::memory_order_release);
      std::uint64_t drained = 0;
      entries_.fetch_add(1, std::memory_order_relaxed);
      [[maybe_unused]] const ssize_t r =
          ::read(wakefd_, &drained, sizeof(drained));
      continue;
    }
    Event out;
    out.fd = ev.data.fd;
    out.readable = (ev.events & EPOLLIN) != 0;
    out.writable = (ev.events & EPOLLOUT) != 0;
    out.error = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
    ready_.push_back(out);
  }
  return std::span<Event>(ready_);
}

void Reactor::close() noexcept {
  if (wakefd_ >= 0) {
    ::close(wakefd_);
    wakefd_ = -1;
  }
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
  ready_.clear();
}

}  // namespace xdaq::netio
