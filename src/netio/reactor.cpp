#include "netio/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace xdaq::netio {

namespace {
Status errno_status(Errc code, const char* what) {
  return {code, std::string(what) + ": " + std::strerror(errno)};
}

std::uint32_t interest_mask(bool read, bool write) noexcept {
  std::uint32_t ev = 0;
  if (read) {
    ev |= EPOLLIN;
  }
  if (write) {
    ev |= EPOLLOUT;
  }
  return ev;
}
}  // namespace

Status Reactor::init() {
  close();
  epfd_ = ::epoll_create1(0);
  if (epfd_ < 0) {
    return errno_status(Errc::IoError, "epoll_create1");
  }
  wakefd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wakefd_ < 0) {
    const Status st = errno_status(Errc::IoError, "eventfd");
    close();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    const Status st = errno_status(Errc::IoError, "epoll_ctl(wakefd)");
    close();
    return st;
  }
  return Status::ok();
}

Status Reactor::add(int fd, bool read, bool write) {
  epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(add)");
  }
  return Status::ok();
}

Status Reactor::mod(int fd, bool read, bool write) {
  epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(mod)");
  }
  return Status::ok();
}

Status Reactor::del(int fd) {
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return errno_status(Errc::IoError, "epoll_ctl(del)");
  }
  return Status::ok();
}

void Reactor::wake() noexcept {
  if (wakefd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wakefd_, &one, sizeof(one));  // EAGAIN = already pending
  }
}

Result<std::span<const Reactor::Event>> Reactor::wait(int timeout_ms) {
  std::array<epoll_event, 256> evs;
  int n;
  for (;;) {
    n = ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()),
                     timeout_ms);
    if (n >= 0) {
      break;
    }
    if (errno != EINTR) {
      return errno_status(Errc::IoError, "epoll_wait");
    }
  }
  ready_.clear();
  for (int i = 0; i < n; ++i) {
    const epoll_event& ev = evs[static_cast<std::size_t>(i)];
    if (ev.data.fd == wakefd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wakefd_, &drained, sizeof(drained));
      continue;
    }
    Event out;
    out.fd = ev.data.fd;
    out.readable = (ev.events & EPOLLIN) != 0;
    out.writable = (ev.events & EPOLLOUT) != 0;
    out.error = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
    ready_.push_back(out);
  }
  return std::span<const Event>(ready_);
}

void Reactor::close() noexcept {
  if (wakefd_ >= 0) {
    ::close(wakefd_);
    wakefd_ = -1;
  }
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
  ready_.clear();
}

}  // namespace xdaq::netio
