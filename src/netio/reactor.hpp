// reactor.hpp - incremental epoll readiness multiplexer.
//
// The Poller in socket.hpp rebuilds a poll(2) watch array from scratch on
// every wait, which is O(connections) per wakeup - fine for a handful of
// well-known peers, fatal for a C1M-style front end. The Reactor keeps the
// interest set IN THE KERNEL: fds are added, modified and deleted
// incrementally (epoll_ctl), and a wait returns only the fds that are
// actually ready, so idle connections cost nothing per iteration.
//
// Interest is explicit and edge-aware at the call level (the epoll itself
// runs level-triggered, which composes with short reads): a consumer that
// cannot make progress - e.g. the rx pool is exhausted - DISARMS its read
// interest instead of spinning on a level-triggered wakeup, and re-arms
// once it can drain again. Write interest is armed only while a partial
// write is outstanding (EAGAIN), mirroring the classic reactor discipline.
//
// wake() makes any blocked wait() return early via an eventfd registered
// in the same epoll - used for shutdown and for pool-reclaim re-arming. A
// burst of wakes is coalesced: a pending-wake latch means the first caller
// writes the eventfd and the rest ride the same write (counted in
// wakes_coalesced), so N cross-thread add/mod/del calls cost one syscall.
//
// Thread contract: wait() is single-consumer (one owning reactor thread);
// add/mod/del/wake are safe from any thread (epoll_ctl and eventfd writes
// are kernel-serialized against a concurrent epoll_wait).
//
// Reactor is the readiness implementation of IoEngine; the completion
// implementation is UringEngine (uring_engine.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "netio/io_engine.hpp"
#include "util/status.hpp"

namespace xdaq::netio {

class Reactor final : public IoEngine {
 public:
  using Event = IoEngine::Event;

  Reactor() = default;
  ~Reactor() override { close(); }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kEpoll;
  }

  /// Creates the epoll instance and the wakeup eventfd.
  Status init() override;
  [[nodiscard]] bool valid() const noexcept override { return epfd_ >= 0; }

  /// Registers `fd` with the given interest. One registration per fd.
  Status add(int fd, bool read, bool write) override;
  /// Replaces `fd`'s interest set (both flags false parks the fd: it stays
  /// registered but never fires - the disarm half of edge-aware interest).
  Status mod(int fd, bool read, bool write) override;
  /// Deregisters `fd`. Safe to call for an fd the kernel already dropped
  /// (close() auto-deregisters); errors are reported but harmless then.
  Status del(int fd) override;

  /// Makes a concurrent (or the next) wait() return immediately.
  void wake() noexcept override;

  /// Waits up to timeout_ms (-1 = indefinitely) and returns the ready
  /// events. The span aliases an internal buffer valid until the next
  /// wait(). A wake() produces an empty (or shorter) ready set, never an
  /// event for the eventfd itself.
  Result<std::span<Event>> wait(int timeout_ms) override;

  void close() noexcept override;

  [[nodiscard]] std::uint64_t kernel_entries() const noexcept override {
    return entries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wakes_coalesced() const noexcept override {
    return wakes_coalesced_.load(std::memory_order_relaxed);
  }

 private:
  int epfd_ = -1;
  int wakefd_ = -1;
  std::vector<Event> ready_;
  /// True while an eventfd write is pending / being consumed: set by the
  /// winning wake(), cleared by wait() *before* it drains the eventfd, so a
  /// wake arriving mid-drain either sees false (and writes again) or rides
  /// the in-progress wakeup - never lost, never double-paid.
  std::atomic<bool> wake_pending_{false};
  std::atomic<std::uint64_t> wakes_coalesced_{0};
  std::atomic<std::uint64_t> entries_{0};  ///< syscalls made by this engine
};

}  // namespace xdaq::netio
