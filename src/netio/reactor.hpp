// reactor.hpp - incremental epoll readiness multiplexer.
//
// The Poller in socket.hpp rebuilds a poll(2) watch array from scratch on
// every wait, which is O(connections) per wakeup - fine for a handful of
// well-known peers, fatal for a C1M-style front end. The Reactor keeps the
// interest set IN THE KERNEL: fds are added, modified and deleted
// incrementally (epoll_ctl), and a wait returns only the fds that are
// actually ready, so idle connections cost nothing per iteration.
//
// Interest is explicit and edge-aware at the call level (the epoll itself
// runs level-triggered, which composes with short reads): a consumer that
// cannot make progress - e.g. the rx pool is exhausted - DISARMS its read
// interest instead of spinning on a level-triggered wakeup, and re-arms
// once it can drain again. Write interest is armed only while a partial
// write is outstanding (EAGAIN), mirroring the classic reactor discipline.
//
// wake() makes any blocked wait() return early via an eventfd registered
// in the same epoll - used for shutdown and for pool-reclaim re-arming.
//
// Thread contract: wait() is single-consumer (one owning reactor thread);
// add/mod/del/wake are safe from any thread (epoll_ctl and eventfd writes
// are kernel-serialized against a concurrent epoll_wait).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace xdaq::netio {

class Reactor {
 public:
  /// One ready fd. `error` covers EPOLLERR | EPOLLHUP (the owner should
  /// attempt a final drain - EOF surfaces through the read path - then
  /// drop the connection).
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  Reactor() = default;
  ~Reactor() { close(); }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status init();
  [[nodiscard]] bool valid() const noexcept { return epfd_ >= 0; }

  /// Registers `fd` with the given interest. One registration per fd.
  Status add(int fd, bool read, bool write);
  /// Replaces `fd`'s interest set (both flags false parks the fd: it stays
  /// registered but never fires - the disarm half of edge-aware interest).
  Status mod(int fd, bool read, bool write);
  /// Deregisters `fd`. Safe to call for an fd the kernel already dropped
  /// (close() auto-deregisters); errors are reported but harmless then.
  Status del(int fd);

  /// Makes a concurrent (or the next) wait() return immediately.
  void wake() noexcept;

  /// Waits up to timeout_ms (-1 = indefinitely) and returns the ready
  /// events. The span aliases an internal buffer valid until the next
  /// wait(). A wake() produces an empty (or shorter) ready set, never an
  /// event for the eventfd itself.
  Result<std::span<const Event>> wait(int timeout_ms);

  void close() noexcept;

 private:
  int epfd_ = -1;
  int wakefd_ = -1;
  std::vector<Event> ready_;
};

}  // namespace xdaq::netio
