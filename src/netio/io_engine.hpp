// io_engine.hpp - the wire-engine seam between the TCP transport and the
// kernel event API.
//
// Two backends implement it:
//  * Reactor (reactor.hpp)      - epoll readiness. Events say "fd is
//    readable/writable"; the owner performs the recv/sendmsg syscalls.
//  * UringEngine (uring_engine.hpp) - io_uring completions. Events carry
//    the received bytes themselves (a pooled block filled by the kernel via
//    a provided-buffer ring) and tx completions for SQEs the owner
//    submitted; the owner makes no data syscalls at all.
//
// The interface is deliberately the union of both models rather than a
// lowest common denominator: a readiness backend leaves the completion
// fields defaulted and ignores submit_tx/flush_submissions, and the owner
// branches on completion_mode() exactly once per event. This keeps the
// PR-8 lifecycle machinery (credit flow control, shedding, parking,
// heartbeats, reconnect) backend-agnostic - only the innermost rx/tx hops
// differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "mem/pool.hpp"
#include "util/status.hpp"

namespace xdaq::netio {

class IoEngine {
 public:
  enum class Backend { kEpoll, kUring };

  /// One ready fd (readiness backend) or one completion (completion
  /// backend). `error` covers EPOLLERR/EPOLLHUP and fatal rx errors / EOF;
  /// on a readiness backend the owner should attempt a final drain, on a
  /// completion backend all preceding data already arrived as rx events.
  struct Event {
    int fd = -1;
    // -- readiness (epoll) --
    bool readable = false;
    bool writable = false;
    bool error = false;
    // -- completions (uring) --
    /// Received bytes in a pooled block (size() == byte count). The block
    /// came from the engine's provided-buffer ring; ownership transfers to
    /// the event consumer.
    mem::FrameRef rx;
    /// The fd's multishot recv stopped because the buffer ring starved
    /// (pool exhausted). The owner parks the connection and re-arms via
    /// mod(fd, read=true) once the pool reclaims.
    bool rx_stopped = false;
    /// A submit_tx() for this fd completed.
    bool tx_done = false;
    /// Bytes accepted by the kernel, or a negative errno.
    std::int64_t tx_res = 0;
  };

  virtual ~IoEngine() = default;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;

  virtual Status init() = 0;
  [[nodiscard]] virtual bool valid() const noexcept = 0;
  virtual void close() noexcept = 0;

  /// Registers `fd` with the given interest. One registration per fd. On a
  /// completion backend `read` arms multishot recv into pooled buffers.
  virtual Status add(int fd, bool read, bool write) = 0;
  /// Readiness-only registration (listening sockets): fires `readable`,
  /// never rx completions, on both backends.
  virtual Status add_poll(int fd) { return add(fd, true, false); }
  /// Replaces `fd`'s interest. Both flags false parks the fd (on a
  /// completion backend this cancels the in-flight multishot recv);
  /// read=true re-arms it. Write interest is meaningful only on a
  /// readiness backend - completion backends resume tx by resubmission.
  virtual Status mod(int fd, bool read, bool write) = 0;
  /// Deregisters `fd`. In-flight operations are cancelled; their
  /// completions are absorbed internally.
  virtual Status del(int fd) = 0;

  /// Makes a concurrent (or the next) wait() return immediately. Safe from
  /// any thread. Wakes already pending are absorbed (see wakes_coalesced).
  virtual void wake() noexcept = 0;

  /// Waits up to timeout_ms (-1 = indefinitely) and returns the ready
  /// events. The span aliases an internal buffer valid until the next
  /// wait(). A wake() produces an empty (or shorter) ready set, never an
  /// event of its own. Single-consumer: one owning engine thread.
  virtual Result<std::span<Event>> wait(int timeout_ms) = 0;

  // -- completion-backend hooks (no-ops on readiness backends) --------------

  /// True when rx/tx flow through completions (submit_tx / Event::rx)
  /// instead of readiness + caller syscalls.
  [[nodiscard]] virtual bool completion_mode() const noexcept {
    return false;
  }

  /// Queues one gathered send for `fd` covering `parts` minus the first
  /// `skip` bytes. At most one tx may be in flight per fd; completion
  /// arrives as a tx_done event. `pin` is held by the engine until that
  /// completion, keeping the buffers behind `parts` alive. Nothing reaches
  /// the kernel until flush_submissions() (end-of-batch coalescing).
  /// Engine-thread only.
  virtual Status submit_tx(int fd,
                           std::span<const std::span<const std::byte>> parts,
                           std::size_t skip, std::shared_ptr<void> pin) {
    (void)fd;
    (void)parts;
    (void)skip;
    (void)pin;
    return {Errc::Unsupported, "submit_tx: readiness backend"};
  }

  /// Submits every queued SQE in one kernel entry. Engine-thread only.
  virtual void flush_submissions() noexcept {}

  // -- accounting -----------------------------------------------------------

  /// Kernel transitions this engine has made (epoll_wait/epoll_ctl/eventfd
  /// syscalls, or io_uring_enter/eventfd syscalls). The transport adds its
  /// own recv/sendmsg calls on a readiness backend; the sum is the
  /// numerator of the syscalls-per-frame gauge.
  [[nodiscard]] virtual std::uint64_t kernel_entries() const noexcept = 0;

  /// Cross-thread wakes absorbed because a wake was already pending.
  [[nodiscard]] virtual std::uint64_t wakes_coalesced() const noexcept = 0;
};

}  // namespace xdaq::netio
