#include "netio/uring_engine.hpp"

#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/syscall.h>
#endif

// The engine needs the modern io_uring surface: multishot recv (6.0+
// headers) and provided-buffer rings (5.19+). Older trees compile the stub
// at the bottom of this file and UringEngine::supported() reports why;
// runtime kernel support is probed separately (see run_probe).
#if defined(IORING_RECV_MULTISHOT) && defined(IORING_POLL_ADD_MULTI) && \
    defined(__NR_io_uring_setup)
#define XDAQ_URING_IMPL 1
#endif

#ifdef XDAQ_URING_IMPL

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace xdaq::netio {

namespace {

Status errno_status(Errc code, const char* what) {
  return {code, std::string(what) + ": " + std::strerror(errno)};
}

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_uring_register(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

int sys_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

// user_data layout: kind(8) | generation(24) | fd(32). The generation lets
// a completion that outlives its registration (fd dropped, number reused)
// be told apart from the current occupant of the same fd.
enum UdKind : std::uint64_t {
  kUdWake = 1,
  kUdRecv = 2,
  kUdSend = 3,
  kUdPoll = 4,
  kUdCancel = 5,
};

constexpr std::uint64_t make_ud(UdKind kind, std::uint32_t gen,
                                int fd) noexcept {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(gen & 0xFFFFFFU) << 32) |
         static_cast<std::uint32_t>(fd);
}
constexpr UdKind ud_kind(std::uint64_t ud) noexcept {
  return static_cast<UdKind>(ud >> 56);
}
constexpr std::uint32_t ud_gen(std::uint64_t ud) noexcept {
  return static_cast<std::uint32_t>(ud >> 32) & 0xFFFFFFU;
}
constexpr int ud_fd(std::uint64_t ud) noexcept {
  return static_cast<int>(static_cast<std::uint32_t>(ud));
}

// The ring indices live in kernel-shared mmaps as plain integers; all
// cross-side ordering goes through atomic_ref acquire/release on them.
template <typename T>
T atomic_load_acquire(const T* p) noexcept {
  return std::atomic_ref<const T>(*p).load(std::memory_order_acquire);
}
template <typename T>
void atomic_store_release(T* p, T v) noexcept {
  std::atomic_ref<T>(*p).store(v, std::memory_order_release);
}

}  // namespace

/// Everything that talks to the kernel. Engine-thread-only after init(),
/// except the fields UringEngine itself guards (op queue, wake latch).
struct UringEngine::Ring {
  UringEngine* eng = nullptr;

  int fd = -1;
  int wakefd = -1;

  // mmap'd submission/completion rings. With IORING_FEAT_SINGLE_MMAP the
  // cq pointers alias sq_mmap and cq_mmap stays null.
  void* sq_mmap = nullptr;
  std::size_t sq_mmap_sz = 0;
  void* cq_mmap = nullptr;
  std::size_t cq_mmap_sz = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_sz = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  unsigned to_submit = 0;  ///< SQEs published but not yet entered

  // Provided-buffer ring: slot i pins a pool block via slots[i]; consumed
  // slots are re-provided (same bid, fresh block) as completions drain.
  io_uring_buf_ring* br = nullptr;
  // Entry array at the ring base. Never address entries through br->bufs:
  // under C++ the __DECLARE_FLEX_ARRAY compatibility wrapper places bufs[]
  // at offset 8 (empty-struct member + alignment), while the kernel reads
  // io_uring_buf entries from ring_addr + i * 16. Only the tail word
  // (offset 14, overlaying bufs[0].resv) is shared with the header.
  io_uring_buf* br_entries = nullptr;
  std::size_t br_sz = 0;
  unsigned br_mask = 0;
  std::uint16_t br_tail = 0;
  std::vector<mem::FrameRef> slots;
  unsigned slots_missing = 0;

  struct TxBuf {
    std::vector<iovec> iov;
    msghdr mh{};
    std::shared_ptr<void> pin;  ///< keeps the sent bytes alive until CQE
    std::uint64_t ud = 0;
  };

  struct FdState {
    std::uint32_t gen = 0;
    bool poll_only = false;
    bool want_read = false;
    bool rx_armed = false;
    bool tx_inflight = false;
    bool dying = false;  ///< del'd but a tx CQE is still outstanding
    std::uint64_t recv_ud = 0;
    std::unique_ptr<TxBuf> tx;
    std::vector<Op> deferred;  ///< ops for a reused fd number, applied
                               ///< once the dying state retires
  };

  std::unordered_map<int, FdState> fds;
  std::uint32_t gen_counter = 0;
  std::vector<Event> events;

  bool map_rings(const io_uring_params& p, Status* st) noexcept;
  /// A park/del may have left the provided-buffer ring serving nobody;
  /// checked (and cleared) by release_captive_slots.
  bool release_check = false;

  io_uring_sqe* get_sqe() noexcept;
  void flush() noexcept;
  bool provide_slot(unsigned bid) noexcept;
  void replenish_slots() noexcept;
  void release_captive_slots() noexcept;
  bool arm_recv(int sock, FdState& st) noexcept;
  void arm_wake_poll() noexcept;
  void arm_poll(int sock, FdState& st) noexcept;
  void push_cancel(std::uint64_t target_ud) noexcept;
  void apply_op(const Op& op) noexcept;
  void drain_ops() noexcept;
  void retire_dying(int sock) noexcept;
  void handle_cqe(const io_uring_cqe& cqe) noexcept;
  void harvest() noexcept;
  void unmap() noexcept;
};

bool UringEngine::Ring::map_rings(const io_uring_params& p,
                                  Status* st) noexcept {
  sq_mmap_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_mmap_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single) {
    sq_mmap_sz = cq_mmap_sz = std::max(sq_mmap_sz, cq_mmap_sz);
  }
  sq_mmap = ::mmap(nullptr, sq_mmap_sz, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (sq_mmap == MAP_FAILED) {
    sq_mmap = nullptr;
    *st = errno_status(Errc::IoError, "mmap(sq ring)");
    return false;
  }
  if (!single) {
    cq_mmap = ::mmap(nullptr, cq_mmap_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq_mmap == MAP_FAILED) {
      cq_mmap = nullptr;
      *st = errno_status(Errc::IoError, "mmap(cq ring)");
      return false;
    }
  }
  sqes_sz = p.sq_entries * sizeof(io_uring_sqe);
  void* sqes_mem = ::mmap(nullptr, sqes_sz, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes_mem == MAP_FAILED) {
    *st = errno_status(Errc::IoError, "mmap(sqes)");
    return false;
  }
  sqes = static_cast<io_uring_sqe*>(sqes_mem);

  auto* sq = static_cast<std::byte*>(sq_mmap);
  auto* cq = static_cast<std::byte*>(single ? sq_mmap : cq_mmap);
  sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  sq_mask = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  sq_entries = p.sq_entries;
  sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  cq_mask = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  return true;
}

void UringEngine::Ring::unmap() noexcept {
  if (br != nullptr) {
    ::munmap(br, br_sz);
    br = nullptr;
  }
  if (sqes != nullptr) {
    ::munmap(sqes, sqes_sz);
    sqes = nullptr;
  }
  if (cq_mmap != nullptr) {
    ::munmap(cq_mmap, cq_mmap_sz);
    cq_mmap = nullptr;
  }
  if (sq_mmap != nullptr) {
    ::munmap(sq_mmap, sq_mmap_sz);
    sq_mmap = nullptr;
  }
}

io_uring_sqe* UringEngine::Ring::get_sqe() noexcept {
  unsigned head = atomic_load_acquire(sq_head);
  if (*sq_tail - head >= sq_entries) {
    flush();  // make room: hand queued SQEs to the kernel
    head = atomic_load_acquire(sq_head);
    if (*sq_tail - head >= sq_entries) {
      return nullptr;  // kernel refused (CQ overflow backpressure)
    }
  }
  const unsigned tail = *sq_tail;
  const unsigned idx = tail & sq_mask;
  io_uring_sqe* sqe = &sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array[idx] = idx;
  atomic_store_release(sq_tail, tail + 1);
  ++to_submit;
  return sqe;
}

void UringEngine::Ring::flush() noexcept {
  if (to_submit == 0) {
    return;
  }
  eng->enter_calls_.fetch_add(1, std::memory_order_relaxed);
  const int n = sys_uring_enter(fd, to_submit, 0, 0, nullptr, 0);
  if (n > 0) {
    eng->sqe_batches_.fetch_add(1, std::memory_order_relaxed);
    eng->sqes_submitted_.fetch_add(static_cast<unsigned>(n),
                                   std::memory_order_relaxed);
    to_submit -= std::min(to_submit, static_cast<unsigned>(n));
  }
  // n < 0 (EBUSY: CQ overflow) leaves to_submit for the next wait(),
  // which harvests completions first and retries.
}

bool UringEngine::Ring::provide_slot(unsigned bid) noexcept {
  auto res = eng->pool_.allocate(eng->cfg_.rx_slot_bytes);
  if (!res.is_ok()) {
    eng->pool_.arm_reclaim();
    return false;
  }
  mem::FrameRef ref = std::move(res.value());
  io_uring_buf& slot = br_entries[br_tail & br_mask];
  slot.addr = reinterpret_cast<std::uint64_t>(ref.bytes().data());
  slot.len = static_cast<std::uint32_t>(eng->cfg_.rx_slot_bytes);
  slot.bid = static_cast<std::uint16_t>(bid);
  slots[bid] = std::move(ref);
  ++br_tail;
  atomic_store_release(&br->tail, br_tail);
  eng->slot_refills_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void UringEngine::Ring::replenish_slots() noexcept {
  if (slots_missing == 0) {
    return;
  }
  for (unsigned bid = 0; bid < slots.size() && slots_missing > 0; ++bid) {
    if (slots[bid].valid()) {
      continue;
    }
    if (!provide_slot(bid)) {
      return;  // pool exhausted; reclaim listener will wake us to retry
    }
    --slots_missing;
  }
}

void UringEngine::Ring::release_captive_slots() noexcept {
  // With every multishot recv disarmed and no fd wanting one, the blocks
  // provided to the kernel serve nobody - and on a fully consumed pool
  // they are exactly the reclaim a parked connection's roll is waiting
  // for. Unregister the ring (resetting the kernel's head), hand the
  // blocks back to the pool, and re-register empty; the next unpark's
  // arm_recv replenishes from the recovered pool.
  bool provided = false;
  for (const auto& s : slots) {
    if (s.valid()) {
      provided = true;
      break;
    }
  }
  if (!provided) {
    release_check = false;
    return;
  }
  for (const auto& [sock, st] : fds) {
    if (st.poll_only || st.dying) {
      continue;
    }
    if (st.rx_armed || st.want_read) {
      return;  // someone still reads; slots stay armed for them
    }
  }
  io_uring_buf_reg unreg{};
  unreg.bgid = eng->cfg_.buf_group;
  if (sys_uring_register(fd, IORING_UNREGISTER_PBUF_RING, &unreg, 1) < 0) {
    release_check = false;
    return;
  }
  std::memset(br, 0, br_sz);
  br_tail = 0;
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(br);
  reg.ring_entries = eng->cfg_.rx_slots;
  reg.bgid = eng->cfg_.buf_group;
  [[maybe_unused]] const int rc =
      sys_uring_register(fd, IORING_REGISTER_PBUF_RING, &reg, 1);
  for (auto& s : slots) {
    if (s.valid()) {
      s.reset();  // back to the pool -> armed reclaim listeners fire
      ++slots_missing;
    }
  }
  release_check = false;
}

bool UringEngine::Ring::arm_recv(int sock, FdState& st) noexcept {
  io_uring_sqe* sqe = get_sqe();
  if (sqe == nullptr) {
    return false;
  }
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = sock;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = eng->cfg_.buf_group;
  st.recv_ud = make_ud(kUdRecv, st.gen, sock);
  sqe->user_data = st.recv_ud;
  st.rx_armed = true;
  return true;
}

void UringEngine::Ring::arm_wake_poll() noexcept {
  io_uring_sqe* sqe = get_sqe();
  if (sqe == nullptr) {
    return;
  }
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = wakefd;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->poll32_events = POLLIN;
  sqe->user_data = make_ud(kUdWake, 0, wakefd);
}

void UringEngine::Ring::arm_poll(int sock, FdState& st) noexcept {
  io_uring_sqe* sqe = get_sqe();
  if (sqe == nullptr) {
    return;
  }
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = sock;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->poll32_events = POLLIN;
  sqe->user_data = make_ud(kUdPoll, st.gen, sock);
  st.rx_armed = true;
}

void UringEngine::Ring::push_cancel(std::uint64_t target_ud) noexcept {
  io_uring_sqe* sqe = get_sqe();
  if (sqe == nullptr) {
    return;
  }
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_ud;
  sqe->user_data = make_ud(kUdCancel, 0, 0);
}

void UringEngine::Ring::apply_op(const Op& op) noexcept {
  auto it = fds.find(op.fd);
  if (it != fds.end() && it->second.dying) {
    // The fd number was dropped and reused while a tx CQE is still in
    // flight for the old occupant; apply this op once it retires.
    it->second.deferred.push_back(op);
    return;
  }
  switch (op.kind) {
    case Op::Kind::kAdd:
    case Op::Kind::kAddPoll: {
      FdState st;
      st.gen = ++gen_counter;
      st.poll_only = op.kind == Op::Kind::kAddPoll;
      st.want_read = op.read;
      FdState& ref = fds[op.fd] = std::move(st);
      if (op.read) {
        if (ref.poll_only) {
          arm_poll(op.fd, ref);
        } else {
          replenish_slots();
          arm_recv(op.fd, ref);
        }
      }
      break;
    }
    case Op::Kind::kMod: {
      if (it == fds.end()) {
        break;
      }
      FdState& st = it->second;
      st.want_read = op.read;
      if (!op.read && !st.poll_only) {
        release_check = true;  // last reader parked? free captive slots
      }
      if (!op.read && st.rx_armed) {
        push_cancel(st.recv_ud);  // park: stop the multishot recv
      } else if (op.read && !st.rx_armed && !st.poll_only) {
        replenish_slots();
        if (arm_recv(op.fd, st)) {
          eng->multishot_rearms_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Write interest has no meaning here: tx resumes by resubmission.
      break;
    }
    case Op::Kind::kDel: {
      if (it == fds.end()) {
        break;
      }
      FdState& st = it->second;
      if (!st.poll_only) {
        release_check = true;
      }
      if (st.rx_armed) {
        push_cancel(st.recv_ud);
      }
      if (st.tx_inflight) {
        // Keep the state (and the pinned tx buffers) until the tx CQE
        // retires it; meanwhile the fd number may be reused - ops for the
        // new occupant queue on `deferred`.
        st.dying = true;
        st.want_read = false;
        push_cancel(st.tx->ud);
      } else {
        fds.erase(it);
      }
      break;
    }
  }
}

void UringEngine::Ring::drain_ops() noexcept {
  std::vector<Op> ops;
  {
    const std::scoped_lock lock(eng->ops_mutex_);
    ops.swap(eng->ops_);
  }
  for (const Op& op : ops) {
    apply_op(op);
  }
}

void UringEngine::Ring::retire_dying(int sock) noexcept {
  auto it = fds.find(sock);
  if (it == fds.end() || !it->second.dying) {
    return;
  }
  std::vector<Op> deferred = std::move(it->second.deferred);
  fds.erase(it);
  for (const Op& op : deferred) {
    apply_op(op);
  }
}

void UringEngine::Ring::handle_cqe(const io_uring_cqe& cqe) noexcept {
  const std::uint64_t ud = cqe.user_data;
  switch (ud_kind(ud)) {
    case kUdWake: {
      // Clear the latch BEFORE draining, mirroring Reactor::wait.
      eng->wake_pending_.store(false, std::memory_order_release);
      std::uint64_t drained = 0;
      eng->eventfd_syscalls_.fetch_add(1, std::memory_order_relaxed);
      [[maybe_unused]] const ssize_t n =
          ::read(wakefd, &drained, sizeof(drained));
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        arm_wake_poll();
      }
      break;
    }
    case kUdPoll: {
      auto it = fds.find(ud_fd(ud));
      if (it == fds.end() || it->second.gen != ud_gen(ud)) {
        break;
      }
      Event ev;
      ev.fd = ud_fd(ud);
      if (cqe.res < 0) {
        ev.error = true;
      } else {
        const auto mask = static_cast<unsigned>(cqe.res);
        ev.readable = (mask & POLLIN) != 0;
        ev.error = (mask & (POLLERR | POLLHUP)) != 0;
      }
      events.push_back(std::move(ev));
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        it->second.rx_armed = false;
        if (it->second.want_read) {
          arm_poll(ud_fd(ud), it->second);
        }
      }
      break;
    }
    case kUdRecv: {
      // Reclaim the consumed ring slot first, whatever the fd's fate: the
      // buffer belongs to the engine, not the (possibly gone) connection.
      mem::FrameRef blk;
      if ((cqe.flags & IORING_CQE_F_BUFFER) != 0) {
        const unsigned bid = cqe.flags >> IORING_CQE_BUFFER_SHIFT;
        if (bid < slots.size()) {
          blk = std::move(slots[bid]);
          if (!provide_slot(bid)) {
            ++slots_missing;
          }
        }
      }
      const int sock = ud_fd(ud);
      auto it = fds.find(sock);
      const bool live = it != fds.end() && it->second.gen == ud_gen(ud) &&
                        !it->second.poll_only;
      if (cqe.res > 0 && blk.valid() && live) {
        blk.resize(static_cast<std::size_t>(cqe.res));
        eng->registered_buffer_hits_.fetch_add(1, std::memory_order_relaxed);
        Event ev;
        ev.fd = sock;
        ev.rx = std::move(blk);
        events.push_back(std::move(ev));
      }
      if (live && (cqe.flags & IORING_CQE_F_MORE) == 0) {
        FdState& st = it->second;
        st.rx_armed = false;
        if (cqe.res == -ENOBUFS) {
          // Buffer ring starved. Two distinct causes share this errno: a
          // completion burst that outran the per-CQE re-provision cycle
          // (the pool is fine - refill and re-arm right here), and real
          // pool exhaustion (provide_slot failed and armed the reclaim
          // listener - surface rx_stopped so the owner parks until the
          // pool wakes us). Telling them apart matters: a park with no
          // armed reclaim never gets its wake.
          eng->buffer_starvations_.fetch_add(1, std::memory_order_relaxed);
          if (st.want_read) {
            replenish_slots();
            bool ring_has_buffers = false;
            for (const auto& s : slots) {
              if (s.valid()) {
                ring_has_buffers = true;
                break;
              }
            }
            if (ring_has_buffers && arm_recv(sock, st)) {
              eng->multishot_rearms_.fetch_add(1,
                                               std::memory_order_relaxed);
            } else {
              Event ev;
              ev.fd = sock;
              ev.rx_stopped = true;
              events.push_back(std::move(ev));
            }
          }
        } else if (cqe.res == 0 || (cqe.res < 0 && cqe.res != -ECANCELED)) {
          // EOF or a hard error; all preceding data already arrived as
          // completions, so the owner can drop straight away.
          Event ev;
          ev.fd = sock;
          ev.error = true;
          events.push_back(std::move(ev));
        } else if (st.want_read) {
          // Benign termination (data without F_MORE, or our own cancel
          // racing an unpark): keep receiving.
          replenish_slots();
          if (arm_recv(sock, st)) {
            eng->multishot_rearms_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      break;
    }
    case kUdSend: {
      const int sock = ud_fd(ud);
      auto it = fds.find(sock);
      if (it == fds.end() || it->second.tx == nullptr ||
          it->second.tx->ud != ud) {
        break;  // completion for a registration that already retired
      }
      FdState& st = it->second;
      st.tx_inflight = false;
      st.tx->pin.reset();  // sent bytes may be released
      if (st.dying) {
        retire_dying(sock);
        break;
      }
      Event ev;
      ev.fd = sock;
      ev.tx_done = true;
      ev.tx_res = cqe.res;
      events.push_back(std::move(ev));
      break;
    }
    case kUdCancel:
      break;  // the cancelled op reports through its own CQE
  }
}

void UringEngine::Ring::harvest() noexcept {
  unsigned head = *cq_head;
  const unsigned tail = atomic_load_acquire(cq_tail);
  while (head != tail) {
    const io_uring_cqe& cqe = cqes[head & cq_mask];
    ++head;
    // Publish progressively so a long burst frees CQ room as it drains.
    atomic_store_release(cq_head, head);
    handle_cqe(cqe);
  }
}

// -- UringEngine ------------------------------------------------------------

UringEngine::UringEngine(mem::Pool& pool, UringConfig cfg)
    : pool_(pool), cfg_(cfg) {}

UringEngine::~UringEngine() { close(); }

bool UringEngine::valid() const noexcept {
  return ring_ != nullptr && ring_->fd >= 0;
}

std::uint64_t UringEngine::kernel_entries() const noexcept {
  return enter_calls_.load(std::memory_order_relaxed) +
         eventfd_syscalls_.load(std::memory_order_relaxed);
}

UringStats UringEngine::stats() const noexcept {
  UringStats s;
  s.enter_calls = enter_calls_.load(std::memory_order_relaxed);
  s.sqe_batches = sqe_batches_.load(std::memory_order_relaxed);
  s.sqes_submitted = sqes_submitted_.load(std::memory_order_relaxed);
  s.multishot_rearms = multishot_rearms_.load(std::memory_order_relaxed);
  s.registered_buffer_hits =
      registered_buffer_hits_.load(std::memory_order_relaxed);
  s.buffer_starvations = buffer_starvations_.load(std::memory_order_relaxed);
  s.slot_refills = slot_refills_.load(std::memory_order_relaxed);
  return s;
}

Status UringEngine::init() {
  close();
  if (cfg_.rx_slots == 0 || (cfg_.rx_slots & (cfg_.rx_slots - 1)) != 0) {
    return {Errc::InvalidArgument, "rx_slots must be a power of two"};
  }
  ring_ = std::make_unique<Ring>();
  Ring& r = *ring_;
  r.eng = this;

  io_uring_params p{};
  r.fd = sys_uring_setup(cfg_.sq_entries, &p);
  if (r.fd < 0) {
    const Status st = errno_status(Errc::Unsupported, "io_uring_setup");
    ring_.reset();
    return st;
  }
  if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
    close();
    return {Errc::Unsupported, "io_uring lacks IORING_FEAT_EXT_ARG"};
  }
  Status st = Status::ok();
  if (!r.map_rings(p, &st)) {
    close();
    return st;
  }

  // Provided-buffer ring (the registered pooled rx buffers).
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  r.br_sz = (cfg_.rx_slots * sizeof(io_uring_buf) + page - 1) & ~(page - 1);
  void* br = ::mmap(nullptr, r.br_sz, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (br == MAP_FAILED) {
    close();
    return errno_status(Errc::IoError, "mmap(buf ring)");
  }
  r.br = static_cast<io_uring_buf_ring*>(br);
  r.br_entries = static_cast<io_uring_buf*>(br);
  r.br_mask = cfg_.rx_slots - 1;
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(r.br);
  reg.ring_entries = cfg_.rx_slots;
  reg.bgid = cfg_.buf_group;
  if (sys_uring_register(r.fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    const Status rst =
        errno_status(Errc::Unsupported, "io_uring_register(PBUF_RING)");
    close();
    return rst;
  }
  r.slots.resize(cfg_.rx_slots);
  r.slots_missing = cfg_.rx_slots;
  r.replenish_slots();

  r.wakefd = ::eventfd(0, EFD_NONBLOCK);
  if (r.wakefd < 0) {
    const Status wst = errno_status(Errc::IoError, "eventfd");
    close();
    return wst;
  }
  wake_pending_.store(false, std::memory_order_relaxed);
  r.arm_wake_poll();
  r.flush();
  return Status::ok();
}

void UringEngine::close() noexcept {
  if (!ring_) {
    return;
  }
  Ring& r = *ring_;
  if (r.br != nullptr && r.fd >= 0) {
    io_uring_buf_reg reg{};
    reg.bgid = cfg_.buf_group;
    (void)sys_uring_register(r.fd, IORING_UNREGISTER_PBUF_RING, &reg, 1);
  }
  if (r.wakefd >= 0) {
    ::close(r.wakefd);
  }
  if (r.fd >= 0) {
    ::close(r.fd);
  }
  r.unmap();
  ring_.reset();
}

void UringEngine::enqueue_op(Op op) noexcept {
  {
    const std::scoped_lock lock(ops_mutex_);
    ops_.push_back(op);
  }
  wake();
}

Status UringEngine::add(int fd, bool read, bool write) {
  enqueue_op({Op::Kind::kAdd, fd, read, write});
  return Status::ok();
}

Status UringEngine::add_poll(int fd) {
  enqueue_op({Op::Kind::kAddPoll, fd, true, false});
  return Status::ok();
}

Status UringEngine::mod(int fd, bool read, bool write) {
  enqueue_op({Op::Kind::kMod, fd, read, write});
  return Status::ok();
}

Status UringEngine::del(int fd) {
  enqueue_op({Op::Kind::kDel, fd, false, false});
  return Status::ok();
}

Status UringEngine::submit_tx(
    int fd, std::span<const std::span<const std::byte>> parts,
    std::size_t skip, std::shared_ptr<void> pin) {
  Ring& r = *ring_;
  r.drain_ops();  // a just-registered fd may still sit in the op queue
  auto it = r.fds.find(fd);
  if (it == r.fds.end() || it->second.dying) {
    return {Errc::NotFound, "submit_tx: fd not registered"};
  }
  Ring::FdState& st = it->second;
  if (st.tx_inflight) {
    return {Errc::InvalidArgument, "submit_tx: tx already in flight"};
  }
  if (!st.tx) {
    st.tx = std::make_unique<Ring::TxBuf>();
  }
  Ring::TxBuf& tx = *st.tx;
  tx.iov.clear();
  std::size_t remaining_skip = skip;
  for (const auto& part : parts) {
    if (remaining_skip >= part.size()) {
      remaining_skip -= part.size();
      continue;
    }
    iovec iov{};
    iov.iov_base = const_cast<std::byte*>(part.data()) + remaining_skip;
    iov.iov_len = part.size() - remaining_skip;
    remaining_skip = 0;
    tx.iov.push_back(iov);
  }
  if (tx.iov.empty()) {
    return {Errc::InvalidArgument, "submit_tx: nothing past skip"};
  }
  io_uring_sqe* sqe = r.get_sqe();
  if (sqe == nullptr) {
    return {Errc::ResourceExhausted, "submission queue full"};
  }
  tx.mh = msghdr{};
  tx.mh.msg_iov = tx.iov.data();
  tx.mh.msg_iovlen = tx.iov.size();
  tx.pin = std::move(pin);
  tx.ud = make_ud(kUdSend, st.gen, fd);
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(&tx.mh);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = tx.ud;
  st.tx_inflight = true;
  return Status::ok();
}

void UringEngine::flush_submissions() noexcept {
  if (ring_) {
    ring_->flush();
  }
}

void UringEngine::wake() noexcept {
  if (!ring_ || ring_->wakefd < 0) {
    return;
  }
  // Same pending-wake latch as Reactor::wake: one eventfd write covers a
  // burst of cross-thread wakes.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    wakes_coalesced_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t one = 1;
  eventfd_syscalls_.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] const ssize_t n =
      ::write(ring_->wakefd, &one, sizeof(one));
}

Result<std::span<IoEngine::Event>> UringEngine::wait(int timeout_ms) {
  Ring& r = *ring_;
  r.events.clear();
  r.drain_ops();
  r.replenish_slots();
  r.harvest();
  if (r.release_check) {
    r.release_captive_slots();
  }
  if (!r.events.empty()) {
    r.flush();
    return std::span<Event>(r.events);
  }
  // Nothing ready: submit whatever is queued and block for one completion.
  __kernel_timespec ts{};
  io_uring_getevents_arg arg{};
  const void* argp = nullptr;
  std::size_t argsz = 0;
  unsigned flags = IORING_ENTER_GETEVENTS;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    argp = &arg;
    argsz = sizeof(arg);
    flags |= IORING_ENTER_EXT_ARG;
  }
  const unsigned to_submit = r.to_submit;
  enter_calls_.fetch_add(1, std::memory_order_relaxed);
  const int n = sys_uring_enter(r.fd, to_submit, 1, flags, argp, argsz);
  if (n >= 0) {
    if (n > 0 && to_submit > 0) {
      sqe_batches_.fetch_add(1, std::memory_order_relaxed);
      sqes_submitted_.fetch_add(static_cast<unsigned>(n),
                                std::memory_order_relaxed);
    }
    r.to_submit -= std::min(r.to_submit, static_cast<unsigned>(n));
  } else if (errno != ETIME && errno != EINTR && errno != EBUSY) {
    return errno_status(Errc::IoError, "io_uring_enter");
  }
  r.harvest();
  return std::span<Event>(r.events);
}

// -- runtime capability probe ----------------------------------------------

namespace {

struct ProbeResult {
  bool ok = false;
  std::string reason;
};

/// End-to-end smoke of exactly the features the engine uses: setup + ring
/// mmaps, a provided-buffer ring, a multishot recv that actually selects a
/// buffer, EXT_ARG timed waits. Run once per process.
ProbeResult run_probe() {
  ProbeResult out;
  if (const char* dis = std::getenv("XDAQ_URING_DISABLE");
      dis != nullptr && dis[0] != '\0' && dis[0] != '0') {
    out.reason = "disabled by XDAQ_URING_DISABLE";
    return out;
  }
  io_uring_params p{};
  const int ring_fd = sys_uring_setup(8, &p);
  if (ring_fd < 0) {
    out.reason = std::string("io_uring_setup: ") + std::strerror(errno);
    return out;
  }
  UringEngine::Ring r;
  r.fd = ring_fd;
  Status st = Status::ok();
  void* br_mem = nullptr;
  int sp[2] = {-1, -1};
  const auto cleanup = [&] {
    if (sp[0] >= 0) {
      ::close(sp[0]);
    }
    if (sp[1] >= 0) {
      ::close(sp[1]);
    }
    if (br_mem != nullptr) {
      ::munmap(br_mem, 4096);
    }
    r.unmap();
    ::close(ring_fd);
  };
  if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
    out.reason = "kernel lacks IORING_FEAT_EXT_ARG";
    cleanup();
    return out;
  }
  if (!r.map_rings(p, &st)) {
    out.reason = std::string(st.message());
    cleanup();
    return out;
  }
  br_mem = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (br_mem == MAP_FAILED) {
    br_mem = nullptr;
    out.reason = "mmap(buf ring) failed";
    cleanup();
    return out;
  }
  auto* br = static_cast<io_uring_buf_ring*>(br_mem);
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(br);
  reg.ring_entries = 4;
  reg.bgid = 0;
  if (sys_uring_register(ring_fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    out.reason = std::string("kernel lacks provided-buffer rings: ") +
                 std::strerror(errno);
    cleanup();
    return out;
  }
  static char probe_buf[256];
  // Entries live at the ring base (see Ring::br_entries for why br->bufs
  // cannot be used from C++).
  auto* entries = static_cast<io_uring_buf*>(br_mem);
  entries[0].addr = reinterpret_cast<std::uint64_t>(probe_buf);
  entries[0].len = sizeof(probe_buf);
  entries[0].bid = 0;
  atomic_store_release(&br->tail, static_cast<std::uint16_t>(1));
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
    out.reason = "socketpair failed";
    cleanup();
    return out;
  }
  const unsigned idx = *r.sq_tail & r.sq_mask;
  io_uring_sqe* sqe = &r.sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = sp[0];
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  sqe->user_data = 0x7e57;
  r.sq_array[idx] = idx;
  atomic_store_release(r.sq_tail, *r.sq_tail + 1);
  const char msg[] = "uring-probe";
  [[maybe_unused]] const ssize_t w = ::write(sp[1], msg, sizeof(msg));
  __kernel_timespec ts{};
  ts.tv_nsec = 200 * 1000000;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  (void)sys_uring_enter(ring_fd, 1, 1,
                        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
                        sizeof(arg));
  const unsigned tail = atomic_load_acquire(r.cq_tail);
  bool got = false;
  for (unsigned head = *r.cq_head; head != tail; ++head) {
    const io_uring_cqe& cqe = r.cqes[head & r.cq_mask];
    if (cqe.user_data == 0x7e57 && cqe.res > 0 &&
        (cqe.flags & IORING_CQE_F_BUFFER) != 0) {
      got = true;
    }
  }
  if (!got) {
    out.reason = "multishot recv with provided buffers did not complete";
    cleanup();
    return out;
  }
  out.ok = true;
  cleanup();
  return out;
}

}  // namespace

bool UringEngine::supported(std::string* reason) {
  static const ProbeResult probe = run_probe();
  if (!probe.ok && reason != nullptr) {
    *reason = probe.reason;
  }
  return probe.ok;
}

}  // namespace xdaq::netio

#else  // !XDAQ_URING_IMPL: headers too old - compile a stub that reports so.

namespace xdaq::netio {

struct UringEngine::Ring {};

UringEngine::UringEngine(mem::Pool& pool, UringConfig cfg)
    : pool_(pool), cfg_(cfg) {}
UringEngine::~UringEngine() = default;

bool UringEngine::supported(std::string* reason) {
  if (reason != nullptr) {
    *reason = "built without io_uring support (<linux/io_uring.h> too old)";
  }
  return false;
}

Status UringEngine::init() {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
bool UringEngine::valid() const noexcept { return false; }
void UringEngine::close() noexcept {}
Status UringEngine::add(int, bool, bool) {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
Status UringEngine::add_poll(int) {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
Status UringEngine::mod(int, bool, bool) {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
Status UringEngine::del(int) {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
void UringEngine::wake() noexcept {}
Result<std::span<IoEngine::Event>> UringEngine::wait(int) {
  return Status{Errc::Unsupported, "io_uring support not compiled in"};
}
Status UringEngine::submit_tx(int,
                              std::span<const std::span<const std::byte>>,
                              std::size_t, std::shared_ptr<void>) {
  return {Errc::Unsupported, "io_uring support not compiled in"};
}
void UringEngine::flush_submissions() noexcept {}
std::uint64_t UringEngine::kernel_entries() const noexcept { return 0; }
UringStats UringEngine::stats() const noexcept { return {}; }
void UringEngine::enqueue_op(Op) noexcept {}

}  // namespace xdaq::netio

#endif  // XDAQ_URING_IMPL
