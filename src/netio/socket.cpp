#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace xdaq::netio {

namespace {
Status errno_status(Errc code, const char* what) {
  return {code, std::string(what) + ": " + std::strerror(errno)};
}

Status resolve_v4(const std::string& host, std::uint16_t port,
                  sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  const std::string addr = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, addr.c_str(), &out.sin_addr) != 1) {
    return {Errc::InvalidArgument, "cannot parse IPv4 address: " + host};
  }
  return Status::ok();
}
}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::connect(const std::string& host,
                                     std::uint16_t port) {
  sockaddr_in sa{};
  if (Status s = resolve_v4(host, port, sa); !s.is_ok()) {
    return s;
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return errno_status(Errc::IoError, "socket");
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    return errno_status(Errc::IoError, "connect");
  }
  return TcpStream(std::move(sock));
}

Status TcpStream::set_nodelay(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(sock_.fd(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return errno_status(Errc::IoError, "setsockopt(TCP_NODELAY)");
  }
  return Status::ok();
}

Status TcpStream::set_nonblocking(bool on) {
  const int flags = ::fcntl(sock_.fd(), F_GETFL, 0);
  if (flags < 0) {
    return errno_status(Errc::IoError, "fcntl(F_GETFL)");
  }
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(sock_.fd(), F_SETFL, next) != 0) {
    return errno_status(Errc::IoError, "fcntl(F_SETFL)");
  }
  return Status::ok();
}

Status TcpStream::write_all(std::span<const std::byte> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(sock_.fd(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status(Errc::IoError, "send");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status TcpStream::read_exact(std::span<std::byte> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::recv(sock_.fd(), data.data() + off,
                             data.size() - off, 0);
    if (n == 0) {
      return {Errc::ConnectionClosed, "peer closed during read_exact"};
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status(Errc::IoError, "recv");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<std::size_t> TcpStream::read_some(std::span<std::byte> data) {
  for (;;) {
    const ssize_t n = ::recv(sock_.fd(), data.data(), data.size(), 0);
    if (n >= 0) {
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status{Errc::Timeout, "no data available"};
    }
    return errno_status(Errc::IoError, "recv");
  }
}

Result<std::size_t> TcpStream::read_available(std::span<std::byte> data) {
  for (;;) {
    const ssize_t n =
        ::recv(sock_.fd(), data.data(), data.size(), MSG_DONTWAIT);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
    if (n == 0) {
      return Status{Errc::ConnectionClosed, "peer closed"};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status{Errc::Timeout, "no data available"};
    }
    return errno_status(Errc::IoError, "recv");
  }
}

void TcpStream::shutdown() noexcept {
  if (sock_.valid()) {
    ::shutdown(sock_.fd(), SHUT_RDWR);
  }
}

Status TcpStream::write_all2(std::span<const std::byte> a,
                             std::span<const std::byte> b) {
  std::size_t off = 0;
  const std::size_t total = a.size() + b.size();
  while (off < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (off < a.size()) {
      iov[iovcnt++] = {const_cast<std::byte*>(a.data()) + off,
                       a.size() - off};
      if (!b.empty()) {
        iov[iovcnt++] = {const_cast<std::byte*>(b.data()), b.size()};
      }
    } else {
      const std::size_t boff = off - a.size();
      iov[iovcnt++] = {const_cast<std::byte*>(b.data()) + boff,
                       b.size() - boff};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status(Errc::IoError, "sendmsg");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status TcpStream::write_vec(std::span<const std::span<const std::byte>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
  }
  std::size_t off = 0;  ///< bytes of the concatenation already written
  while (off < total) {
    // Locate the first part not fully consumed and gather from there.
    iovec iov[64];
    constexpr std::size_t kMaxIov = sizeof(iov) / sizeof(iov[0]);
    std::size_t iovcnt = 0;
    std::size_t skip = off;
    for (const auto& p : parts) {
      if (skip >= p.size()) {
        skip -= p.size();
        continue;
      }
      if (iovcnt == kMaxIov) {
        break;
      }
      iov[iovcnt++] = {const_cast<std::byte*>(p.data()) + skip,
                       p.size() - skip};
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status(Errc::IoError, "sendmsg");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<std::size_t> TcpStream::write_vec_some(
    std::span<const std::span<const std::byte>> parts, std::size_t skip) {
  iovec iov[64];
  constexpr std::size_t kMaxIov = sizeof(iov) / sizeof(iov[0]);
  std::size_t iovcnt = 0;
  std::size_t rest = skip;
  for (const auto& p : parts) {
    if (rest >= p.size()) {
      rest -= p.size();
      continue;
    }
    if (iovcnt == kMaxIov) {
      break;
    }
    iov[iovcnt++] = {const_cast<std::byte*>(p.data()) + rest,
                     p.size() - rest};
    rest = 0;
  }
  if (iovcnt == 0) {
    return std::size_t{0};  // skip covered everything
  }
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = iovcnt;
  for (;;) {
    const ssize_t n =
        ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status{Errc::Timeout, "socket buffer full"};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status{Errc::ConnectionClosed, "peer closed"};
    }
    return errno_status(Errc::IoError, "sendmsg");
  }
}

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return errno_status(Errc::IoError, "socket");
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return errno_status(Errc::IoError, "bind");
  }
  // Deep backlog: a mass (re)connect of thousands of clients must not see
  // RST because the accept loop is one epoll batch behind. The kernel
  // clamps to net.core.somaxconn.
  if (::listen(sock.fd(), 4096) != 0) {
    return errno_status(Errc::IoError, "listen");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return errno_status(Errc::IoError, "getsockname");
  }
  TcpListener out;
  out.sock_ = std::move(sock);
  out.port_ = ntohs(sa.sin_port);
  return out;
}

Result<TcpStream> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      return TcpStream(Socket(fd));
    }
    if (errno == EINTR) {
      continue;
    }
    return errno_status(Errc::IoError, "accept");
  }
}

Result<std::optional<TcpStream>> TcpListener::try_accept() {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd >= 0) {
    return std::optional<TcpStream>(TcpStream(Socket(fd)));
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return std::optional<TcpStream>(std::nullopt);
  }
  return errno_status(Errc::IoError, "accept");
}

Status TcpListener::set_nonblocking(bool on) {
  const int flags = ::fcntl(sock_.fd(), F_GETFL, 0);
  if (flags < 0) {
    return errno_status(Errc::IoError, "fcntl(F_GETFL)");
  }
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(sock_.fd(), F_SETFL, next) != 0) {
    return errno_status(Errc::IoError, "fcntl(F_SETFL)");
  }
  return Status::ok();
}

void Poller::watch(int fd) {
  if (std::find(fds_.begin(), fds_.end(), fd) == fds_.end()) {
    fds_.push_back(fd);
  }
}

void Poller::unwatch(int fd) {
  fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
}

void Poller::clear() noexcept { fds_.clear(); }

Result<std::vector<int>> Poller::wait_readable(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const int fd : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  for (;;) {
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return errno_status(Errc::IoError, "poll");
    }
    std::vector<int> ready;
    for (const pollfd& p : pfds) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ready.push_back(p.fd);
      }
    }
    return ready;
  }
}

}  // namespace xdaq::netio
