// uring_engine.hpp - io_uring completion engine for the TCP data path.
//
// Where the epoll Reactor reports *readiness* and leaves the recv/sendmsg
// syscalls to the caller, this engine completes the I/O itself:
//
//  * rx: each data fd carries ONE multishot recv SQE selecting from a
//    provided-buffer ring whose slots are mem::Pool blocks (registered
//    with the kernel via IORING_REGISTER_PBUF_RING - the modern form of
//    buffer registration that composes with multishot recv, which the
//    fixed-buffer table io_uring_register_buffers cannot). A whole rx
//    burst lands directly in pooled blocks with zero recv syscalls; the
//    caller parses each block in place and cuts FrameRef views from it,
//    exactly as the PR-4 zero-copy pipeline does for epoll rx. When the
//    pool starves the ring (ENOBUFS) the multishot stops and the caller
//    parks the connection; a pool reclaim/grow replenishes the slots and
//    mod(fd, read=true) re-arms the recv - the uring spelling of the
//    PR-8 disarm-to-park discipline.
//  * tx: submit_tx() queues a gathered IORING_OP_SENDMSG SQE over live
//    frame bytes; flush_submissions() publishes the whole batch with ONE
//    io_uring_enter, mirroring the PR-4 end-of-batch corking. Short sends
//    surface as tx completions and are resumed by resubmission - there is
//    no EPOLLOUT equivalent to arm.
//  * wake: a nonblocking eventfd watched by a multishot POLL SQE, with the
//    same pending-wake coalescing latch as the Reactor.
//
// The implementation talks to the kernel directly (io_uring_setup/enter/
// register raw syscalls + mmap'd rings) so it works without liburing; when
// CMake finds liburing it is still not required. All engine state is owned
// by the single engine thread; add/mod/del/wake from other threads go
// through a small op queue drained at the top of every wait().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mem/pool.hpp"
#include "netio/io_engine.hpp"

namespace xdaq::netio {

struct UringConfig {
  unsigned sq_entries = 512;  ///< submission queue depth (CQ is 2x)
  /// Provided-buffer ring geometry: rx_slots pooled blocks of
  /// rx_slot_bytes each, re-provided as completions consume them. Must be
  /// a power of two. Sized so a sender flood drains completions for a
  /// full wait cycle before starving the ring: every ENOBUFS tears down
  /// and re-arms that fd's multishot recv, stalling its rx for a cycle.
  unsigned rx_slots = 64;
  std::size_t rx_slot_bytes = 256 * 1024;
  std::uint16_t buf_group = 7;  ///< provided-buffer group id (bgid)
};

struct UringStats {
  std::uint64_t enter_calls = 0;    ///< io_uring_enter syscalls
  std::uint64_t sqe_batches = 0;    ///< enters that submitted >=1 SQE
  std::uint64_t sqes_submitted = 0;
  std::uint64_t multishot_rearms = 0;
  /// rx completions served from the registered pooled buffer ring
  /// (IORING_CQE_F_BUFFER set) - every zero-syscall receive.
  std::uint64_t registered_buffer_hits = 0;
  std::uint64_t buffer_starvations = 0;  ///< multishot stops on ENOBUFS
  std::uint64_t slot_refills = 0;        ///< pool blocks (re)provided
};

class UringEngine final : public IoEngine {
 public:
  /// `pool` backs the provided-buffer ring slots; it must outlive the
  /// engine. Register the engine's replenish path with the pool's
  /// reclaim/grow listeners externally (the transport does) - the engine
  /// itself retries missing slots at the top of every wait().
  explicit UringEngine(mem::Pool& pool, UringConfig cfg = {});
  ~UringEngine() override;

  UringEngine(const UringEngine&) = delete;
  UringEngine& operator=(const UringEngine&) = delete;

  /// Whether this kernel supports everything the engine needs (io_uring
  /// with provided-buffer rings + multishot recv, verified by actually
  /// running a loopback receive once per process). On false, `reason`
  /// (when non-null) says what was missing.
  static bool supported(std::string* reason = nullptr);

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kUring;
  }
  Status init() override;
  [[nodiscard]] bool valid() const noexcept override;
  void close() noexcept override;

  Status add(int fd, bool read, bool write) override;
  Status add_poll(int fd) override;
  Status mod(int fd, bool read, bool write) override;
  Status del(int fd) override;
  void wake() noexcept override;
  Result<std::span<Event>> wait(int timeout_ms) override;

  [[nodiscard]] bool completion_mode() const noexcept override {
    return true;
  }
  Status submit_tx(int fd,
                   std::span<const std::span<const std::byte>> parts,
                   std::size_t skip, std::shared_ptr<void> pin) override;
  void flush_submissions() noexcept override;

  [[nodiscard]] std::uint64_t kernel_entries() const noexcept override;
  [[nodiscard]] std::uint64_t wakes_coalesced() const noexcept override {
    return wakes_coalesced_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] UringStats stats() const noexcept;

  /// Kernel-facing state; opaque here so <linux/io_uring.h> stays out of
  /// the header (and out of every includer).
  struct Ring;

 private:
  struct Op {
    enum class Kind { kAdd, kAddPoll, kMod, kDel };
    Kind kind;
    int fd = -1;
    bool read = false;
    bool write = false;
  };

  void enqueue_op(Op op) noexcept;

  mem::Pool& pool_;
  UringConfig cfg_;
  std::unique_ptr<Ring> ring_;

  std::mutex ops_mutex_;
  std::vector<Op> ops_;

  std::atomic<bool> wake_pending_{false};
  std::atomic<std::uint64_t> wakes_coalesced_{0};

  // Stats live here (not in Ring) so cross-thread reads stay in bounds.
  std::atomic<std::uint64_t> enter_calls_{0};
  std::atomic<std::uint64_t> sqe_batches_{0};
  std::atomic<std::uint64_t> sqes_submitted_{0};
  std::atomic<std::uint64_t> multishot_rearms_{0};
  std::atomic<std::uint64_t> registered_buffer_hits_{0};
  std::atomic<std::uint64_t> buffer_starvations_{0};
  std::atomic<std::uint64_t> slot_refills_{0};
  std::atomic<std::uint64_t> eventfd_syscalls_{0};
};

}  // namespace xdaq::netio
