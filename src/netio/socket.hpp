// socket.hpp - RAII TCP sockets for the TCP peer transport and the
// cluster control plane.
//
// Thin, dependency-free wrappers over POSIX sockets: a listener, a stream
// with exact-read/exact-write helpers, and a poll(2)-based readiness
// multiplexer. Everything reports through Status; nothing throws on I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::netio {

/// Owns a file descriptor; closes on destruction.
class Socket {
 public:
  Socket() noexcept = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Releases ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket sock) : sock_(std::move(sock)) {}

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Result<TcpStream> connect(const std::string& host,
                                   std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  Status set_nodelay(bool on);
  Status set_nonblocking(bool on);

  /// Writes the whole span (loops over partial writes). Blocking socket.
  Status write_all(std::span<const std::byte> data);

  /// Reads exactly data.size() bytes. Returns ConnectionClosed on EOF.
  Status read_exact(std::span<std::byte> data);

  /// Single read; returns bytes read (0 = EOF) or error. Works in both
  /// blocking and non-blocking mode (non-blocking: 0 bytes + Ok means
  /// "try again" is reported as Errc::Timeout).
  Result<std::size_t> read_some(std::span<std::byte> data);

  /// Non-blocking read regardless of the socket's blocking mode
  /// (MSG_DONTWAIT): returns bytes read, ConnectionClosed on EOF, Timeout
  /// when nothing is buffered. Lets a reader drain everything the kernel
  /// has without risking a hang on a blocking socket.
  Result<std::size_t> read_available(std::span<std::byte> data);

  /// Gathered write of two spans (header + body) in one syscall where
  /// possible, looping over partial writes. One frame, one sendmsg - the
  /// framing prefix never costs a second syscall or a copy.
  Status write_all2(std::span<const std::byte> a,
                    std::span<const std::byte> b);

  /// Gathered write of an arbitrary span list (scatter-gather sends):
  /// every part goes to the wire in order, batched IOV_MAX iovecs per
  /// sendmsg, looping over partial writes. Empty parts are permitted.
  /// The spans may point into pooled frame memory - nothing is copied.
  Status write_vec(std::span<const std::span<const std::byte>> parts);

  /// Non-blocking gathered write (MSG_DONTWAIT, single sendmsg): sends as
  /// much of the concatenation of `parts` - starting `skip` bytes in - as
  /// the socket buffer accepts and returns the byte count (possibly short).
  /// Errc::Timeout when the buffer is full right now (the reactor arms
  /// write interest and retries on EPOLLOUT); ConnectionClosed/IoError on
  /// a dead socket. Never blocks, so a slow consumer cannot pin the
  /// sending thread.
  Result<std::size_t> write_vec_some(
      std::span<const std::span<const std::byte>> parts, std::size_t skip);

  /// Severs the connection (SHUT_RDWR) without closing the fd, so threads
  /// polling or writing on it see EOF/EPIPE instead of a dangling number.
  /// Fault-injection and dead-peer teardown use this to "cut the cable".
  void shutdown() noexcept;

  void close() noexcept { sock_.close(); }

 private:
  Socket sock_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.
  static Result<TcpListener> bind(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  /// Blocking accept.
  Result<TcpStream> accept();

  /// Non-blocking accept; nullopt when no connection is pending.
  Result<std::optional<TcpStream>> try_accept();

  Status set_nonblocking(bool on);

  void close() noexcept { sock_.close(); }
  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// poll(2) wrapper: registers fds for readability, returns the ready set.
class Poller {
 public:
  void watch(int fd);
  void unwatch(int fd);
  void clear() noexcept;

  /// Returns fds readable within timeout_ms (-1 = block indefinitely).
  Result<std::vector<int>> wait_readable(int timeout_ms);

  [[nodiscard]] std::size_t watched() const noexcept { return fds_.size(); }

 private:
  std::vector<int> fds_;
};

}  // namespace xdaq::netio
