// types.hpp - core identifiers and constants of the I2O message model.
//
// The paper maps the I2O split-driver architecture onto a cluster: every
// module (application device class, peer transport, the executive itself)
// is addressed by a TiD that is unique within one node ("IOP"). Remote
// devices appear behind locally created proxy TiDs, so a sender never needs
// to know whether its target is local (Proxy pattern, paper section 3.4).
#pragma once

#include <cstdint>

namespace xdaq::i2o {

/// Target identifier: 12 bits of address space per node, as in native I2O.
using Tid = std::uint16_t;

inline constexpr Tid kNullTid = 0;       ///< never a valid destination
inline constexpr Tid kExecutiveTid = 1;  ///< the executive's own TiD
inline constexpr Tid kMaxTid = 0x0FFF;   ///< 12-bit address space

/// Cluster node identifier. Native I2O has no node concept (everything sits
/// on one PCI segment); the paper's Peer Operation extension introduces it.
/// Node ids travel only in transport envelopes, never in frame headers.
using NodeId = std::uint16_t;

inline constexpr NodeId kNullNode = 0xFFFF;

/// I2O message version carried in the low nibble of VersionOffset.
inline constexpr std::uint8_t kI2oVersion = 0x01;

/// Frame sizes are measured in 32-bit words (native I2O convention).
/// A 16-bit word count bounds one frame at 256 KiB, which is exactly the
/// paper's maximum pool block length.
inline constexpr std::size_t kWordBytes = 4;
inline constexpr std::size_t kMaxFrameWords = 0xFFFF;
inline constexpr std::size_t kMaxFrameBytes = kMaxFrameWords * kWordBytes;

/// MsgFlags bits.
enum MsgFlags : std::uint8_t {
  kFlagNone = 0x00,
  kFlagReply = 0x01,    ///< this frame answers a request
  kFlagFail = 0x02,     ///< reply carries a failure report
  kFlagChained = 0x04,  ///< part of a multi-frame chain (arbitrary-length)
  kFlagControl = 0x08,  ///< configuration/control plane traffic
};

/// Function codes. 0x00-0x9F utility class, 0xA0-0xFE executive class,
/// 0xFF marks a private frame whose XFunctionCode is interpreted instead
/// (paper Fig. 5: "Function=FFh if it is private").
enum class Function : std::uint8_t {
  // Utility message class: every device must implement these.
  UtilNop = 0x00,
  UtilAbort = 0x01,
  UtilParamsSet = 0x05,
  UtilParamsGet = 0x06,
  UtilClaim = 0x09,
  UtilEventRegister = 0x13,
  UtilEventAck = 0x14,

  // Executive message class: configuration and control of a node.
  ExecStatusGet = 0xA0,
  ExecConfigure = 0xA1,
  ExecEnable = 0xA2,
  ExecSuspend = 0xA3,
  ExecResume = 0xA4,
  ExecHalt = 0xA5,
  ExecReset = 0xA6,
  ExecSysTabSet = 0xA7,    ///< distribute the cluster address table
  ExecPluginLoad = 0xA8,   ///< "download" a device class at runtime
  ExecTidLookup = 0xA9,    ///< resolve instance name -> TiD
  ExecTimerSet = 0xAA,     ///< arm a core timer (expiry becomes a message)
  ExecTimerCancel = 0xAB,

  Private = 0xFF,
};

/// Organization ids scope private function code spaces (paper Fig. 5).
enum class OrgId : std::uint16_t {
  kNone = 0x0000,
  kXdaq = 0x7D01,   ///< framework-internal private messages
  kBench = 0x7D02,  ///< benchmark device classes
  kRmi = 0x7D03,    ///< remote-method-invocation adapters
  kDaq = 0x7D04,    ///< data-acquisition application classes
  kTest = 0x7D7F,   ///< unit-test device classes
};

/// Seven priority levels, as mandated by the I2O dispatch algorithm the
/// paper follows ("There exist seven priority levels and for each one the
/// messages are scheduled to a FIFO").
inline constexpr int kNumPriorities = 7;
inline constexpr int kDefaultPriority = 3;
inline constexpr int kControlPriority = 1;  // numerically lower = served first
inline constexpr int kHighestPriority = 0;
inline constexpr int kLowestPriority = kNumPriorities - 1;

}  // namespace xdaq::i2o
