// chain.hpp - multi-frame chaining for arbitrary-length information.
//
// One I2O frame is bounded at 256 KiB (16-bit word count). The paper:
// "Making use of I2O's Scatter-Gather Lists (SGL) or chaining blocks helps
// to transmit arbitrary length information." This module defines the
// chain header that rides at the start of every chained frame's payload
// and a reassembler that restores the original byte stream.
//
// Chain header layout (16 bytes, little-endian):
//   u32 chain_id      - initiator-chosen, unique per (initiator, chain)
//   u16 index         - 0-based fragment index
//   u16 total         - number of fragments in the chain
//   u32 total_bytes   - length of the full reassembled message
//   u32 offset        - byte offset of this fragment in the full message
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::i2o {

inline constexpr std::size_t kChainHeaderBytes = 16;

struct ChainHeader {
  std::uint32_t chain_id = 0;
  std::uint16_t index = 0;
  std::uint16_t total = 0;
  std::uint32_t total_bytes = 0;
  std::uint32_t offset = 0;
};

void encode_chain_header(const ChainHeader& ch,
                         std::span<std::byte> out) noexcept;
Result<ChainHeader> decode_chain_header(std::span<const std::byte> in);

/// Splits `total_bytes` across fragments whose payload (after the chain
/// header) is at most `max_fragment_bytes`. Returns per-fragment sizes.
std::vector<std::size_t> chain_fragment_sizes(std::size_t total_bytes,
                                              std::size_t max_fragment_bytes);

/// Reassembles chained payloads. Keyed by (initiator TiD, chain id) so
/// interleaved chains from different senders do not mix.
class ChainReassembler {
 public:
  /// Feed one chained fragment (payload beginning with the chain header).
  /// Returns the completed message when the last fragment arrives,
  /// nullopt while the chain is still partial, or an error on protocol
  /// violations (inconsistent totals, duplicate or out-of-range index).
  Result<std::optional<std::vector<std::byte>>> feed(
      Tid initiator, std::span<const std::byte> payload);

  /// Chains currently being assembled (for tests and leak detection).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

  /// Drops a partially assembled chain (e.g. when its sender disconnects).
  void abort(Tid initiator, std::uint32_t chain_id);

 private:
  struct Key {
    Tid initiator;
    std::uint32_t chain_id;
    bool operator<(const Key& o) const noexcept {
      return initiator != o.initiator ? initiator < o.initiator
                                      : chain_id < o.chain_id;
    }
  };
  struct Partial {
    std::vector<std::byte> data;
    std::vector<bool> seen;
    std::uint16_t total = 0;
    std::uint32_t total_bytes = 0;
    std::size_t received = 0;
  };
  std::map<Key, Partial> pending_;
};

}  // namespace xdaq::i2o
