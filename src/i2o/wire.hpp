// wire.hpp - endian-explicit scalar encoding.
//
// All multi-byte fields on the wire are little-endian, matching the PCI
// heritage of I2O. memcpy-based accessors keep this free of alignment and
// strict-aliasing hazards on any platform.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace xdaq::i2o {

inline void put_u8(std::span<std::byte> buf, std::size_t off,
                   std::uint8_t v) noexcept {
  buf[off] = static_cast<std::byte>(v);
}

inline void put_u16(std::span<std::byte> buf, std::size_t off,
                    std::uint16_t v) noexcept {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  std::memcpy(buf.data() + off, b, 2);
}

inline void put_u32(std::span<std::byte> buf, std::size_t off,
                    std::uint32_t v) noexcept {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  std::memcpy(buf.data() + off, b, 4);
}

inline void put_u64(std::span<std::byte> buf, std::size_t off,
                    std::uint64_t v) noexcept {
  put_u32(buf, off, static_cast<std::uint32_t>(v));
  put_u32(buf, off + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint8_t get_u8(std::span<const std::byte> buf,
                           std::size_t off) noexcept {
  return static_cast<std::uint8_t>(buf[off]);
}

inline std::uint16_t get_u16(std::span<const std::byte> buf,
                             std::size_t off) noexcept {
  std::uint8_t b[2];
  std::memcpy(b, buf.data() + off, 2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

inline std::uint32_t get_u32(std::span<const std::byte> buf,
                             std::size_t off) noexcept {
  std::uint8_t b[4];
  std::memcpy(b, buf.data() + off, 4);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

inline std::uint64_t get_u64(std::span<const std::byte> buf,
                             std::size_t off) noexcept {
  return static_cast<std::uint64_t>(get_u32(buf, off)) |
         (static_cast<std::uint64_t>(get_u32(buf, off + 4)) << 32);
}

}  // namespace xdaq::i2o
