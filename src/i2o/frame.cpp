#include "i2o/frame.hpp"

#include <sstream>

#include "i2o/wire.hpp"

namespace xdaq::i2o {

std::size_t frame_bytes_for_payload(std::size_t payload_bytes,
                                    bool is_private) noexcept {
  const std::size_t header =
      is_private ? kPrivateHeaderBytes : kStdHeaderBytes;
  const std::size_t raw = header + payload_bytes;
  return (raw + kWordBytes - 1) / kWordBytes * kWordBytes;
}

std::uint16_t frame_words_for_payload(std::size_t payload_bytes,
                                      bool is_private) noexcept {
  return static_cast<std::uint16_t>(
      frame_bytes_for_payload(payload_bytes, is_private) / kWordBytes);
}

bool is_known_function(std::uint8_t fn) noexcept {
  switch (static_cast<Function>(fn)) {
    case Function::UtilNop:
    case Function::UtilAbort:
    case Function::UtilParamsSet:
    case Function::UtilParamsGet:
    case Function::UtilClaim:
    case Function::UtilEventRegister:
    case Function::UtilEventAck:
    case Function::ExecStatusGet:
    case Function::ExecConfigure:
    case Function::ExecEnable:
    case Function::ExecSuspend:
    case Function::ExecResume:
    case Function::ExecHalt:
    case Function::ExecReset:
    case Function::ExecSysTabSet:
    case Function::ExecPluginLoad:
    case Function::ExecTidLookup:
    case Function::ExecTimerSet:
    case Function::ExecTimerCancel:
    case Function::Private:
      return true;
  }
  return false;
}

Status encode_header(const FrameHeader& hdr, std::span<std::byte> frame) {
  const std::size_t header_bytes = hdr.header_bytes();
  if (frame.size() < header_bytes) {
    return {Errc::InvalidArgument, "frame buffer smaller than header"};
  }
  if (hdr.target > kMaxTid || hdr.initiator > kMaxTid) {
    return {Errc::InvalidArgument, "TiD exceeds 12-bit address space"};
  }
  if (hdr.sgl_offset_words > 0x0F) {
    return {Errc::InvalidArgument, "SGL offset exceeds 4-bit field"};
  }
  std::uint16_t size_words = hdr.size_words;
  if (size_words == 0) {
    if (frame.size() / kWordBytes > kMaxFrameWords) {
      return {Errc::InvalidArgument, "frame exceeds 256 KiB limit"};
    }
    size_words = static_cast<std::uint16_t>(frame.size() / kWordBytes);
  }
  if (static_cast<std::size_t>(size_words) * kWordBytes < header_bytes) {
    return {Errc::InvalidArgument, "MessageSize smaller than header"};
  }

  const auto version_offset = static_cast<std::uint8_t>(
      (hdr.version & 0x0F) | (hdr.sgl_offset_words << 4));
  put_u8(frame, 0, version_offset);
  put_u8(frame, 1, hdr.flags);
  put_u16(frame, 2, size_words);

  const std::uint32_t addr = static_cast<std::uint32_t>(hdr.target & 0x0FFF) |
                             (static_cast<std::uint32_t>(hdr.initiator & 0x0FFF)
                              << 12) |
                             (static_cast<std::uint32_t>(hdr.function) << 24);
  put_u32(frame, 4, addr);
  put_u32(frame, 8, hdr.initiator_context);
  put_u32(frame, 12, hdr.transaction_context);
  if (hdr.is_private()) {
    put_u16(frame, 16, hdr.xfunction);
    put_u16(frame, 18, hdr.organization);
  }
  return Status::ok();
}

Result<FrameHeader> decode_header(std::span<const std::byte> frame) {
  if (frame.size() < kStdHeaderBytes) {
    return {Errc::MalformedFrame, "frame shorter than standard header"};
  }
  FrameHeader hdr;
  const std::uint8_t version_offset = get_u8(frame, 0);
  hdr.version = version_offset & 0x0F;
  hdr.sgl_offset_words = version_offset >> 4;
  if (hdr.version != kI2oVersion) {
    return {Errc::MalformedFrame, "unsupported I2O version"};
  }
  hdr.flags = get_u8(frame, 1);
  hdr.size_words = get_u16(frame, 2);

  const std::uint32_t addr = get_u32(frame, 4);
  hdr.target = static_cast<Tid>(addr & 0x0FFF);
  hdr.initiator = static_cast<Tid>((addr >> 12) & 0x0FFF);
  hdr.function = static_cast<std::uint8_t>(addr >> 24);
  hdr.initiator_context = get_u32(frame, 8);
  hdr.transaction_context = get_u32(frame, 12);

  if (!is_known_function(hdr.function)) {
    return {Errc::MalformedFrame, "unknown function code"};
  }
  const std::size_t declared = hdr.frame_bytes();
  if (declared < hdr.header_bytes()) {
    return {Errc::MalformedFrame, "MessageSize smaller than header"};
  }
  if (declared > frame.size()) {
    return {Errc::MalformedFrame, "MessageSize exceeds buffer"};
  }
  if (hdr.is_private()) {
    hdr.xfunction = get_u16(frame, 16);
    hdr.organization = get_u16(frame, 18);
  }
  if (hdr.sgl_offset_words != 0 &&
      static_cast<std::size_t>(hdr.sgl_offset_words) * kWordBytes >=
          declared) {
    return {Errc::MalformedFrame, "SGL offset outside frame"};
  }
  return hdr;
}

std::span<const std::byte> payload_of(const FrameHeader& hdr,
                                      std::span<const std::byte> frame)
    noexcept {
  const std::size_t hb = hdr.header_bytes();
  const std::size_t fb = hdr.frame_bytes();
  if (fb <= hb || fb > frame.size()) {
    return {};
  }
  return frame.subspan(hb, fb - hb);
}

std::span<std::byte> payload_of(const FrameHeader& hdr,
                                std::span<std::byte> frame) noexcept {
  const std::size_t hb = hdr.header_bytes();
  const std::size_t fb = hdr.frame_bytes();
  if (fb <= hb || fb > frame.size()) {
    return {};
  }
  return frame.subspan(hb, fb - hb);
}

FrameHeader make_reply_header(const FrameHeader& request,
                              bool failed) noexcept {
  FrameHeader reply = request;
  reply.target = request.initiator;
  reply.initiator = request.target;
  reply.flags = static_cast<std::uint8_t>(request.flags | kFlagReply);
  if (failed) {
    reply.flags |= kFlagFail;
  }
  reply.size_words = 0;  // recomputed on encode
  return reply;
}

std::string describe(const FrameHeader& hdr) {
  std::ostringstream oss;
  oss << "frame{fn=0x" << std::hex << static_cast<int>(hdr.function);
  if (hdr.is_private()) {
    oss << " org=0x" << hdr.organization << " xfn=0x" << hdr.xfunction;
  }
  oss << std::dec << " tgt=" << hdr.target << " ini=" << hdr.initiator
      << " words=" << hdr.size_words << " flags=0x" << std::hex
      << static_cast<int>(hdr.flags) << std::dec << "}";
  return oss.str();
}

}  // namespace xdaq::i2o
