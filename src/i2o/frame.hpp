// frame.hpp - the standard I2O message frame layout (paper Fig. 5).
//
// Wire layout, little-endian, in 32-bit words:
//
//   word 0:  VersionOffset(8) | MsgFlags(8) | MessageSize(16, in words)
//   word 1:  TargetAddress(12) | InitiatorAddress(12) | Function(8)
//   word 2:  InitiatorContext(32)
//   word 3:  TransactionContext(32)
//   -- only when Function == 0xFF (private frame extension):
//   word 4:  XFunctionCode(16) | OrganizationID(16)
//   payload follows, padded to a word boundary by MessageSize
//
// VersionOffset carries the I2O version in the low nibble and the SGL
// offset (in words from frame start, 0 = no SGL) in the high nibble.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::i2o {

inline constexpr std::size_t kStdHeaderBytes = 16;      // 4 words
inline constexpr std::size_t kPrivateHeaderBytes = 20;  // 5 words
inline constexpr std::size_t kMaxPayloadBytes =
    kMaxFrameBytes - kPrivateHeaderBytes;

/// Decoded frame header. Field names follow the specification.
struct FrameHeader {
  std::uint8_t version = kI2oVersion;
  std::uint8_t sgl_offset_words = 0;  ///< 0 = no scatter-gather list
  std::uint8_t flags = kFlagNone;
  std::uint16_t size_words = 0;  ///< total frame length in 32-bit words
  Tid target = kNullTid;
  Tid initiator = kNullTid;
  std::uint8_t function = static_cast<std::uint8_t>(Function::UtilNop);
  std::uint32_t initiator_context = 0;
  std::uint32_t transaction_context = 0;
  // Private extension; meaningful only when function == Function::Private.
  std::uint16_t xfunction = 0;
  std::uint16_t organization = 0;

  [[nodiscard]] bool is_private() const noexcept {
    return function == static_cast<std::uint8_t>(Function::Private);
  }
  [[nodiscard]] bool is_reply() const noexcept {
    return (flags & kFlagReply) != 0;
  }
  [[nodiscard]] bool is_failed() const noexcept {
    return (flags & kFlagFail) != 0;
  }
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return is_private() ? kPrivateHeaderBytes : kStdHeaderBytes;
  }
  [[nodiscard]] std::size_t frame_bytes() const noexcept {
    return static_cast<std::size_t>(size_words) * kWordBytes;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    const std::size_t fb = frame_bytes();
    const std::size_t hb = header_bytes();
    return fb > hb ? fb - hb : 0;
  }
  [[nodiscard]] Function fn() const noexcept {
    return static_cast<Function>(function);
  }
  [[nodiscard]] OrgId org() const noexcept {
    return static_cast<OrgId>(organization);
  }
};

/// Bytes needed for a frame with the given payload, rounded up to words.
[[nodiscard]] std::size_t frame_bytes_for_payload(std::size_t payload_bytes,
                                                  bool is_private) noexcept;

/// Words needed for the same (what goes in MessageSize).
[[nodiscard]] std::uint16_t frame_words_for_payload(std::size_t payload_bytes,
                                                    bool is_private) noexcept;

/// Writes `hdr` into `frame` (which must hold at least header_bytes()).
/// Computes size_words from the buffer length if hdr.size_words == 0.
Status encode_header(const FrameHeader& hdr, std::span<std::byte> frame);

/// Parses and validates a header from raw bytes.
///
/// Rejects: short buffers, bad version, size_words smaller than the header
/// or larger than the buffer, non-private frames with unknown function
/// codes, and SGL offsets pointing outside the frame.
Result<FrameHeader> decode_header(std::span<const std::byte> frame);

/// Payload portion of an already validated frame.
[[nodiscard]] std::span<const std::byte> payload_of(
    const FrameHeader& hdr, std::span<const std::byte> frame) noexcept;
[[nodiscard]] std::span<std::byte> payload_of(
    const FrameHeader& hdr, std::span<std::byte> frame) noexcept;

/// Builds the header of a reply: swaps target/initiator, copies both
/// contexts (the initiator uses them to match replies to requests), sets
/// kFlagReply, and adds kFlagFail when `failed`.
[[nodiscard]] FrameHeader make_reply_header(const FrameHeader& request,
                                            bool failed = false) noexcept;

/// True for function codes this implementation understands.
[[nodiscard]] bool is_known_function(std::uint8_t fn) noexcept;

/// Short human-readable rendering for diagnostics.
[[nodiscard]] std::string describe(const FrameHeader& hdr);

}  // namespace xdaq::i2o
