#include "i2o/chain.hpp"

#include <algorithm>
#include <cstring>

#include "i2o/wire.hpp"

namespace xdaq::i2o {

void encode_chain_header(const ChainHeader& ch,
                         std::span<std::byte> out) noexcept {
  put_u32(out, 0, ch.chain_id);
  put_u16(out, 4, ch.index);
  put_u16(out, 6, ch.total);
  put_u32(out, 8, ch.total_bytes);
  put_u32(out, 12, ch.offset);
}

Result<ChainHeader> decode_chain_header(std::span<const std::byte> in) {
  if (in.size() < kChainHeaderBytes) {
    return {Errc::MalformedFrame, "chained payload shorter than chain header"};
  }
  ChainHeader ch;
  ch.chain_id = get_u32(in, 0);
  ch.index = get_u16(in, 4);
  ch.total = get_u16(in, 6);
  ch.total_bytes = get_u32(in, 8);
  ch.offset = get_u32(in, 12);
  if (ch.total == 0) {
    return {Errc::MalformedFrame, "chain with zero fragments"};
  }
  if (ch.index >= ch.total) {
    return {Errc::MalformedFrame, "chain index out of range"};
  }
  return ch;
}

std::vector<std::size_t> chain_fragment_sizes(std::size_t total_bytes,
                                              std::size_t max_fragment_bytes) {
  std::vector<std::size_t> out;
  if (max_fragment_bytes == 0) {
    return out;
  }
  if (total_bytes == 0) {
    out.push_back(0);  // a chain always has at least one (empty) fragment
    return out;
  }
  std::size_t remaining = total_bytes;
  while (remaining > 0) {
    const std::size_t take = std::min(remaining, max_fragment_bytes);
    out.push_back(take);
    remaining -= take;
  }
  return out;
}

Result<std::optional<std::vector<std::byte>>> ChainReassembler::feed(
    Tid initiator, std::span<const std::byte> payload) {
  auto hdr = decode_chain_header(payload);
  if (!hdr.is_ok()) {
    return hdr.status();
  }
  const ChainHeader& ch = hdr.value();
  const std::span<const std::byte> body = payload.subspan(kChainHeaderBytes);

  const Key key{initiator, ch.chain_id};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    Partial p;
    p.total = ch.total;
    p.total_bytes = ch.total_bytes;
    p.data.resize(ch.total_bytes);
    p.seen.assign(ch.total, false);
    it = pending_.emplace(key, std::move(p)).first;
  }
  Partial& p = it->second;
  if (ch.total != p.total || ch.total_bytes != p.total_bytes) {
    pending_.erase(it);
    return {Errc::MalformedFrame, "inconsistent chain metadata"};
  }
  if (p.seen[ch.index]) {
    pending_.erase(it);
    return {Errc::MalformedFrame, "duplicate chain fragment"};
  }

  // The explicit offset makes reassembly order-independent; only bounds
  // need checking. Frames pad payloads to 32-bit words, so up to three
  // trailing pad bytes beyond the declared total are tolerated; anything
  // more is a protocol violation.
  const std::size_t offset = ch.offset;
  if (offset > p.data.size()) {
    pending_.erase(it);
    return {Errc::MalformedFrame, "chain fragment outside message bounds"};
  }
  std::size_t body_bytes = body.size();
  if (body_bytes > p.data.size() - offset) {
    if (body_bytes - (p.data.size() - offset) > 3) {
      pending_.erase(it);
      return {Errc::MalformedFrame, "chain fragment outside message bounds"};
    }
    body_bytes = p.data.size() - offset;  // strip word padding
  }
  if (body_bytes != 0) {
    std::memcpy(p.data.data() + offset, body.data(), body_bytes);
  }
  p.seen[ch.index] = true;
  ++p.received;

  if (p.received < p.total) {
    return std::optional<std::vector<std::byte>>(std::nullopt);
  }
  std::optional<std::vector<std::byte>> done(std::move(p.data));
  pending_.erase(it);
  return done;
}

void ChainReassembler::abort(Tid initiator, std::uint32_t chain_id) {
  pending_.erase(Key{initiator, chain_id});
}

}  // namespace xdaq::i2o
