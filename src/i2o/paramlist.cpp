#include "i2o/paramlist.hpp"

#include <cstring>
#include <limits>

#include "i2o/wire.hpp"

namespace xdaq::i2o {

std::size_t param_list_bytes(const ParamList& params) noexcept {
  std::size_t total = 2;
  for (const auto& [k, v] : params) {
    total += 4 + k.size() + v.size();
  }
  return total;
}

Status encode_param_list(const ParamList& params, std::span<std::byte> out) {
  if (params.size() > std::numeric_limits<std::uint16_t>::max()) {
    return {Errc::InvalidArgument, "too many parameters"};
  }
  if (out.size() < param_list_bytes(params)) {
    return {Errc::InvalidArgument, "buffer too small for parameter list"};
  }
  std::size_t off = 0;
  put_u16(out, off, static_cast<std::uint16_t>(params.size()));
  off += 2;
  for (const auto& [k, v] : params) {
    if (k.size() > std::numeric_limits<std::uint16_t>::max() ||
        v.size() > std::numeric_limits<std::uint16_t>::max()) {
      return {Errc::InvalidArgument, "parameter key/value too long"};
    }
    put_u16(out, off, static_cast<std::uint16_t>(k.size()));
    off += 2;
    std::memcpy(out.data() + off, k.data(), k.size());
    off += k.size();
    put_u16(out, off, static_cast<std::uint16_t>(v.size()));
    off += 2;
    std::memcpy(out.data() + off, v.data(), v.size());
    off += v.size();
  }
  return Status::ok();
}

Result<ParamList> decode_param_list(std::span<const std::byte> in) {
  if (in.size() < 2) {
    return {Errc::MalformedFrame, "parameter list truncated (count)"};
  }
  const std::uint16_t count = get_u16(in, 0);
  std::size_t off = 2;
  ParamList out;
  out.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    if (off + 2 > in.size()) {
      return {Errc::MalformedFrame, "parameter list truncated (key length)"};
    }
    const std::uint16_t klen = get_u16(in, off);
    off += 2;
    if (off + klen > in.size()) {
      return {Errc::MalformedFrame, "parameter list truncated (key)"};
    }
    std::string key(reinterpret_cast<const char*>(in.data() + off), klen);
    off += klen;
    if (off + 2 > in.size()) {
      return {Errc::MalformedFrame, "parameter list truncated (value length)"};
    }
    const std::uint16_t vlen = get_u16(in, off);
    off += 2;
    if (off + vlen > in.size()) {
      return {Errc::MalformedFrame, "parameter list truncated (value)"};
    }
    std::string value(reinterpret_cast<const char*>(in.data() + off), vlen);
    off += vlen;
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::string param_value(const ParamList& params, const std::string& key) {
  for (const auto& [k, v] : params) {
    if (k == key) {
      return v;
    }
  }
  return {};
}

bool param_has(const ParamList& params, const std::string& key) {
  for (const auto& [k, v] : params) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

}  // namespace xdaq::i2o
