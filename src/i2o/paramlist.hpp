// paramlist.hpp - parameter-list payload encoding.
//
// UtilParamsGet/UtilParamsSet and ExecConfigure carry key/value pairs in
// their payload. Native I2O uses numbered parameter groups; this
// implementation keeps the same request/reply discipline but encodes the
// pairs as length-prefixed strings, which is what the paper's Tcl-driven
// configuration ultimately needs.
//
// Layout: u16 count, then per pair { u16 klen, bytes key, u16 vlen,
// bytes value }.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace xdaq::i2o {

using ParamList = std::vector<std::pair<std::string, std::string>>;

/// Bytes needed to encode `params`.
[[nodiscard]] std::size_t param_list_bytes(const ParamList& params) noexcept;

/// Encodes into `out`; fails when out is too small or count exceeds u16.
Status encode_param_list(const ParamList& params, std::span<std::byte> out);

/// Decodes; validates every length field against the buffer.
Result<ParamList> decode_param_list(std::span<const std::byte> in);

/// Convenience lookup; returns empty string when missing.
[[nodiscard]] std::string param_value(const ParamList& params,
                                      const std::string& key);
[[nodiscard]] bool param_has(const ParamList& params, const std::string& key);

}  // namespace xdaq::i2o
