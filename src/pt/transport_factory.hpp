// transport_factory.hpp - turns a cluster::PeerSpec into a TransportDevice.
//
// The pt layer's half of the PeerSpec redesign: one factory accepts the
// unified topology-level description and builds the matching concrete
// transport. Kinds that attach to an in-process fabric (GM simulator,
// FIFO link, local bus) take that fabric through TransportContext - a
// spec string cannot carry a live object by value.
#pragma once

#include <memory>

#include "cluster/peer_spec.hpp"
#include "core/transport.hpp"
#include "gmsim/gmsim.hpp"
#include "pt/fifo_pt.hpp"
#include "pt/local_bus.hpp"

namespace xdaq::pt {

/// External attachments a PeerSpec's kind may require. Supply the one
/// matching the spec; make_transport fails with FailedPrecondition when
/// it is missing.
struct TransportContext {
  gmsim::Fabric* fabric = nullptr;  ///< PeerSpec::Kind::Gm
  FifoLink* link = nullptr;         ///< Kind::Fifo
  int fifo_endpoint = 0;            ///< Kind::Fifo: 0 = host, 1 = IOP
  LocalBus* bus = nullptr;          ///< Kind::LocalBus
};

/// Builds the transport a PeerSpec describes. The returned device is not
/// yet installed in any executive. It is always a TransportDevice; the
/// handle is Device because TransportDevice keeps its destructor
/// protected (deletion goes through the Device base).
Result<std::unique_ptr<core::Device>> make_transport(
    const cluster::PeerSpec& spec, const TransportContext& ctx = {});

}  // namespace xdaq::pt
