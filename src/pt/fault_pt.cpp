#include "pt/fault_pt.hpp"

#include "core/executive.hpp"

namespace xdaq::pt {

FaultInjectingTransport::FaultInjectingTransport(core::TransportDevice& inner,
                                                FaultPlan plan)
    : TransportDevice("FaultInjectingTransport", Mode::Task),
      inner_(&inner),
      plan_(plan),
      rng_(plan.seed) {}

FaultInjectingTransport::~FaultInjectingTransport() { transport_down(); }

void FaultInjectingTransport::set_plan(FaultPlan plan) {
  const std::scoped_lock lock(mutex_);
  plan_ = plan;
  rng_ = Rng(plan.seed);
}

void FaultInjectingTransport::set_partition(
    std::vector<std::vector<i2o::NodeId>> groups, std::uint64_t from_tick,
    std::uint64_t to_tick) {
  const std::scoped_lock lock(mutex_);
  partition_groups_ = std::move(groups);
  partition_from_ = from_tick;
  partition_to_ = to_tick;
}

void FaultInjectingTransport::clear_partition() {
  const std::scoped_lock lock(mutex_);
  partition_groups_.clear();
  partition_from_ = 0;
  partition_to_ = 0;
}

void FaultInjectingTransport::advance_tick(std::uint64_t n) {
  const std::scoped_lock lock(mutex_);
  tick_ += n;
}

std::uint64_t FaultInjectingTransport::chaos_tick() const {
  const std::scoped_lock lock(mutex_);
  return tick_;
}

bool FaultInjectingTransport::partitioned_now(i2o::NodeId dst) const {
  const std::scoped_lock lock(mutex_);
  if (partition_groups_.empty() || tick_ < partition_from_ ||
      tick_ >= partition_to_ || !attached()) {
    return false;
  }
  const i2o::NodeId self = executive().node_id();
  int self_group = -1;
  int dst_group = -1;
  for (std::size_t g = 0; g < partition_groups_.size(); ++g) {
    for (i2o::NodeId n : partition_groups_[g]) {
      if (n == self) {
        self_group = static_cast<int>(g);
      }
      if (n == dst) {
        dst_group = static_cast<int>(g);
      }
    }
  }
  // A node outside every group is unconstrained by the plan.
  return self_group >= 0 && dst_group >= 0 && self_group != dst_group;
}

std::int64_t FaultInjectingTransport::steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status FaultInjectingTransport::on_transport_start() {
  delay_thread_ = std::thread([this] { delay_loop(); });
  return Status::ok();
}

void FaultInjectingTransport::on_transport_stop() {
  delay_cv_.notify_all();
  if (delay_thread_.joinable()) {
    delay_thread_.join();
  }
  const std::scoped_lock lock(mutex_);
  delayed_.clear();
}

i2o::ParamList FaultInjectingTransport::on_params_get() {
  auto params = Device::on_params_get();
  const InjectStats s = inject_stats();
  params.emplace_back("sends", std::to_string(s.sends));
  params.emplace_back("dropped", std::to_string(s.dropped));
  params.emplace_back("delayed", std::to_string(s.delayed));
  params.emplace_back("duplicated", std::to_string(s.duplicated));
  params.emplace_back("disconnects", std::to_string(s.disconnects));
  params.emplace_back("partitioned", std::to_string(s.partitioned));
  return params;
}

FaultInjectingTransport::InjectStats FaultInjectingTransport::inject_stats()
    const {
  InjectStats s;
  s.sends = sends_.load();
  s.dropped = dropped_.load();
  s.delayed = delayed_count_.load();
  s.duplicated = duplicated_.load();
  s.disconnects = disconnects_.load();
  s.partitioned = partitioned_.load();
  return s;
}

FaultInjectingTransport::Draw FaultInjectingTransport::draw_faults() {
  const std::scoped_lock lock(mutex_);
  Draw d;
  d.drop = rng_.chance(plan_.drop_rate);
  d.delay = rng_.chance(plan_.delay_rate);
  d.duplicate = rng_.chance(plan_.duplicate_rate);
  d.disconnect = rng_.chance(plan_.disconnect_rate);
  return d;
}

Status FaultInjectingTransport::transport_send(
    i2o::NodeId dst, std::span<const std::byte> frame) {
  sends_.fetch_add(1);
  if (partitioned_now(dst)) {
    partitioned_.fetch_add(1);
    return Status::ok();  // cut links look like wire loss, not errors
  }
  const Draw d = draw_faults();
  if (d.disconnect) {
    disconnects_.fetch_add(1);
    inner_->disrupt_peer(dst);
  }
  if (d.drop) {
    // Report success: a lost frame looks exactly like wire loss to the
    // sender, which is the point.
    dropped_.fetch_add(1);
    return Status::ok();
  }
  if (d.delay && transport_running()) {
    delayed_count_.fetch_add(1);
    const std::scoped_lock lock(mutex_);
    delayed_.push_back(Delayed{dst,
                               std::vector<std::byte>(frame.begin(),
                                                      frame.end()),
                               steady_ns() + plan_.delay.count()});
    delay_cv_.notify_all();
    return Status::ok();
  }
  Status st = inner_->transport_send(dst, frame);
  if (st.is_ok() && d.duplicate) {
    duplicated_.fetch_add(1);
    (void)inner_->transport_send(dst, frame);
  }
  return st;
}

Status FaultInjectingTransport::transport_send_frame(i2o::NodeId dst,
                                                     mem::FrameRef frame) {
  sends_.fetch_add(1);
  if (partitioned_now(dst)) {
    partitioned_.fetch_add(1);
    return Status::ok();  // dropping the ref recycles the block
  }
  const Draw d = draw_faults();
  if (d.disconnect) {
    disconnects_.fetch_add(1);
    inner_->disrupt_peer(dst);
  }
  if (d.drop) {
    // Dropping the ref recycles the block - the frame just vanishes.
    dropped_.fetch_add(1);
    return Status::ok();
  }
  if (d.delay && transport_running()) {
    delayed_count_.fetch_add(1);
    const std::scoped_lock lock(mutex_);
    delayed_.push_back(Delayed{dst, {}, steady_ns() + plan_.delay.count(),
                               std::move(frame)});
    delay_cv_.notify_all();
    return Status::ok();
  }
  // The duplicate must snapshot the bytes BEFORE the primary send: an
  // in-process delivery may rewrite the header in place, and the copy
  // has to carry the original wire image.
  std::vector<std::byte> dup;
  if (d.duplicate) {
    const auto bytes = frame.bytes();
    dup.assign(bytes.begin(), bytes.end());
  }
  Status st = inner_->transport_send_frame(dst, std::move(frame));
  if (st.is_ok() && d.duplicate) {
    duplicated_.fetch_add(1);
    (void)inner_->transport_send(dst, dup);
  }
  return st;
}

void FaultInjectingTransport::delay_loop() {
  std::unique_lock lock(mutex_);
  while (transport_running()) {
    if (delayed_.empty()) {
      delay_cv_.wait_for(lock, std::chrono::milliseconds(5));
      continue;
    }
    const std::int64_t now = steady_ns();
    if (delayed_.front().due_ns > now) {
      delay_cv_.wait_for(
          lock, std::chrono::nanoseconds(delayed_.front().due_ns - now));
      continue;
    }
    Delayed d = std::move(delayed_.front());
    delayed_.pop_front();
    lock.unlock();
    if (d.ref.valid()) {
      (void)inner_->transport_send_frame(d.dst, std::move(d.ref));
    } else {
      (void)inner_->transport_send(d.dst, d.frame);
    }
    lock.lock();
  }
}

}  // namespace xdaq::pt
