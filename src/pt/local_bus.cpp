#include "pt/local_bus.hpp"

#include "util/clock.hpp"

namespace xdaq::pt {

std::size_t LocalBus::attached() const {
  const std::scoped_lock lock(mutex_);
  return nodes_.size();
}

Status LocalBus::attach(i2o::NodeId node, LocalBusTransport* pt) {
  const std::scoped_lock lock(mutex_);
  if (nodes_.contains(node)) {
    return {Errc::AlreadyExists, "node already on the local bus"};
  }
  nodes_[node] = pt;
  return Status::ok();
}

void LocalBus::detach(i2o::NodeId node) {
  const std::scoped_lock lock(mutex_);
  nodes_.erase(node);
}

LocalBusTransport* LocalBus::find(i2o::NodeId node) const {
  const std::scoped_lock lock(mutex_);
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second;
}

LocalBusTransport::~LocalBusTransport() {
  if (attached_to_bus_) {
    bus_->detach(executive().node_id());
  }
}

void LocalBusTransport::plugin() {
  attached_to_bus_ = bus_->attach(executive().node_id(), this).is_ok();
}

Status LocalBusTransport::transport_send(i2o::NodeId dst,
                                         std::span<const std::byte> frame) {
  LocalBusTransport* peer = bus_->find(dst);
  if (peer == nullptr) {
    no_peer_.fetch_add(1, std::memory_order_relaxed);
    return {Errc::Unroutable, "destination node not on the local bus"};
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // The span lands in the peer's pool via the copying overload.
  rx_copies_.fetch_add(1, std::memory_order_relaxed);
  return peer->executive().deliver_from_wire(executive().node_id(),
                                             peer->tid(), frame, rdtsc());
}

Status LocalBusTransport::transport_send_frame(i2o::NodeId dst,
                                               mem::FrameRef frame) {
  LocalBusTransport* peer = bus_->find(dst);
  if (peer == nullptr) {
    no_peer_.fetch_add(1, std::memory_order_relaxed);
    return {Errc::Unroutable, "destination node not on the local bus"};
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // Zero wire bytes touched: the peer executive takes the very same
  // pooled reference (its dispatch recycles through the owning pool).
  // deliver_from_wire routes by target TiD, so on a sharded peer the
  // frame lands directly on its owning dispatch shard's inbound queue.
  return peer->executive().deliver_from_wire(
      executive().node_id(), peer->tid(), std::move(frame), rdtsc());
}

}  // namespace xdaq::pt
