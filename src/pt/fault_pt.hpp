// fault_pt.hpp - fault-injecting decorator over another peer transport.
//
// The fault-tolerance layer needs an adversary: a transport that loses,
// delays, duplicates and severs on purpose, reproducibly. This decorator
// wraps an already-installed inner transport *by reference* and perturbs
// its send path from a seeded RNG:
//
//   * drop:       the frame silently never reaches the wire
//   * delay:      the frame is handed to a worker thread and sent late
//   * duplicate:  the frame is sent twice (receivers must tolerate it)
//   * disconnect: disrupt_peer() is invoked on the inner transport first,
//                 as if the cable was pulled mid-send
//
// Injection is send-side only: inbound frames and replies arrive through
// the inner transport's own reader machinery and bypass the decorator.
// That asymmetry is deliberate - it keeps the decorator stateless about
// connections while still exercising every recovery path (a dropped
// request and a dropped reply look identical to the requester).
//
// Install the decorator as its own device and route traffic at it; the
// inner transport stays installed (its threads and liveness tracking keep
// running) but no longer needs a route.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/transport.hpp"
#include "util/random.hpp"

namespace xdaq::pt {

struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;        ///< P(frame silently lost)
  double delay_rate = 0.0;       ///< P(frame deferred by delay_ns)
  double duplicate_rate = 0.0;   ///< P(frame sent twice)
  double disconnect_rate = 0.0;  ///< P(disrupt_peer before the send)
  std::chrono::nanoseconds delay = std::chrono::milliseconds(5);
};

class FaultInjectingTransport final : public core::TransportDevice {
 public:
  /// `inner` must outlive the decorator and should already be installed
  /// (its lifecycle is not managed here).
  FaultInjectingTransport(core::TransportDevice& inner, FaultPlan plan = {});
  ~FaultInjectingTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  /// Zero-copy passthrough: the pooled reference survives drops, delays
  /// and duplication without being flattened to a byte vector (only the
  /// duplicate itself is a copy - it needs the pristine header bytes).
  Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) override;
  [[nodiscard]] core::PeerState peer_state(i2o::NodeId node) const override {
    return inner_->peer_state(node);
  }
  void disrupt_peer(i2o::NodeId node) override { inner_->disrupt_peer(node); }

  struct InjectStats {
    std::uint64_t sends = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t partitioned = 0;  ///< frames cut by the partition plan
  };
  [[nodiscard]] InjectStats inject_stats() const;

  /// Swaps the active fault plan mid-run (reseeding the RNG from
  /// plan.seed). Partition tests use this to sever a link and later heal
  /// it without reinstalling the decorator.
  void set_plan(FaultPlan plan);

  // --- symmetric partition plans -------------------------------------------
  // Chaos scripts used to hand-roll per-direction drop plans; a symmetric
  // split is one call instead. While the decorator's chaos tick t is in
  // [from_tick, to_tick), a frame whose {self, dst} pair lands in two
  // DIFFERENT groups is dropped (count: `partitioned`). Install the same
  // plan on every node's decorator and the cut is symmetric by
  // construction. Nodes absent from every group are unaffected. The
  // probabilistic set_plan faults still apply to frames the partition
  // lets through.

  /// Replaces the partition plan. Empty `groups` clears it.
  void set_partition(std::vector<std::vector<i2o::NodeId>> groups,
                     std::uint64_t from_tick, std::uint64_t to_tick);
  void clear_partition();

  /// The decorator's logical chaos clock. Deterministic harnesses advance
  /// it in lockstep with whatever they call a tick; wall time is never
  /// consulted.
  void advance_tick(std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t chaos_tick() const;

  /// Reports its own injection counters, then the wrapped transport's
  /// under the same prefix (the decorator is what the executive installed,
  /// so it speaks for both layers).
  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override {
    const InjectStats s = inject_stats();
    out.push_back({prefix + ".inject_sends",
                   static_cast<std::int64_t>(s.sends)});
    out.push_back({prefix + ".inject_dropped",
                   static_cast<std::int64_t>(s.dropped)});
    out.push_back({prefix + ".inject_delayed",
                   static_cast<std::int64_t>(s.delayed)});
    out.push_back({prefix + ".inject_duplicated",
                   static_cast<std::int64_t>(s.duplicated)});
    out.push_back({prefix + ".inject_disconnects",
                   static_cast<std::int64_t>(s.disconnects)});
    out.push_back({prefix + ".inject_partitioned",
                   static_cast<std::int64_t>(s.partitioned)});
    inner_->append_metrics(prefix, out);
  }

 protected:
  /// The executive's end-of-batch flush reaches the decorator (it is the
  /// installed device); the wrapped transport holds the corked sends. On
  /// a sharded executive any dispatch shard's end-of-batch may call this
  /// (the executive serializes the calls) - pure forwarding, so the
  /// inner transport's own cork discipline carries the thread safety.
  void on_transport_flush() override { inner_->transport_flush(); }

  Status on_enable() override { return transport_up(); }
  Status on_halt() override {
    transport_down();
    return Status::ok();
  }
  i2o::ParamList on_params_get() override;

  Status on_transport_start() override;
  void on_transport_stop() override;

 private:
  struct Delayed {
    i2o::NodeId dst;
    std::vector<std::byte> frame;
    std::int64_t due_ns;
    /// Set on the zero-copy path; the ref parks here until due.
    mem::FrameRef ref;
  };

  /// One seeded draw of the four injection decisions.
  struct Draw {
    bool drop = false;
    bool delay = false;
    bool duplicate = false;
    bool disconnect = false;
  };
  Draw draw_faults();

  /// True when the partition plan cuts self->dst at the current tick.
  [[nodiscard]] bool partitioned_now(i2o::NodeId dst) const;

  void delay_loop();
  [[nodiscard]] static std::int64_t steady_ns() noexcept;

  core::TransportDevice* inner_;
  FaultPlan plan_;

  mutable std::mutex mutex_;  ///< guards rng_, delayed_, and the partition
  Rng rng_;
  std::vector<std::vector<i2o::NodeId>> partition_groups_;
  std::uint64_t partition_from_ = 0;
  std::uint64_t partition_to_ = 0;
  std::uint64_t tick_ = 0;
  std::deque<Delayed> delayed_;
  std::condition_variable delay_cv_;
  std::thread delay_thread_;

  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_count_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> partitioned_{0};
};

}  // namespace xdaq::pt
