// gm_pt.hpp - peer transport over the simulated Myrinet/GM fabric.
//
// This is the reproduction of the paper's benchmark transport: "We
// implemented a peer transport based on the Myrinet GM 1.1.3 library for
// our XDAQ I2O executive ... The Myrinet/GM PT ran as a thread." Both
// operation modes from section 4 are supported:
//  * Task    - the PT owns a receive thread, posting into the executive.
//  * Polling - the executive's loop scans poll_transport().
//
// Receive path (the "PT GM processing" stage of Table 1): the receive
// buffers handed to the port at plugin() time are pooled blocks from the
// executive's frame pool, so a GM event lands directly in pool memory -
// the block is resized to the wire length and posted without a software
// copy (the NIC's DMA into the provided buffer is the only transfer).
// Should pool allocation fail, a plain vector buffer is provided instead
// and deliveries out of it fall back to the copying span path
// (counted in rx_copies).
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "gmsim/gmsim.hpp"

namespace xdaq::pt {

struct GmTransportConfig {
  core::TransportDevice::Mode mode = core::TransportDevice::Mode::Polling;
  std::size_t receive_buffers = 32;
  std::size_t buffer_bytes = 300 * 1024;  ///< >= one max frame
  // The send-retry budget moved to core::TransportConfig::send_retry_spins
  // (one tunables struct for every transport).
};

class GmPeerTransport final : public core::TransportDevice {
 public:
  /// The port is opened at plugin() time under the executive's node id.
  GmPeerTransport(gmsim::Fabric& fabric, GmTransportConfig config = {},
                  core::TransportConfig transport_config = {});
  ~GmPeerTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;

  [[nodiscard]] gmsim::PortStats port_stats() const;

  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override;

 protected:
  void plugin() override;
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  i2o::ParamList on_params_get() override;

  Status on_transport_start() override;
  void on_transport_stop() override;
  void on_transport_poll() override;

 private:
  void receive_loop();
  void deliver(const gmsim::RecvEvent& ev, std::uint64_t t_wire);
  /// Allocates one pooled receive block and hands it to the port; falls
  /// back to a vector buffer when the pool is exhausted. Consumer-thread
  /// only (plugin() runs before the consumer exists).
  void provide_rx_buffer();

  gmsim::Fabric* fabric_;
  GmTransportConfig config_;
  std::unique_ptr<gmsim::Port> port_;
  /// Legacy/fallback receive buffers (pool exhausted at provision time).
  std::vector<std::vector<std::byte>> rx_storage_;
  /// Pooled receive blocks currently lent to the port, keyed by their
  /// data pointer so a RecvEvent's buffer span maps back to its block.
  std::unordered_map<const std::byte*, mem::FrameRef> rx_pooled_;

  std::atomic<std::uint64_t> rx_copies_{0};
  std::atomic<std::uint64_t> rx_pool_misses_{0};

  std::thread task_thread_;
};

}  // namespace xdaq::pt
