// tcp_pt.hpp - peer transport over TCP sockets, with liveness tracking.
//
// The paper runs a TCP PT alongside the Myrinet/GM PT ("Another PT thread
// was handling TCP communication for configuration and control purposes")
// and warns that polling a TCP socket in polling mode would negate the
// benefits of a lightweight interface - hence this transport is task mode:
// one reader thread multiplexes the listening socket and all peer
// connections with poll(2), and one maintenance thread owns heartbeats,
// dead-peer detection and backoff reconnects.
//
// Wire protocol per connection:
//   on connect: hello { u32 magic, u16 node_id }
//   then frames: { u32 length, frame bytes }
//   heartbeat:   { u32 0xFFFFFFFF } (no body; the length sentinel cannot
//                collide with a real frame, whose length is bounded by
//                max_frame_bytes)
//
// Liveness (per configured peer, reported through notify_peer_state):
//   * a connection with no inbound traffic for one heartbeat_interval
//     marks the peer Suspect; missed_heartbeat_limit quiet intervals drop
//     the connection and declare the peer Down
//   * a dropped connection marks the peer Suspect and schedules a redial
//     after backoff_delay(); a failed redial declares the peer Down, but
//     redials continue (capped backoff) until the peer answers again
//   * while Suspect, control-plane frames are queued (bounded by
//     pending_depth) and retransmitted in order after reconnect; data
//     frames fail immediately with Errc::Unavailable
//   * once Down, every send fails with Errc::Unavailable and queued
//     frames are dropped (counted in dropped_pending)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "netio/socket.hpp"
#include "util/random.hpp"

namespace xdaq::pt {

struct TcpPeer {
  std::string host;
  std::uint16_t port;
};

struct TcpTransportConfig {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::map<i2o::NodeId, TcpPeer> peers;
  std::size_t max_frame_bytes = 300 * 1024;
  /// Sends whose wire size (4-byte length prefix included) stays at or
  /// under this may piggyback on an already-active writer and return
  /// immediately; the writer gathers them into its sendmsg. Larger sends
  /// wait for the writer slot so TCP backpressure reaches the producer.
  /// 0 disables piggybacking entirely.
  std::size_t coalesce_bytes = 4096;
  /// Seed for the reconnect-jitter RNG (deterministic tests).
  std::uint64_t jitter_seed = 0x7C75D902C2A15F27ULL;
  /// Zero-copy pipeline: receive into pooled blocks and deliver in-place
  /// views; transmit straight from live FrameRefs via gathered iovecs.
  /// false selects the legacy copy path (one rx memcpy into a pool frame
  /// per inbound frame, one tx copy into the coalesce buffer) - kept for
  /// the zerocopy_ablation benchmark and as a fallback.
  bool zero_copy = true;
};

class TcpPeerTransport final : public core::TransportDevice {
 public:
  explicit TcpPeerTransport(TcpTransportConfig config = {},
                            core::TransportConfig transport_config = {});
  ~TcpPeerTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  /// Zero-copy send: the pooled frame is queued as a live reference and
  /// the writer gathers prefix+body straight from pool memory (the ref is
  /// held until the kernel accepted the bytes). Falls back to the copying
  /// span path when config.zero_copy is off.
  Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) override;
  [[nodiscard]] core::PeerState peer_state(i2o::NodeId node) const override;
  void disrupt_peer(i2o::NodeId node) override;

  /// Port actually bound (after enable); 0 before that.
  [[nodiscard]] std::uint16_t listen_port() const;

  /// Adds/replaces a peer endpoint (before or after enable).
  void add_peer(i2o::NodeId node, const std::string& host,
                std::uint16_t port);

  [[nodiscard]] std::size_t connection_count() const;

  /// Fault-tolerance counters (cumulative since transport_up).
  struct FaultStats {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t reconnects = 0;          ///< successful redials
    std::uint64_t failed_dials = 0;        ///< redial attempts that failed
    std::uint64_t retransmitted = 0;       ///< queued frames resent
    std::uint64_t dropped_pending = 0;     ///< queued frames dropped (Down)
  };
  [[nodiscard]] FaultStats fault_stats() const;

  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override;

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  i2o::ParamList on_params_get() override;

  Status on_transport_start() override;
  void on_transport_stop() override;
  void on_transport_flush() override;

 private:
  /// One queued send: the 4-byte length prefix plus the body, either as a
  /// live pooled reference (zero-copy) or as owned bytes (span fallback,
  /// heartbeats, retransmits). The writer gathers prefix+body of a whole
  /// batch into one sendmsg; the FrameRef is dropped only after the
  /// kernel accepted the bytes.
  struct PendingSend {
    std::array<std::byte, 4> prefix{};
    mem::FrameRef frame;           ///< zero-copy body (may be invalid)
    std::vector<std::byte> owned;  ///< copied/owned body (used if no frame)

    [[nodiscard]] std::span<const std::byte> body() const noexcept {
      return frame.valid() ? frame.bytes()
                           : std::span<const std::byte>(owned);
    }
  };

  /// Lives only in shared_ptrs (never moved), so the synchronization
  /// members can be held by value.
  struct Connection {
    netio::TcpStream stream;
    i2o::NodeId node = i2o::kNullNode;  ///< kNullNode until hello received

    // -- write combiner (guarded by write_mutex) --------------------------
    // Every send appends one PendingSend; whichever sender finds no writer
    // active becomes the writer and gathers the whole queue into iovecs
    // for one write_vec, so concurrent sends share a syscall and bodies go
    // to the wire straight from pooled memory. Senders above
    // coalesce_bytes (and everyone past the high-water mark) wait for the
    // writer slot instead of piggybacking.
    std::mutex write_mutex;
    std::condition_variable write_cv;  ///< signalled when writer_active drops
    bool writer_active = false;
    std::deque<PendingSend> pending;    ///< queued sends (FIFO)
    std::deque<PendingSend> flush_buf;  ///< writer-owned swap target
    std::vector<std::span<const std::byte>> iov_parts;  ///< writer-owned
    std::size_t pending_bytes = 0;      ///< wire bytes queued in `pending`

    // -- read reassembly (reader thread only) -----------------------------
    std::vector<std::byte> rx;    ///< legacy path: unparsed bytes
    std::size_t rx_off = 0;       ///< legacy path: consumed offset into rx
    mem::FrameRef rx_block;       ///< zero-copy path: pooled receive block
    std::size_t rx_filled = 0;    ///< bytes read into rx_block
    std::size_t rx_consumed = 0;  ///< bytes parsed out of rx_block
    std::size_t rx_skip = 0;      ///< oversized-frame bytes left to discard

    // -- liveness stamps (steady-clock ns) --------------------------------
    std::atomic<std::int64_t> last_rx_ns{0};
    std::atomic<std::int64_t> last_tx_ns{0};
  };

  /// Liveness bookkeeping for a configured peer (guarded by conns_mutex_).
  struct PeerInfo {
    core::PeerState state = core::PeerState::Unknown;
    std::uint32_t dial_attempts = 0;   ///< consecutive failed redials
    std::int64_t next_dial_ns = 0;     ///< steady-clock deadline
    bool dialing = false;              ///< a redial is in flight (unlocked)
    std::deque<std::vector<std::byte>> queued;  ///< control frames to resend
  };

  void reader_loop();
  void maintenance_loop();
  /// One maintenance pass: heartbeats, miss detection, due redials.
  void maintenance_tick(std::int64_t now_ns);
  /// Returns the connection for `node`, dialing it if necessary. The dial
  /// and handshake run outside conns_mutex_ so a slow connect cannot stall
  /// sends to other nodes (or the reader's registry snapshot).
  Result<std::shared_ptr<Connection>> connection_to(i2o::NodeId node);
  /// Dials `peer`, completing the hello. Does not touch the registry.
  Result<std::shared_ptr<Connection>> dial(i2o::NodeId node,
                                           const TcpPeer& peer);
  Status send_hello(Connection& conn);
  Status send_heartbeat(Connection& conn);
  /// Queues one encoded entry (`wire_bytes` = prefix + body size) through
  /// the combiner: piggybacks on an active writer when small, otherwise
  /// claims the writer slot and flushes.
  Status write_entry(Connection& conn, PendingSend entry,
                     std::size_t wire_bytes);
  /// Writes one length-prefixed frame through the combiner (owned copy).
  Status write_frame(Connection& conn, std::vector<std::byte> frame);
  /// Shared liveness gating + enqueue for both send flavours; `body` must
  /// stay valid for the call (it aliases `ref` when one is passed).
  Status send_common(i2o::NodeId dst, std::span<const std::byte> body,
                     mem::FrameRef ref);
  /// Drains every complete frame available on a readable connection;
  /// false = drop it.
  bool service_connection(Connection& conn);
  /// Legacy copy path (config.zero_copy == false).
  bool service_connection_legacy(Connection& conn);
  /// Parses [rx_consumed, rx_filled) of conn.rx_block in place, handing
  /// complete frames to the executive as views. false = protocol error.
  bool parse_rx_block(Connection& conn);
  /// Makes the rx block writable again: reuse in place when quiescent,
  /// otherwise hand off to a fresh block (splicing a partial frame tail).
  bool roll_rx_block(Connection& conn, std::size_t need_hint);
  /// Writes out conn.pending until empty; call with lk holding
  /// conn.write_mutex and conn.writer_active set by the caller.
  Status flush_pending(Connection& conn, std::unique_lock<std::mutex>& lk);
  /// Removes `conn` from the registry and downgrades its peer to Suspect
  /// (scheduling a redial). Safe to call from any thread.
  void drop_connection(const std::shared_ptr<Connection>& conn);
  /// Transitions `node` (must hold conns_mutex_); the notification is
  /// returned for the caller to fire after unlocking.
  struct Transition {
    i2o::NodeId node = i2o::kNullNode;
    core::PeerState from = core::PeerState::Unknown;
    core::PeerState to = core::PeerState::Unknown;
    [[nodiscard]] bool fired() const noexcept {
      return node != i2o::kNullNode && from != to;
    }
  };
  [[nodiscard]] Transition set_state_locked(i2o::NodeId node,
                                            core::PeerState to);
  void fire(const Transition& t);
  /// Retransmits a peer's queued control frames over a fresh connection.
  void retransmit_queued(i2o::NodeId node,
                         const std::shared_ptr<Connection>& conn);
  [[nodiscard]] static std::int64_t steady_ns() noexcept;
  /// Control-plane frame: anything except an unmarked private frame.
  [[nodiscard]] static bool is_control_frame(
      std::span<const std::byte> frame) noexcept;

  TcpTransportConfig config_;
  Logger log_;

  mutable std::mutex conns_mutex_;
  netio::TcpListener listener_;
  /// shared_ptr so a send in flight keeps its connection alive while the
  /// reader thread drops it from the registry.
  std::vector<std::shared_ptr<Connection>> conns_;
  std::map<i2o::NodeId, PeerInfo> peers_;
  Rng jitter_rng_{0};  ///< reseeded at transport_up (conns_mutex_)

  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> failed_dials_{0};
  std::atomic<std::uint64_t> retransmitted_{0};
  std::atomic<std::uint64_t> dropped_pending_{0};

  // Copies-per-frame accounting (the zero-copy pipeline's scoreboard).
  std::atomic<std::uint64_t> rx_copies_{0};   ///< inbound frames memcpy'd
  std::atomic<std::uint64_t> tx_copies_{0};   ///< outbound bodies memcpy'd
  std::atomic<std::uint64_t> rx_splices_{0};  ///< block-straddle fallbacks
  /// Set when a dispatch-batch send was corked in some connection's
  /// pending queue; cleared by the end-of-batch flush (or the
  /// maintenance backstop) that drains it.
  std::atomic<bool> corked_{false};

  std::thread reader_thread_;
  std::thread maintenance_thread_;
  std::condition_variable_any maintenance_cv_;
};

}  // namespace xdaq::pt
