// tcp_pt.hpp - peer transport over TCP sockets.
//
// The paper runs a TCP PT alongside the Myrinet/GM PT ("Another PT thread
// was handling TCP communication for configuration and control purposes")
// and warns that polling a TCP socket in polling mode would negate the
// benefits of a lightweight interface - hence this transport is task mode:
// one reader thread multiplexes the listening socket and all peer
// connections with poll(2).
//
// Wire protocol per connection:
//   on connect: hello { u32 magic, u16 node_id }
//   then frames: { u32 length, frame bytes }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "netio/socket.hpp"

namespace xdaq::pt {

struct TcpPeer {
  std::string host;
  std::uint16_t port;
};

struct TcpTransportConfig {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::map<i2o::NodeId, TcpPeer> peers;
  std::size_t max_frame_bytes = 300 * 1024;
};

class TcpPeerTransport final : public core::TransportDevice {
 public:
  explicit TcpPeerTransport(TcpTransportConfig config = {});
  ~TcpPeerTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  Status start_transport() override;
  void stop_transport() override;

  /// Port actually bound (after enable); 0 before that.
  [[nodiscard]] std::uint16_t listen_port() const;

  /// Adds/replaces a peer endpoint (before or after enable).
  void add_peer(i2o::NodeId node, const std::string& host,
                std::uint16_t port);

  [[nodiscard]] std::size_t connection_count() const;

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  i2o::ParamList on_params_get() override;

 private:
  struct Connection {
    netio::TcpStream stream;
    i2o::NodeId node = i2o::kNullNode;  ///< kNullNode until hello received
    std::unique_ptr<std::mutex> write_mutex =
        std::make_unique<std::mutex>();
  };

  void reader_loop();
  /// Returns the connection for `node`, dialing it if necessary.
  Result<Connection*> connection_to(i2o::NodeId node);
  Status send_hello(Connection& conn);
  /// Reads one message from a readable connection; false = drop it.
  bool service_connection(Connection& conn);

  TcpTransportConfig config_;
  Logger log_;

  mutable std::mutex conns_mutex_;
  netio::TcpListener listener_;
  /// shared_ptr so a send in flight keeps its connection alive while the
  /// reader thread drops it from the registry.
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> running_{false};
  std::thread reader_thread_;
};

}  // namespace xdaq::pt
