// tcp_pt.hpp - peer transport over TCP sockets.
//
// The paper runs a TCP PT alongside the Myrinet/GM PT ("Another PT thread
// was handling TCP communication for configuration and control purposes")
// and warns that polling a TCP socket in polling mode would negate the
// benefits of a lightweight interface - hence this transport is task mode:
// one reader thread multiplexes the listening socket and all peer
// connections with poll(2).
//
// Wire protocol per connection:
//   on connect: hello { u32 magic, u16 node_id }
//   then frames: { u32 length, frame bytes }
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "netio/socket.hpp"

namespace xdaq::pt {

struct TcpPeer {
  std::string host;
  std::uint16_t port;
};

struct TcpTransportConfig {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::map<i2o::NodeId, TcpPeer> peers;
  std::size_t max_frame_bytes = 300 * 1024;
  /// Frames up to this size (including the 4-byte length prefix) are
  /// coalesced into a per-connection pending buffer so back-to-back small
  /// sends share one syscall. Larger frames use a gathered write (prefix +
  /// body, one sendmsg) without copying. 0 disables coalescing.
  std::size_t coalesce_bytes = 4096;
};

class TcpPeerTransport final : public core::TransportDevice {
 public:
  explicit TcpPeerTransport(TcpTransportConfig config = {});
  ~TcpPeerTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  Status start_transport() override;
  void stop_transport() override;

  /// Port actually bound (after enable); 0 before that.
  [[nodiscard]] std::uint16_t listen_port() const;

  /// Adds/replaces a peer endpoint (before or after enable).
  void add_peer(i2o::NodeId node, const std::string& host,
                std::uint16_t port);

  [[nodiscard]] std::size_t connection_count() const;

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  i2o::ParamList on_params_get() override;

 private:
  /// Lives only in shared_ptrs (never moved), so the synchronization
  /// members can be held by value.
  struct Connection {
    netio::TcpStream stream;
    i2o::NodeId node = i2o::kNullNode;  ///< kNullNode until hello received

    // -- write combiner (guarded by write_mutex) --------------------------
    // Small frames append {len, body} to `pending`; whichever sender finds
    // no writer active becomes the writer and flushes the whole buffer in
    // one write_all, so concurrent small sends share a syscall. Large
    // frames wait for the writer slot, drain `pending` (ordering), then do
    // a gathered prefix+body write straight from the caller's buffer.
    std::mutex write_mutex;
    std::condition_variable write_cv;  ///< signalled when writer_active drops
    bool writer_active = false;
    std::vector<std::byte> pending;    ///< queued encoded sends
    std::vector<std::byte> flush_buf;  ///< writer-owned swap target

    // -- read reassembly (reader thread only) -----------------------------
    std::vector<std::byte> rx;  ///< bytes received but not yet parsed
  };

  void reader_loop();
  /// Returns the connection for `node`, dialing it if necessary. The dial
  /// and handshake run outside conns_mutex_ so a slow connect cannot stall
  /// sends to other nodes (or the reader's registry snapshot).
  Result<std::shared_ptr<Connection>> connection_to(i2o::NodeId node);
  Status send_hello(Connection& conn);
  /// Drains every complete frame available on a readable connection;
  /// false = drop it.
  bool service_connection(Connection& conn);
  /// Writes out conn.pending until empty; call with lk holding
  /// conn.write_mutex and conn.writer_active set by the caller.
  Status flush_pending(Connection& conn, std::unique_lock<std::mutex>& lk);

  TcpTransportConfig config_;
  Logger log_;

  mutable std::mutex conns_mutex_;
  netio::TcpListener listener_;
  /// shared_ptr so a send in flight keeps its connection alive while the
  /// reader thread drops it from the registry.
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> running_{false};
  std::thread reader_thread_;
};

}  // namespace xdaq::pt
