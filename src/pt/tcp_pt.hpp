// tcp_pt.hpp - peer transport over TCP sockets, with liveness tracking,
// an epoll reactor backend, credit-based flow control and overload
// shedding.
//
// The paper runs a TCP PT alongside the Myrinet/GM PT ("Another PT thread
// was handling TCP communication for configuration and control purposes")
// and warns that polling a TCP socket in polling mode would negate the
// benefits of a lightweight interface - hence this transport is task mode.
// The original backend rebuilt a poll(2) watch set over every connection
// on every 20 ms wait; that caps a node at a few thousand sockets. The
// C1M front end replaces it with netio::Reactor shards: the interest set
// lives in the kernel and is updated incrementally on connect, drop and
// interest change, accepted connections are load-balanced round-robin
// across one reactor thread per executive dispatch shard, and a
// connection whose rx pool allocation failed *disarms* its read interest
// (parking) instead of hot-spinning the level-triggered wakeup - it is
// re-armed by a pool reclaim notification.
//
// Wire protocol per connection:
//   on connect: hello { u32 magic, u16 node_id }
//   then frames: { u32 length, frame bytes }
//   heartbeat:   { u32 0xFFFFFFFF } (no body; the length sentinel cannot
//                collide with a real frame, whose length is bounded by
//                max_frame_bytes)
//   credit grant: { u32 0xFFFFFFFE, u32 count } - the receiver returns
//                `count` send credits to the peer (see below); like the
//                heartbeat, the sentinel cannot collide with a length
//
// Flow control (TransportConfig::credit_window > 0): the paper's GM send
// tokens generalized to a transport-level credit window carried on the
// wire. Each side starts with `credit_window` credits; transmitting one
// DATA frame consumes one (control frames, heartbeats and grants are
// exempt), and the receiver grants credits back as it consumes frames
// (at half-window granularity, piggybacked at rx-burst end). A slow or
// parked receiver stops granting, so the sender's writer stalls at zero
// credits - with its queue intact and its sending thread unblocked -
// instead of flooding a consumer that cannot drain.
//
// Overload shedding: outbound, a send that would grow a connection's
// queued wire bytes past shed_threshold(tx_buffer_bytes, priority) is
// refused with Errc::ResourceExhausted (connection stays up). Inbound,
// when the target shard's dispatch backlog reaches
// shed_threshold(admission_limit, priority) the frame is dropped at the
// transport edge. Both thresholds scale with the I2O priority, so control
// traffic survives overloads that shed data.
//
// Liveness (per configured peer, reported through notify_peer_state):
//   * a connection with no inbound traffic for one heartbeat_interval
//     marks the peer Suspect; missed_heartbeat_limit quiet intervals drop
//     the connection and declare the peer Down
//   * a dropped connection marks the peer Suspect and schedules a redial
//     after backoff_delay(); a failed redial declares the peer Down, but
//     redials continue (capped backoff) until the peer answers again
//   * while Suspect, control-plane frames are queued (bounded by
//     pending_depth) and retransmitted in order after reconnect; data
//     frames fail immediately with Errc::Unavailable
//   * once Down, every send fails with Errc::Unavailable and queued
//     frames are dropped (counted in dropped_pending)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "netio/io_engine.hpp"
#include "netio/socket.hpp"
#include "netio/uring_engine.hpp"
#include "util/random.hpp"

namespace xdaq::pt {

struct TcpPeer {
  std::string host;
  std::uint16_t port;
};

struct TcpTransportConfig {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::map<i2o::NodeId, TcpPeer> peers;
  std::size_t max_frame_bytes = 300 * 1024;
  /// Sends whose wire size (4-byte length prefix included) stays at or
  /// under this may piggyback on an already-active writer and return
  /// immediately; the writer gathers them into its sendmsg.
  std::size_t coalesce_bytes = 4096;
  /// Seed for the reconnect-jitter RNG (deterministic tests).
  std::uint64_t jitter_seed = 0x7C75D902C2A15F27ULL;
  /// Zero-copy pipeline: receive into pooled blocks and deliver in-place
  /// views; transmit straight from live FrameRefs via gathered iovecs.
  /// false selects the legacy copy path (one rx memcpy into a pool frame
  /// per inbound frame, one tx copy into the coalesce buffer) - kept for
  /// the zerocopy_ablation benchmark and as a fallback.
  bool zero_copy = true;
  /// Reactor threads (each owns one epoll instance; accepted connections
  /// are assigned round-robin). 0 = one per executive dispatch shard, the
  /// accept-load-balancing the multi-core executive expects.
  std::size_t reactor_threads = 0;
  /// Wire-engine backend per reactor shard. kUring runs the io_uring
  /// completion path: rx bursts land straight in registered pooled
  /// buffers via multishot recv and tx batches submit as gathered
  /// sendmsg SQEs with one io_uring_enter per dispatch batch. Falls back
  /// to epoll with a logged reason when the kernel (or build) lacks
  /// support. The XDAQ_TCP_BACKEND environment variable ("epoll" /
  /// "uring") overrides this at transport start - the ctest backend
  /// matrix uses it to re-run the suite per backend.
  netio::IoEngine::Backend backend = netio::IoEngine::Backend::kEpoll;
};

class TcpPeerTransport final : public core::TransportDevice {
 public:
  explicit TcpPeerTransport(TcpTransportConfig config = {},
                            core::TransportConfig transport_config = {});
  ~TcpPeerTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  /// Zero-copy send: the pooled frame is queued as a live reference and
  /// the writer gathers prefix+body straight from pool memory (the ref is
  /// held until the kernel accepted the bytes). Falls back to the copying
  /// span path when config.zero_copy is off.
  Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) override;
  [[nodiscard]] core::PeerState peer_state(i2o::NodeId node) const override;
  void disrupt_peer(i2o::NodeId node) override;

  /// Port actually bound (after enable); 0 before that.
  [[nodiscard]] std::uint16_t listen_port() const;

  /// Adds/replaces a peer endpoint (before or after enable).
  void add_peer(i2o::NodeId node, const std::string& host,
                std::uint16_t port);

  [[nodiscard]] std::size_t connection_count() const;

  /// Fault-tolerance counters (cumulative since transport_up).
  struct FaultStats {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t reconnects = 0;          ///< successful redials
    std::uint64_t failed_dials = 0;        ///< redial attempts that failed
    std::uint64_t retransmitted = 0;       ///< queued frames resent
    std::uint64_t dropped_pending = 0;     ///< queued frames dropped (Down)
  };
  [[nodiscard]] FaultStats fault_stats() const;

  /// QoS counters (cumulative since transport_up).
  struct QosStats {
    std::uint64_t rx_parks = 0;      ///< read interest disarmed (pool empty)
    std::uint64_t rx_unparks = 0;    ///< read interest re-armed by reclaim
    std::uint64_t rx_shed = 0;       ///< inbound frames dropped (admission)
    std::uint64_t tx_shed = 0;       ///< sends refused (tx buffer cap)
    std::uint64_t credit_stalls = 0;   ///< writer stalls at zero credits
    std::uint64_t credit_grants_sent = 0;
    std::uint64_t credit_grants_rx = 0;
  };
  [[nodiscard]] QosStats qos_stats() const;

  /// Data-path efficiency counters (cumulative since transport_up). The
  /// syscall figures are the numerator of the syscalls-per-frame gauge:
  /// engine kernel entries (epoll_wait/epoll_ctl/eventfd or
  /// io_uring_enter) plus the transport's own recv/sendmsg calls - zero
  /// of the latter on the completion backend.
  struct IoStats {
    bool uring = false;            ///< completion backend active
    std::uint64_t io_syscalls = 0;  ///< transport recv/sendmsg calls
    std::uint64_t engine_entries = 0;
    std::uint64_t wake_coalesced = 0;
    std::uint64_t rx_frames = 0;  ///< data frames delivered off the wire
    std::uint64_t tx_frames = 0;  ///< wire entries fully transmitted
    netio::UringStats uring_stats;  ///< zeros on the epoll backend
    [[nodiscard]] double syscalls_per_frame() const noexcept {
      const std::uint64_t frames = rx_frames + tx_frames;
      return frames == 0 ? 0.0
                         : static_cast<double>(io_syscalls + engine_entries) /
                               static_cast<double>(frames);
    }
  };
  [[nodiscard]] IoStats io_stats() const;

  /// Backend actually selected at the last transport start (the config
  /// may have asked for uring and been downgraded).
  [[nodiscard]] bool uring_active() const noexcept {
    return uring_active_.load(std::memory_order_relaxed);
  }

  /// Test hook: while paused, the receive side accumulates grant debt but
  /// sends no credit grants - the peer's writer runs out of credits and
  /// stalls. Unpausing resumes granting on the next rx burst.
  void pause_credit_grants(bool on) noexcept {
    pause_credit_grants_.store(on, std::memory_order_relaxed);
  }

  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override;

 protected:
  Status on_configure(const i2o::ParamList& params) override;
  Status on_enable() override;
  Status on_halt() override;
  i2o::ParamList on_params_get() override;

  Status on_transport_start() override;
  void on_transport_stop() override;
  void on_transport_flush() override;

 private:
  /// One queued send: the 4-byte length prefix plus the body, either as a
  /// live pooled reference (zero-copy) or as owned bytes (span fallback,
  /// heartbeats, grants, retransmits). The writer gathers prefix+body of
  /// a whole batch into one sendmsg; the FrameRef is dropped only after
  /// the kernel accepted the bytes.
  struct PendingSend {
    std::array<std::byte, 4> prefix{};
    mem::FrameRef frame;           ///< zero-copy body (may be invalid)
    std::vector<std::byte> owned;  ///< copied/owned body (used if no frame)
    bool data = false;  ///< consumes one send credit when credits are on

    [[nodiscard]] std::span<const std::byte> body() const noexcept {
      return frame.valid() ? frame.bytes()
                           : std::span<const std::byte>(owned);
    }
    [[nodiscard]] std::size_t wire_bytes() const noexcept {
      return prefix.size() + body().size();
    }
  };

  /// Lives only in shared_ptrs (never moved), so the synchronization
  /// members can be held by value.
  ///
  /// Lock order within one connection: write_mutex -> interest_mutex.
  struct Connection {
    netio::TcpStream stream;
    /// kNullNode until the hello is received (atomic: the owning reactor
    /// thread writes it once; senders and maintenance read it).
    std::atomic<i2o::NodeId> node{i2o::kNullNode};
    std::uint32_t reactor_idx = 0;  ///< owning reactor shard
    std::atomic<bool> dead{false};  ///< drop_connection ran (once)

    // -- reactor interest (guarded by interest_mutex) ---------------------
    std::mutex interest_mutex;
    bool want_read = true;
    bool want_write = false;

    // -- write combiner (guarded by write_mutex) --------------------------
    // Every send appends one PendingSend; whichever sender finds no writer
    // active becomes the writer and drains via non-blocking gathered
    // sendmsg. On EAGAIN (or a partial batch) the writer arms EPOLLOUT
    // and returns - the reactor resumes the drain on writability, so NO
    // sender thread ever blocks on a slow consumer. At zero credits the
    // writer parks the queue; a credit grant restarts it.
    std::mutex write_mutex;
    bool writer_active = false;
    bool cork_listed = false;     ///< on the flush dirty list
    bool credit_stalled = false;  ///< drain stopped at zero credits
    /// Completion backend: a submit_tx SQE is outstanding for this fd (at
    /// most one); the tx_done completion clears it and resubmits whatever
    /// is left (short-write resume).
    bool tx_inflight = false;
    /// Completion backend: listed on the owning shard's tx_ready list
    /// (guarded by that shard's tx_mutex, not write_mutex).
    bool tx_listed = false;
    std::uint32_t credits = 0;    ///< send credits remaining
    std::deque<PendingSend> pending;    ///< queued sends (FIFO)
    std::deque<PendingSend> flush_buf;  ///< writer-owned drain target
    std::size_t flush_bytes = 0;  ///< wire bytes across flush_buf
    std::size_t flush_off = 0;    ///< bytes of flush_buf already accepted
    std::vector<std::span<const std::byte>> iov_parts;  ///< writer-owned
    std::size_t pending_bytes = 0;  ///< unwritten wire bytes (both queues)

    // -- read reassembly (owning reactor thread only) ---------------------
    std::vector<std::byte> rx;    ///< legacy path: unparsed bytes
    std::size_t rx_off = 0;       ///< legacy path: consumed offset into rx
    mem::FrameRef rx_block;       ///< zero-copy path: pooled receive block
    std::size_t rx_filled = 0;    ///< bytes read into rx_block
    std::size_t rx_consumed = 0;  ///< bytes parsed out of rx_block
    std::size_t rx_skip = 0;      ///< oversized-frame bytes left to discard
    bool rx_block_wanted = false;  ///< roll failed: pool exhausted
    bool parked = false;           ///< read interest disarmed
    /// Completion backend: rx blocks that completed while parked (the
    /// multishot recv had already filled them before the cancel landed).
    /// Drained in order ahead of re-arming; bounded by the CQ depth.
    std::deque<mem::FrameRef> rx_backlog;
    std::uint32_t grant_debt = 0;  ///< data frames consumed, not yet granted

    // -- liveness stamps (steady-clock ns) --------------------------------
    std::atomic<std::int64_t> last_rx_ns{0};
    std::atomic<std::int64_t> last_tx_ns{0};
  };

  /// One reactor thread: a wire engine (epoll Reactor or UringEngine)
  /// plus the conns it parked and, on the completion backend, the conns
  /// with tx work queued for the engine thread to submit.
  struct ReactorShard {
    std::unique_ptr<netio::IoEngine> engine;
    std::thread thread;
    /// Pool reclaim/grow fired (or shutdown): re-service parked conns.
    std::atomic<bool> rearm_parked{false};
    /// Connections with read interest disarmed; owning thread only.
    std::vector<std::shared_ptr<Connection>> parked;
    /// Completion backend: one max-size block held back from the provided
    /// buffer ring. Unlike epoll - where unabsorbed backpressure stays in
    /// the kernel socket buffer - the uring path parks rx overflow in
    /// pooled backlog blocks, so the pool can be consumed entirely by rx
    /// itself and the reclaim a parked roll waits for would never arrive.
    /// This block bootstraps the first backlog absorb; the fully-consumed
    /// block that absorb releases re-primes the pool. Owning thread only.
    mem::FrameRef rx_reserve;
    /// Completion backend: conns whose pending queue needs a submit_tx.
    /// Senders enlist + wake (coalesced); the engine thread swaps the
    /// list and submits the whole round as one SQE batch.
    std::mutex tx_mutex;
    std::vector<std::shared_ptr<Connection>> tx_ready;
  };

  /// Liveness bookkeeping for a configured peer (guarded by conns_mutex_).
  struct PeerInfo {
    core::PeerState state = core::PeerState::Unknown;
    std::uint32_t dial_attempts = 0;   ///< consecutive failed redials
    std::int64_t next_dial_ns = 0;     ///< steady-clock deadline
    bool dialing = false;              ///< a redial is in flight (unlocked)
    std::deque<std::vector<std::byte>> queued;  ///< control frames to resend
  };

  enum class ServiceResult { kOk, kParked, kDrop };

  void reactor_loop(ReactorShard& shard);
  void maintenance_loop();
  /// One maintenance pass: heartbeats, miss detection, due redials.
  void maintenance_tick(std::int64_t now_ns);
  /// Accept-drain on the listening socket (reactor shard 0).
  void handle_accept();
  /// Inserts `conn` into the fd/node indexes, assigns it a reactor shard
  /// round-robin and registers its fd with that shard's epoll.
  void register_connection(const std::shared_ptr<Connection>& conn);
  /// Updates epoll interest; nullopt leaves that half unchanged.
  void set_interest(Connection& conn, std::optional<bool> read,
                    std::optional<bool> write);
  /// Reactor writability event: resume the suspended drain.
  void writable_event(const std::shared_ptr<Connection>& conn);
  /// Disarms read interest and records `conn` on the shard's parked list.
  void park_connection(ReactorShard& shard,
                       const std::shared_ptr<Connection>& conn);
  /// Re-services every parked connection after a pool reclaim.
  void unpark_all(ReactorShard& shard);
  /// Completion backend: folds one engine-received block into the
  /// connection's rx pipeline - adopted in place when the previous block
  /// is quiescent (zero copy), appended to a straddling partial frame
  /// otherwise - and parses it. kParked stashes the unabsorbed remainder
  /// at the front of rx_backlog.
  ServiceResult absorb_rx_block(const std::shared_ptr<Connection>& conn,
                                mem::FrameRef blk);
  /// Completion backend: resumes a stalled straddle parse, then absorbs
  /// the parked-arrival backlog in order.
  ServiceResult drain_rx_backlog(const std::shared_ptr<Connection>& conn);
  /// Completion backend: marks `conn` dirty on its shard's tx_ready list
  /// and wakes the shard (coalesced). Idempotent while listed.
  void enlist_tx(const std::shared_ptr<Connection>& conn);
  /// Completion backend, engine thread: submits one gathered sendmsg SQE
  /// per dirty connection, then publishes the whole round with a single
  /// flush_submissions (one io_uring_enter per dispatch batch).
  void pump_tx_ready(ReactorShard& shard);
  /// Completion backend, engine thread: a submit_tx completed; retire
  /// what the kernel accepted and resubmit the remainder (short-write
  /// resume) or wait for a credit grant.
  void tx_complete(const std::shared_ptr<Connection>& conn,
                   std::int64_t res);
  /// Hello just completed on an accepted connection: index it by node,
  /// mark the peer Up and replay its queued frames.
  void hello_completed(const std::shared_ptr<Connection>& conn);
  /// Returns the connection for `node`, dialing it if necessary. The dial
  /// and handshake run outside conns_mutex_ so a slow connect cannot stall
  /// sends to other nodes.
  Result<std::shared_ptr<Connection>> connection_to(i2o::NodeId node);
  /// Dials `peer`, completing the hello. Does not touch the registry.
  Result<std::shared_ptr<Connection>> dial(i2o::NodeId node,
                                           const TcpPeer& peer);
  Status send_hello(Connection& conn);
  Status send_heartbeat(const std::shared_ptr<Connection>& conn);
  /// Queues one encoded entry through the combiner. `shed_priority`
  /// selects the tx_buffer_bytes shed rung (0 = most urgent). Returns
  /// Errc::ResourceExhausted - connection intact - when shed.
  Status write_entry(const std::shared_ptr<Connection>& conn,
                     PendingSend entry, std::size_t wire_bytes,
                     unsigned shed_priority);
  /// Writes one length-prefixed frame through the combiner (owned copy).
  Status write_frame(const std::shared_ptr<Connection>& conn,
                     std::vector<std::byte> frame);
  /// Shared liveness gating + enqueue for both send flavours; `body` must
  /// stay valid for the call (it aliases `ref` when one is passed).
  Status send_common(i2o::NodeId dst, std::span<const std::byte> body,
                     mem::FrameRef ref);
  /// Drains every complete frame available on a readable connection.
  ServiceResult service_connection(const std::shared_ptr<Connection>& conn);
  /// Legacy copy path (config.zero_copy == false).
  ServiceResult service_connection_legacy(Connection& conn);
  /// Parses [rx_consumed, rx_filled) of conn.rx_block in place, handing
  /// complete frames to the executive as views (`self` is the same
  /// connection, needed to restart a credit-stalled writer on a grant).
  /// false = protocol error.
  bool parse_rx_block(Connection& conn,
                      const std::shared_ptr<Connection>& self);
  /// Makes the rx block writable again: reuse in place when quiescent,
  /// otherwise hand off to a fresh block (splicing a partial frame tail).
  /// On pool exhaustion arms the reclaim hook, retries once, then flags
  /// rx_block_wanted and returns false (the caller parks).
  bool roll_rx_block(Connection& conn, std::size_t need_hint);
  /// Returns true when this inbound frame should be dropped at the edge
  /// (bounded admission; counts rx_shed).
  bool shed_inbound(std::span<const std::byte> frame, bool control);
  /// Applies a received credit grant; restarts a credit-stalled writer.
  Status apply_credit_grant(const std::shared_ptr<Connection>& conn,
                            std::uint32_t count);
  /// Sends a credit grant when at least half a window of debt accrued.
  void maybe_send_grant(const std::shared_ptr<Connection>& conn);
  /// Moves sendable entries from pending into the writer-owned flush_buf,
  /// spending one credit per data entry; at zero credits exempt entries
  /// (heartbeats, grants) are still extracted past the stalled data
  /// prefix. Call with write_mutex held.
  void refill_flush_buf_locked(Connection& conn);
  /// Pops flush_buf heads fully covered by flush_off (their FrameRefs
  /// drop back to the pool). Call with write_mutex held.
  void retire_flushed_locked(Connection& conn) noexcept;
  /// Rebuilds conn.iov_parts as the prefix+body gather over flush_buf.
  /// Call with write_mutex held.
  static void gather_iov_locked(Connection& conn);
  /// Writes out conn.pending/flush_buf as far as credits and the socket
  /// buffer allow; never blocks. Call with lk holding conn.write_mutex
  /// and conn.writer_active set by the caller. Ok with bytes still queued
  /// means a re-drive is armed (EPOLLOUT or a future credit grant).
  /// Readiness backend only - the completion backend drains through
  /// pump_tx_ready/tx_complete on the engine thread instead.
  Status flush_pending(Connection& conn, std::unique_lock<std::mutex>& lk);
  /// Removes `conn` from the registry and downgrades its peer to Suspect
  /// (scheduling a redial). Safe to call from any thread, idempotent, and
  /// safe against a concurrently iterating reactor (the fd is
  /// deregistered first; in-flight events find the index entry gone).
  void drop_connection(const std::shared_ptr<Connection>& conn);
  /// Transitions `node` (must hold conns_mutex_); the notification is
  /// returned for the caller to fire after unlocking.
  struct Transition {
    i2o::NodeId node = i2o::kNullNode;
    core::PeerState from = core::PeerState::Unknown;
    core::PeerState to = core::PeerState::Unknown;
    [[nodiscard]] bool fired() const noexcept {
      return node != i2o::kNullNode && from != to;
    }
  };
  [[nodiscard]] Transition set_state_locked(i2o::NodeId node,
                                            core::PeerState to);
  void fire(const Transition& t);
  /// Retransmits a peer's queued control frames over a fresh connection.
  void retransmit_queued(i2o::NodeId node,
                         const std::shared_ptr<Connection>& conn);
  [[nodiscard]] static std::int64_t steady_ns() noexcept;
  /// Control-plane frame: anything except an unmarked private frame.
  [[nodiscard]] static bool is_control_frame(
      std::span<const std::byte> frame) noexcept;

  TcpTransportConfig config_;
  Logger log_;

  mutable std::mutex conns_mutex_;
  netio::TcpListener listener_;
  /// Connection indexes (conns_mutex_): by fd for O(1) reactor routing
  /// and O(1) drop, by node for O(1) send lookup. shared_ptr so a send or
  /// reactor event in flight keeps its connection alive while another
  /// thread drops it from the registry. A node with racing dial+accept
  /// may briefly own two fds; by-node keeps the first.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_by_fd_;
  std::unordered_map<i2o::NodeId, std::shared_ptr<Connection>>
      conns_by_node_;
  std::map<i2o::NodeId, PeerInfo> peers_;
  Rng jitter_rng_{0};  ///< reseeded at transport_up (conns_mutex_)

  std::vector<std::unique_ptr<ReactorShard>> reactors_;
  std::atomic<std::uint32_t> next_reactor_{0};

  /// End-of-batch cork dirty list: flush cost scales with corked peers,
  /// not total peers.
  std::mutex cork_mutex_;
  std::vector<std::shared_ptr<Connection>> cork_list_;

  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> failed_dials_{0};
  std::atomic<std::uint64_t> retransmitted_{0};
  std::atomic<std::uint64_t> dropped_pending_{0};

  // Copies-per-frame accounting (the zero-copy pipeline's scoreboard).
  std::atomic<std::uint64_t> rx_copies_{0};   ///< inbound frames memcpy'd
  std::atomic<std::uint64_t> tx_copies_{0};   ///< outbound bodies memcpy'd
  std::atomic<std::uint64_t> rx_splices_{0};  ///< block-straddle fallbacks

  // Syscalls-per-frame accounting (the io_uring data path's scoreboard).
  std::atomic<bool> uring_active_{false};
  std::atomic<std::uint64_t> io_syscalls_{0};  ///< recv/sendmsg calls made
  std::atomic<std::uint64_t> rx_frames_{0};
  std::atomic<std::uint64_t> tx_frames_{0};

  // QoS counters.
  std::atomic<std::uint64_t> rx_parks_{0};
  std::atomic<std::uint64_t> rx_unparks_{0};
  std::atomic<std::uint64_t> rx_shed_{0};
  std::atomic<std::uint64_t> tx_shed_{0};
  std::atomic<std::uint64_t> credit_stalls_{0};
  std::atomic<std::uint64_t> credit_grants_sent_{0};
  std::atomic<std::uint64_t> credit_grants_rx_{0};
  std::atomic<bool> pause_credit_grants_{false};

  /// Set when a dispatch-batch send was corked in some connection's
  /// pending queue; cleared by the end-of-batch flush (or the
  /// maintenance backstop) that drains it.
  std::atomic<bool> corked_{false};

  std::thread maintenance_thread_;
  std::condition_variable_any maintenance_cv_;
};

}  // namespace xdaq::pt
