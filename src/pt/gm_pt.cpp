#include "pt/gm_pt.hpp"

#include "util/clock.hpp"

namespace xdaq::pt {

GmPeerTransport::GmPeerTransport(gmsim::Fabric& fabric,
                                 GmTransportConfig config,
                                 core::TransportConfig transport_config)
    : TransportDevice("GmPeerTransport", config.mode, transport_config),
      fabric_(&fabric),
      config_(config) {}

GmPeerTransport::~GmPeerTransport() { transport_down(); }

void GmPeerTransport::plugin() {
  auto port = fabric_->open_port(executive().node_id());
  if (!port.is_ok()) {
    Logger("pt/gm").error("cannot open GM port: ",
                          port.status().to_string());
    return;
  }
  port_ = std::move(port).value();
  rx_storage_.clear();
  rx_pooled_.clear();
  for (std::size_t i = 0; i < config_.receive_buffers; ++i) {
    provide_rx_buffer();
  }
}

void GmPeerTransport::provide_rx_buffer() {
  // Pool blocks cap at kMaxBlockBytes; frames larger than that cannot be
  // delivered to the executive anyway, so clamping loses nothing (the
  // fabric truncates, exactly as an undersized GM buffer would).
  const std::size_t bytes =
      std::min<std::size_t>(config_.buffer_bytes, mem::kMaxBlockBytes);
  if (auto blk = executive().pool().allocate(bytes); blk.is_ok()) {
    mem::FrameRef block = std::move(blk).value();
    port_->provide_receive_buffer(block.bytes());
    rx_pooled_.emplace(block.bytes().data(), std::move(block));
    return;
  }
  rx_pool_misses_.fetch_add(1, std::memory_order_relaxed);
  rx_storage_.emplace_back(config_.buffer_bytes);
  port_->provide_receive_buffer(rx_storage_.back());
}

Status GmPeerTransport::on_configure(const i2o::ParamList& params) {
  if (Status st = parse_transport_params(params); !st.is_ok()) {
    return st;
  }
  if (const std::string mode = i2o::param_value(params, "mode");
      !mode.empty()) {
    // Mode is fixed at construction (it decides how the executive treats
    // this PT); configuring a different one is a deployment error.
    const bool want_polling = (mode == "polling");
    if (want_polling != (this->mode() == Mode::Polling)) {
      return {Errc::InvalidArgument,
              "transport mode is fixed at construction"};
    }
  }
  return Status::ok();
}

Status GmPeerTransport::on_enable() {
  if (port_ == nullptr) {
    return {Errc::FailedPrecondition, "GM port not open"};
  }
  return transport_up();
}

Status GmPeerTransport::on_halt() {
  transport_down();
  return Status::ok();
}

i2o::ParamList GmPeerTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("mode", mode() == Mode::Polling ? "polling" : "task");
  if (port_ != nullptr) {
    const auto s = port_->stats();
    params.emplace_back("sends", std::to_string(s.sends));
    params.emplace_back("receives", std::to_string(s.receives));
    params.emplace_back("send_rejects", std::to_string(s.send_rejects));
  }
  return params;
}

Status GmPeerTransport::transport_send(i2o::NodeId dst,
                                       std::span<const std::byte> frame) {
  if (port_ == nullptr) {
    return {Errc::FailedPrecondition, "GM port not open"};
  }
  // GM semantics: send needs a token; a real GM application retries after
  // pumping completions. Back off in stages while starved: stay hot
  // briefly (tokens usually return within microseconds), then yield, then
  // sleep outright - the consumer returning our tokens may need this core
  // (a 64-node in-process run has far more executives than cores, and a
  // send-side spin storm starves the very receivers that would drain it).
  const std::size_t retry_spins = transport_config().send_retry_spins;
  for (std::size_t spin = 0; spin < retry_spins; ++spin) {
    const Status st = port_->send(dst, frame);
    if (st.code() != Errc::ResourceExhausted) {
      return st;
    }
    if (spin >= 1024) {
      if ((spin & 0x3F) == 0x3F) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    } else if ((spin & 0x3FF) == 0x3FF) {
      std::this_thread::yield();
    }
  }
  return {Errc::ResourceExhausted, "send tokens exhausted (peer stalled?)"};
}

void GmPeerTransport::on_transport_poll() {
  if (port_ == nullptr) {
    return;
  }
  // Drain everything deliverable this scan. Polling PTs are pumped only
  // by dispatch shard 0; deliver_from_wire routes each frame to the
  // target TiD's owning shard.
  while (auto ev = port_->poll()) {
    deliver(*ev, rdtsc());
  }
}

void GmPeerTransport::deliver(const gmsim::RecvEvent& ev,
                              std::uint64_t t_wire) {
  if (auto it = rx_pooled_.find(ev.buffer.data()); it != rx_pooled_.end()) {
    // The message already sits in pool memory: resize the block handle to
    // the wire length and post it - zero software copies. The block is
    // donated downstream, so lend the port a fresh one in its place.
    mem::FrameRef block = std::move(it->second);
    rx_pooled_.erase(it);
    block.resize(ev.length);
    (void)executive().deliver_from_wire(static_cast<i2o::NodeId>(ev.src),
                                        tid(), std::move(block), t_wire);
    provide_rx_buffer();
    return;
  }
  // Fallback vector buffer: the copying span path, buffer reused as-is.
  rx_copies_.fetch_add(1, std::memory_order_relaxed);
  (void)executive().deliver_from_wire(
      static_cast<i2o::NodeId>(ev.src), tid(),
      std::span<const std::byte>(ev.buffer.data(), ev.length), t_wire);
  // Hand the buffer back for the next message
  // (gm_provide_receive_buffer).
  port_->provide_receive_buffer(ev.buffer);
}

Status GmPeerTransport::on_transport_start() {
  if (mode() != Mode::Task) {
    return Status::ok();  // polling mode: the executive pumps us
  }
  task_thread_ = std::thread([this] { receive_loop(); });
  return Status::ok();
}

void GmPeerTransport::on_transport_stop() {
  if (task_thread_.joinable()) {
    task_thread_.join();
  }
}

void GmPeerTransport::receive_loop() {
  while (transport_running()) {
    auto ev = port_->receive(std::chrono::milliseconds(1));
    if (ev.has_value()) {
      deliver(*ev, rdtsc());
    }
  }
}

gmsim::PortStats GmPeerTransport::port_stats() const {
  return port_ != nullptr ? port_->stats() : gmsim::PortStats{};
}

void GmPeerTransport::append_metrics(const std::string& prefix,
                                     std::vector<obs::Sample>& out) const {
  const gmsim::PortStats ps = port_stats();
  out.push_back({prefix + ".sends", static_cast<std::int64_t>(ps.sends)});
  out.push_back({prefix + ".receives",
                 static_cast<std::int64_t>(ps.receives)});
  out.push_back({prefix + ".send_rejects",
                 static_cast<std::int64_t>(ps.send_rejects)});
  out.push_back({prefix + ".rx_copies",
                 static_cast<std::int64_t>(
                     rx_copies_.load(std::memory_order_relaxed))});
  // The span handed to gmsim::Port::send models the NIC DMA, so the
  // software tx path is copy-free by construction.
  out.push_back({prefix + ".tx_copies", std::int64_t{0}});
  out.push_back({prefix + ".rx_pool_misses",
                 static_cast<std::int64_t>(
                     rx_pool_misses_.load(std::memory_order_relaxed))});
}

}  // namespace xdaq::pt
