// fifo_pt.hpp - PCI peer transport over hardware-style FIFOs.
//
// Paper section 7 (ongoing work): "members of our team designed a PLX IOP
// 480 based processor board with a local PCI board ... The board gives
// I2O support through hardware FIFOs, which will allow us to provide
// communication efficiency measurements with and without hardware
// support. ... We are now implementing a PCI Peer Transport for providing
// communication with the host."
//
// That board is unavailable; the closest synthetic equivalent is a pair
// of fixed-depth SPSC rings (the inbound/outbound hardware FIFOs of
// Fig. 2) connecting exactly two executives - a host and an intelligent
// I/O processor. Posting a frame is one ring slot write; the consumer
// side polls its inbound FIFO exactly as an I2O IOP polls its port.
// A full FIFO rejects the post (hardware FIFOs do not grow).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/executive.hpp"
#include "core/transport.hpp"
#include "util/ring.hpp"

namespace xdaq::pt {

class FifoTransport;

/// The "PCI segment": two hardware FIFOs between two endpoints.
/// Endpoint 0 is conventionally the host, endpoint 1 the IOP board.
class FifoLink {
 public:
  /// depth: FIFO slots per direction (a power of two is used).
  explicit FifoLink(std::size_t depth = 256);

  FifoLink(const FifoLink&) = delete;
  FifoLink& operator=(const FifoLink&) = delete;

  [[nodiscard]] std::size_t depth() const noexcept {
    return fifo_to_0_.capacity();
  }

 private:
  friend class FifoTransport;

  struct Slot {
    i2o::NodeId src = i2o::kNullNode;
    /// Zero-copy path: a live pooled reference travels through the ring
    /// slot; the consumer hands it straight to its executive. The vector
    /// is only used by the legacy span path (and keeps its bytes alive
    /// when the sender's buffer is transient).
    mem::FrameRef ref;
    std::vector<std::byte> frame;
  };

  /// FIFO carrying traffic *towards* endpoint e (rings are not movable,
  /// hence two named members).
  SpscRing<Slot>& fifo_towards(int e) noexcept {
    return e == 0 ? fifo_to_0_ : fifo_to_1_;
  }

  SpscRing<Slot> fifo_to_0_;
  SpscRing<Slot> fifo_to_1_;
  /// One producer lock per FIFO: several device threads may post on the
  /// same side (the "bus arbitration" of the segment).
  std::mutex producer_mutex_[2];
  FifoTransport* endpoints_[2] = {nullptr, nullptr};
  std::mutex attach_mutex_;
};

class FifoTransport final : public core::TransportDevice {
 public:
  /// `endpoint` is this side's index on the link (0 = host, 1 = IOP).
  FifoTransport(FifoLink& link, int endpoint);
  ~FifoTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) override;

  /// Frames rejected because the FIFO was full.
  [[nodiscard]] std::uint64_t fifo_full_rejects() const noexcept {
    return rejects_.load(std::memory_order_relaxed);
  }

  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override {
    out.push_back({prefix + ".fifo_full_rejects",
                   static_cast<std::int64_t>(fifo_full_rejects())});
    out.push_back({prefix + ".rx_copies",
                   static_cast<std::int64_t>(
                       rx_copies_.load(std::memory_order_relaxed))});
    out.push_back({prefix + ".tx_copies",
                   static_cast<std::int64_t>(
                       tx_copies_.load(std::memory_order_relaxed))});
  }

 protected:
  void plugin() override;
  i2o::ParamList on_params_get() override;
  void on_transport_poll() override;

 private:
  /// Shared slot-posting path for both send variants.
  Status post_slot(i2o::NodeId dst, FifoLink::Slot slot);

  FifoLink* link_;
  int endpoint_;
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> rx_copies_{0};
  std::atomic<std::uint64_t> tx_copies_{0};
};

}  // namespace xdaq::pt
