#include "pt/transport_factory.hpp"

#include "pt/gm_pt.hpp"
#include "pt/tcp_pt.hpp"

namespace xdaq::pt {

Result<std::unique_ptr<core::Device>> make_transport(
    const cluster::PeerSpec& spec, const TransportContext& ctx) {
  switch (spec.kind) {
    case cluster::PeerSpec::Kind::Gm: {
      if (ctx.fabric == nullptr) {
        return {Errc::FailedPrecondition,
                "PeerSpec kind gm needs TransportContext.fabric"};
      }
      GmTransportConfig gc;
      gc.mode = spec.mode;
      if (spec.receive_buffers != 0) {
        gc.receive_buffers = spec.receive_buffers;
      }
      if (spec.buffer_bytes != 0) {
        gc.buffer_bytes = spec.buffer_bytes;
      }
      return std::unique_ptr<core::Device>(
          std::make_unique<GmPeerTransport>(*ctx.fabric, gc, spec.tuning));
    }
    case cluster::PeerSpec::Kind::LocalBus: {
      if (ctx.bus == nullptr) {
        return {Errc::FailedPrecondition,
                "PeerSpec kind local needs TransportContext.bus"};
      }
      return std::unique_ptr<core::Device>(
          std::make_unique<LocalBusTransport>(*ctx.bus));
    }
    case cluster::PeerSpec::Kind::Fifo: {
      if (ctx.link == nullptr) {
        return {Errc::FailedPrecondition,
                "PeerSpec kind fifo needs TransportContext.link"};
      }
      if (ctx.fifo_endpoint != 0 && ctx.fifo_endpoint != 1) {
        return {Errc::InvalidArgument, "fifo endpoint must be 0 or 1"};
      }
      return std::unique_ptr<core::Device>(
          std::make_unique<FifoTransport>(*ctx.link, ctx.fifo_endpoint));
    }
    case cluster::PeerSpec::Kind::Tcp: {
      TcpTransportConfig tc;
      tc.listen_port = spec.port;
      return std::unique_ptr<core::Device>(
          std::make_unique<TcpPeerTransport>(tc, spec.tuning));
    }
  }
  return {Errc::InvalidArgument, "unknown PeerSpec kind"};
}

}  // namespace xdaq::pt
