// cluster.hpp - in-process multi-node harness.
//
// Stands up N executives ("IOPs"), one simulated-GM peer transport each,
// full-mesh routes, and name-based proxy wiring. This is the scaffolding
// every test, example, and benchmark uses to model the paper's deployment
// of one executive per cluster node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "gmsim/gmsim.hpp"
#include "pt/gm_pt.hpp"

namespace xdaq::pt {

struct ClusterConfig {
  std::size_t nodes = 2;
  gmsim::FabricConfig fabric;
  GmTransportConfig transport;
  /// Common transport tuning (retry spins, liveness knobs) applied to
  /// every node's PT.
  core::TransportConfig tuning;
  /// Template for each node's executive (node_id and name are overwritten).
  core::ExecutiveConfig exec;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return execs_.size(); }
  [[nodiscard]] core::Executive& node(std::size_t i) { return *execs_.at(i); }
  [[nodiscard]] gmsim::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] i2o::NodeId node_id(std::size_t i) const {
    return static_cast<i2o::NodeId>(i + 1);
  }
  [[nodiscard]] GmPeerTransport& transport(std::size_t i) {
    return *pts_.at(i);
  }

  /// Installs a device on node `i` (thin forwarder).
  Result<i2o::Tid> install(std::size_t i,
                           std::unique_ptr<core::Device> device,
                           const std::string& instance,
                           const i2o::ParamList& params = {});

  /// Creates (or reuses) a proxy on node `from` for the device named
  /// `remote_instance` on node `to`. Optionally names the proxy locally.
  Result<i2o::Tid> connect(std::size_t from, std::size_t to,
                           const std::string& remote_instance,
                           const std::string& local_name = {});

  /// Enables every device on every node (PTs included).
  Status enable_all();

  /// Starts/stops all dispatch threads.
  void start_all();
  void stop_all();

 private:
  std::unique_ptr<gmsim::Fabric> fabric_;
  std::vector<std::unique_ptr<core::Executive>> execs_;
  std::vector<GmPeerTransport*> pts_;  ///< owned by their executives
};

}  // namespace xdaq::pt
