// cluster.hpp - in-process multi-node harness.
//
// Stands up N executives ("IOPs"), one simulated-GM peer transport each,
// full-mesh routes, and name-based proxy wiring. This is the scaffolding
// every test, example, and benchmark uses to model the paper's deployment
// of one executive per cluster node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/gossip.hpp"
#include "cluster/peer_spec.hpp"
#include "core/executive.hpp"
#include "gmsim/gmsim.hpp"

namespace xdaq::pt {

struct ClusterConfig {
  std::size_t nodes = 2;
  gmsim::FabricConfig fabric;
  /// One description for every node's peer transport: kind, mode, buffer
  /// sizing and liveness tuning. This replaces the old per-transport
  /// ad-hoc fields (GmTransportConfig + TransportConfig pairs); parse a
  /// "gm:task"-style string or set fields directly.
  cluster::PeerSpec peer;
  /// Template for each node's executive (node_id and name are overwritten).
  core::ExecutiveConfig exec;
  /// Install a cluster::GossipDevice per node, wired to the executive's
  /// gossip sink and peer-state listeners.
  bool gossip = false;
  cluster::GossipDevice::Config gossip_config;
  /// Wire full-mesh direct routes in the constructor. Relay-topology
  /// tests disable this and call set_route()/relay_route() by hand.
  bool full_mesh = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return execs_.size(); }
  [[nodiscard]] core::Executive& node(std::size_t i) { return *execs_.at(i); }
  [[nodiscard]] gmsim::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] i2o::NodeId node_id(std::size_t i) const {
    return static_cast<i2o::NodeId>(i + 1);
  }
  [[nodiscard]] core::TransportDevice& transport(std::size_t i) {
    return *pts_.at(i);
  }
  /// The per-node gossip device; only valid when config.gossip is set.
  [[nodiscard]] cluster::GossipDevice& gossip(std::size_t i) {
    return *gossips_.at(i);
  }

  /// Declares that node `from` reaches node `to` by relaying through
  /// node `via` (which must be directly routed from `from`).
  void relay_route(std::size_t from, std::size_t to, std::size_t via) {
    execs_.at(from)->resolver().routes().set_relay(node_id(to),
                                                   node_id(via));
  }

  /// Installs a device on node `i` (thin forwarder).
  Result<i2o::Tid> install(std::size_t i,
                           std::unique_ptr<core::Device> device,
                           const std::string& instance,
                           const i2o::ParamList& params = {});

  /// Creates (or reuses) a proxy on node `from` for the device named
  /// `remote_instance` on node `to`. Optionally names the proxy locally.
  Result<i2o::Tid> connect(std::size_t from, std::size_t to,
                           const std::string& remote_instance,
                           const std::string& local_name = {});

  /// Enables every device on every node (PTs included).
  Status enable_all();

  /// Starts/stops all dispatch threads.
  void start_all();
  void stop_all();

 private:
  std::unique_ptr<gmsim::Fabric> fabric_;
  std::vector<std::unique_ptr<core::Executive>> execs_;
  std::vector<core::TransportDevice*> pts_;  ///< owned by their executives
  std::vector<cluster::GossipDevice*> gossips_;  ///< owned by executives
};

}  // namespace xdaq::pt
