#include "pt/cluster.hpp"

#include <stdexcept>

namespace xdaq::pt {

Cluster::Cluster(ClusterConfig config)
    : fabric_(std::make_unique<gmsim::Fabric>(config.fabric)) {
  execs_.reserve(config.nodes);
  pts_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    core::ExecutiveConfig ec = config.exec;
    ec.node_id = node_id(i);
    ec.name = "node" + std::to_string(ec.node_id);
    execs_.push_back(std::make_unique<core::Executive>(ec));

    auto pt = std::make_unique<GmPeerTransport>(*fabric_, config.transport,
                                                config.tuning);
    GmPeerTransport* raw = pt.get();
    auto tid = execs_[i]->install(std::move(pt), "pt_gm");
    if (!tid.is_ok()) {
      throw std::runtime_error("Cluster: PT install failed: " +
                               tid.status().to_string());
    }
    pts_.push_back(raw);
  }
  // Full mesh: every node reaches every other node through its GM PT.
  for (std::size_t i = 0; i < config.nodes; ++i) {
    for (std::size_t j = 0; j < config.nodes; ++j) {
      if (i == j) {
        continue;
      }
      const Status st = execs_[i]->set_route(node_id(j), pts_[i]->tid());
      if (!st.is_ok()) {
        throw std::runtime_error("Cluster: route setup failed: " +
                                 st.to_string());
      }
    }
  }
}

Cluster::~Cluster() { stop_all(); }

Result<i2o::Tid> Cluster::install(std::size_t i,
                                  std::unique_ptr<core::Device> device,
                                  const std::string& instance,
                                  const i2o::ParamList& params) {
  return execs_.at(i)->install(std::move(device), instance, params);
}

Result<i2o::Tid> Cluster::connect(std::size_t from, std::size_t to,
                                  const std::string& remote_instance,
                                  const std::string& local_name) {
  auto remote_tid = execs_.at(to)->tid_of(remote_instance);
  if (!remote_tid.is_ok()) {
    return remote_tid;
  }
  return execs_.at(from)->register_remote(node_id(to), remote_tid.value(),
                                          local_name);
}

Status Cluster::enable_all() {
  for (auto& exec : execs_) {
    if (Status st = exec->enable_all(); !st.is_ok()) {
      return st;
    }
  }
  return Status::ok();
}

void Cluster::start_all() {
  for (auto& exec : execs_) {
    exec->start();
  }
}

void Cluster::stop_all() {
  for (auto& exec : execs_) {
    exec->stop();
  }
}

}  // namespace xdaq::pt
