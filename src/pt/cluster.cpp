#include "pt/cluster.hpp"

#include <stdexcept>

#include "pt/transport_factory.hpp"

namespace xdaq::pt {

Cluster::Cluster(ClusterConfig config)
    : fabric_(std::make_unique<gmsim::Fabric>(config.fabric)) {
  if (config.peer.kind != cluster::PeerSpec::Kind::Gm) {
    throw std::runtime_error(
        "Cluster: the in-process harness is GM-based; got peer kind '" +
        std::string(cluster::to_string(config.peer.kind)) + "'");
  }
  execs_.reserve(config.nodes);
  pts_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    core::ExecutiveConfig ec = config.exec;
    ec.node_id = node_id(i);
    ec.name = "node" + std::to_string(ec.node_id);
    execs_.push_back(std::make_unique<core::Executive>(ec));

    TransportContext tctx;
    tctx.fabric = fabric_.get();
    auto pt = make_transport(config.peer, tctx);
    if (!pt.is_ok()) {
      throw std::runtime_error("Cluster: PT construction failed: " +
                               pt.status().to_string());
    }
    auto* raw = static_cast<core::TransportDevice*>(pt.value().get());
    auto tid = execs_[i]->install(std::move(pt).value(), "pt_gm");
    if (!tid.is_ok()) {
      throw std::runtime_error("Cluster: PT install failed: " +
                               tid.status().to_string());
    }
    pts_.push_back(raw);
  }
  // Full mesh: every node reaches every other node through its GM PT.
  if (config.full_mesh) {
    for (std::size_t i = 0; i < config.nodes; ++i) {
      for (std::size_t j = 0; j < config.nodes; ++j) {
        if (i == j) {
          continue;
        }
        const Status st = execs_[i]->set_route(node_id(j), pts_[i]->tid());
        if (!st.is_ok()) {
          throw std::runtime_error("Cluster: route setup failed: " +
                                   st.to_string());
        }
      }
    }
  }
  if (config.gossip) {
    gossips_.reserve(config.nodes);
    for (std::size_t i = 0; i < config.nodes; ++i) {
      cluster::GossipDevice::Config gc = config.gossip_config;
      // Decorrelate the per-node fanout draws while keeping runs seeded.
      gc.seed = config.gossip_config.seed + i;
      auto dev = std::make_unique<cluster::GossipDevice>(node_id(i), gc);
      cluster::GossipDevice* raw = dev.get();
      auto tid = execs_[i]->install(std::move(dev), "gossip");
      if (!tid.is_ok()) {
        throw std::runtime_error("Cluster: gossip install failed: " +
                                 tid.status().to_string());
      }
      execs_[i]->set_gossip_sink(
          [raw](std::span<const std::byte> payload) {
            raw->on_gossip(payload);
          });
      execs_[i]->add_peer_state_listener(
          [raw](i2o::NodeId node, core::PeerState /*from*/,
                core::PeerState to) {
            if (to == core::PeerState::Down) {
              raw->on_peer_down(node);
            }
          });
      gossips_.push_back(raw);
    }
    // Seed membership: every node knows its full-mesh neighbours from
    // the topology; gossip keeps the map fresh from here on.
    for (std::size_t i = 0; i < config.nodes; ++i) {
      for (std::size_t j = 0; j < config.nodes; ++j) {
        if (i != j) {
          gossips_[i]->map().note_alive(node_id(j));
        }
      }
    }
  }
}

Cluster::~Cluster() { stop_all(); }

Result<i2o::Tid> Cluster::install(std::size_t i,
                                  std::unique_ptr<core::Device> device,
                                  const std::string& instance,
                                  const i2o::ParamList& params) {
  return execs_.at(i)->install(std::move(device), instance, params);
}

Result<i2o::Tid> Cluster::connect(std::size_t from, std::size_t to,
                                  const std::string& remote_instance,
                                  const std::string& local_name) {
  auto remote_tid = execs_.at(to)->tid_of(remote_instance);
  if (!remote_tid.is_ok()) {
    return remote_tid;
  }
  return execs_.at(from)->resolver().resolve(node_id(to), remote_tid.value(),
                                             local_name);
}

Status Cluster::enable_all() {
  for (auto& exec : execs_) {
    if (Status st = exec->enable_all(); !st.is_ok()) {
      return st;
    }
  }
  return Status::ok();
}

void Cluster::start_all() {
  for (auto& exec : execs_) {
    exec->start();
  }
}

void Cluster::stop_all() {
  for (auto& exec : execs_) {
    exec->stop();
  }
}

}  // namespace xdaq::pt
