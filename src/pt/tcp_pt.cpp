#include "pt/tcp_pt.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "i2o/wire.hpp"
#include "netio/reactor.hpp"
#include "util/clock.hpp"

namespace xdaq::pt {

namespace {
constexpr std::uint32_t kHelloMagic = 0x58444151;  // "XDAQ"
constexpr std::size_t kHelloBytes = 6;             // magic + node id
constexpr std::size_t kReadChunk = 64 * 1024;      // per-recv scratch size
/// Length-prefix sentinel for a heartbeat (no body). Cannot collide with a
/// real frame: lengths are bounded by max_frame_bytes.
constexpr std::uint32_t kHeartbeatLen = 0xFFFFFFFF;
/// Length-prefix sentinel for a credit grant; a u32 credit count follows.
constexpr std::uint32_t kCreditGrantLen = 0xFFFFFFFE;
constexpr std::size_t kCreditGrantBytes = 8;  // sentinel + count
/// Reactor wait granularity; shutdown and reclaim re-arms cut it short
/// via wake(), so it only bounds how stale a parked-connection retry can
/// get when a wakeup is lost to a race (it cannot be, but belt and
/// braces).
constexpr int kReactorWaitMs = 100;
}  // namespace

TcpPeerTransport::TcpPeerTransport(TcpTransportConfig config,
                                   core::TransportConfig transport_config)
    : TransportDevice("TcpPeerTransport", Mode::Task, transport_config),
      config_(std::move(config)),
      log_("pt/tcp") {}

TcpPeerTransport::~TcpPeerTransport() { transport_down(); }

std::int64_t TcpPeerTransport::steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TcpPeerTransport::is_control_frame(
    std::span<const std::byte> frame) noexcept {
  if (frame.size() < 8) {
    return true;  // malformed; treat conservatively as control
  }
  const auto flags = static_cast<std::uint8_t>(frame[1]);
  const auto function = static_cast<std::uint8_t>(frame[7]);
  return function != static_cast<std::uint8_t>(i2o::Function::Private) ||
         (flags & i2o::kFlagControl) != 0;
}

Status TcpPeerTransport::on_configure(const i2o::ParamList& params) {
  if (Status st = parse_transport_params(params); !st.is_ok()) {
    return st;
  }
  for (const auto& [key, value] : params) {
    if (key == "listen_port") {
      config_.listen_port =
          static_cast<std::uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "zero_copy") {
      config_.zero_copy = value != "0" && value != "false";
    } else if (key == "backend") {
      if (value == "uring") {
        config_.backend = netio::IoEngine::Backend::kUring;
      } else if (value == "epoll") {
        config_.backend = netio::IoEngine::Backend::kEpoll;
      } else {
        return {Errc::InvalidArgument, "backend must be epoll or uring"};
      }
    } else if (key == "reactor_threads") {
      config_.reactor_threads =
          static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key.rfind("peer.", 0) == 0) {
      const auto node = static_cast<i2o::NodeId>(
          std::strtoul(key.c_str() + 5, nullptr, 10));
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        return {Errc::InvalidArgument, "peer entry needs host:port"};
      }
      add_peer(node, value.substr(0, colon),
               static_cast<std::uint16_t>(
                   std::strtoul(value.substr(colon + 1).c_str(), nullptr,
                                10)));
    }
  }
  return Status::ok();
}

void TcpPeerTransport::add_peer(i2o::NodeId node, const std::string& host,
                                std::uint16_t port) {
  const std::scoped_lock lock(conns_mutex_);
  config_.peers[node] = TcpPeer{host, port};
}

Status TcpPeerTransport::on_enable() { return transport_up(); }

Status TcpPeerTransport::on_halt() {
  transport_down();
  return Status::ok();
}

i2o::ParamList TcpPeerTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("listen_port", std::to_string(listen_port()));
  params.emplace_back("connections", std::to_string(connection_count()));
  const FaultStats fs = fault_stats();
  params.emplace_back("heartbeats_sent", std::to_string(fs.heartbeats_sent));
  params.emplace_back("reconnects", std::to_string(fs.reconnects));
  params.emplace_back("failed_dials", std::to_string(fs.failed_dials));
  params.emplace_back("retransmitted", std::to_string(fs.retransmitted));
  params.emplace_back("dropped_pending", std::to_string(fs.dropped_pending));
  const QosStats qs = qos_stats();
  params.emplace_back("rx_parks", std::to_string(qs.rx_parks));
  params.emplace_back("rx_shed", std::to_string(qs.rx_shed));
  params.emplace_back("tx_shed", std::to_string(qs.tx_shed));
  params.emplace_back("credit_stalls", std::to_string(qs.credit_stalls));
  {
    const std::scoped_lock lock(conns_mutex_);
    for (const auto& [node, info] : peers_) {
      params.emplace_back("peer_state." + std::to_string(node),
                          std::string(core::to_string(info.state)));
    }
  }
  return params;
}

Status TcpPeerTransport::on_transport_start() {
  auto listener = netio::TcpListener::bind(config_.listen_port);
  if (!listener.is_ok()) {
    return listener.status();
  }
  {
    const std::scoped_lock lock(conns_mutex_);
    listener_ = std::move(listener).value();
    jitter_rng_ = Rng(config_.jitter_seed);
    peers_.clear();
    conns_by_fd_.clear();
    conns_by_node_.clear();
  }
  if (Status st = listener_.set_nonblocking(true); !st.is_ok()) {
    return st;
  }
  heartbeats_sent_.store(0);
  reconnects_.store(0);
  failed_dials_.store(0);
  retransmitted_.store(0);
  dropped_pending_.store(0);
  rx_copies_.store(0);
  tx_copies_.store(0);
  rx_splices_.store(0);
  rx_parks_.store(0);
  rx_unparks_.store(0);
  rx_shed_.store(0);
  tx_shed_.store(0);
  credit_stalls_.store(0);
  credit_grants_sent_.store(0);
  credit_grants_rx_.store(0);
  pause_credit_grants_.store(false);
  corked_.store(false);
  {
    const std::scoped_lock lock(cork_mutex_);
    cork_list_.clear();
  }
  io_syscalls_.store(0);
  rx_frames_.store(0);
  tx_frames_.store(0);
  next_reactor_.store(0);
  // Backend selection. The config asks; the kernel decides. A uring
  // request degrades to epoll - never the other way - with the reason
  // logged once, so a fleet config can name uring and still roll out
  // across mixed kernels.
  netio::IoEngine::Backend backend = config_.backend;
  if (const char* env = std::getenv("XDAQ_TCP_BACKEND")) {
    if (std::string_view(env) == "uring") {
      backend = netio::IoEngine::Backend::kUring;
    } else if (std::string_view(env) == "epoll") {
      backend = netio::IoEngine::Backend::kEpoll;
    }
  }
  if (backend == netio::IoEngine::Backend::kUring) {
    std::string reason;
    if (!attached()) {
      backend = netio::IoEngine::Backend::kEpoll;
      reason = "no executive pool to register rx buffers from";
    } else if (!netio::UringEngine::supported(&reason)) {
      backend = netio::IoEngine::Backend::kEpoll;
    }
    if (backend != netio::IoEngine::Backend::kUring) {
      log_.warn("io_uring backend unavailable (", reason,
                "); falling back to epoll");
    }
  }
  const bool use_uring = backend == netio::IoEngine::Backend::kUring;
  uring_active_.store(use_uring, std::memory_order_relaxed);
  // Previous-generation shards (kept across stop so stale references stay
  // valid) are recycled here, before the new interest set is built.
  reactors_.clear();
  std::size_t nthreads = config_.reactor_threads;
  if (nthreads == 0) {
    // Accept load spread over the same shard count the executive
    // dispatches on: one reactor per dispatch shard.
    nthreads = attached() ? executive().shard_count() : 1;
  }
  nthreads = std::max<std::size_t>(1, nthreads);
  for (std::size_t i = 0; i < nthreads; ++i) {
    auto shard = std::make_unique<ReactorShard>();
    if (use_uring) {
      // Acquired before engine init so the deadlock reserve wins over the
      // buffer ring's initial slot provisioning on a tight pool.
      if (auto res = executive().pool().allocate(mem::kMaxBlockBytes);
          res.is_ok()) {
        shard->rx_reserve = std::move(res).value();
      }
      shard->engine = std::make_unique<netio::UringEngine>(executive().pool());
    } else {
      shard->engine = std::make_unique<netio::Reactor>();
    }
    if (Status st = shard->engine->init(); !st.is_ok()) {
      if (use_uring) {
        // Probe passed but this instance failed (e.g. RLIMIT_MEMLOCK or
        // fd pressure): degrade the whole transport to epoll rather than
        // run mixed-backend shards.
        log_.warn("io_uring engine init failed (", st.message(),
                  "); falling back to epoll");
        uring_active_.store(false, std::memory_order_relaxed);
        shard->rx_reserve.reset();
        shard->engine = std::make_unique<netio::Reactor>();
        if (Status st2 = shard->engine->init(); !st2.is_ok()) {
          reactors_.clear();
          return st2;
        }
        for (auto& built : reactors_) {
          built->engine->close();
          built->rx_reserve.reset();
          built->engine = std::make_unique<netio::Reactor>();
          if (Status st2 = built->engine->init(); !st2.is_ok()) {
            reactors_.clear();
            return st2;
          }
        }
      } else {
        reactors_.clear();
        return st;
      }
    }
    reactors_.push_back(std::move(shard));
  }
  log_.info("wire engine: ",
            uring_active() ? "io_uring (completion)" : "epoll (readiness)",
            " x", reactors_.size(), " shard(s)");
  // The listener lives on shard 0; accepted connections are handed out
  // round-robin in register_connection. add_poll: readable events only,
  // on both backends (an accept socket never carries data).
  if (Status st = reactors_[0]->engine->add_poll(listener_.fd());
      !st.is_ok()) {
    reactors_.clear();
    return st;
  }
  if (attached()) {
    // Pool reclaim -> re-service parked connections. The hook only fires
    // when a park armed it (armed flag), so steady-state recycles cost one
    // relaxed load. Pool *growth* re-arms too: the completion backend's
    // buffer ring can starve against a pool that then grows rather than
    // recycles, and the wake doubles as the slot re-provisioning signal.
    const auto rearm = [this] {
      for (const auto& shard : reactors_) {
        shard->rearm_parked.store(true, std::memory_order_release);
        shard->engine->wake();
      }
    };
    executive().pool().add_reclaim_listener(this, rearm);
    executive().pool().add_grow_listener(this, rearm);
  }
  for (const auto& shard : reactors_) {
    shard->thread =
        std::thread([this, s = shard.get()] { reactor_loop(*s); });
  }
  maintenance_thread_ = std::thread([this] { maintenance_loop(); });
  return Status::ok();
}

void TcpPeerTransport::on_transport_stop() {
  if (attached()) {
    executive().pool().remove_reclaim_listener(this);
    executive().pool().remove_grow_listener(this);
  }
  maintenance_cv_.notify_all();
  for (const auto& shard : reactors_) {
    shard->engine->wake();
  }
  for (const auto& shard : reactors_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
  // The shards stay allocated (their engines closed) so a sender that raced
  // shutdown and still holds a connection can call set_interest harmlessly;
  // the next transport_up recycles them.
  for (const auto& shard : reactors_) {
    shard->parked.clear();
    shard->rx_reserve.reset();
    {
      const std::scoped_lock tl(shard->tx_mutex);
      shard->tx_ready.clear();
    }
    shard->engine->close();
  }
  {
    const std::scoped_lock lock(cork_mutex_);
    cork_list_.clear();
  }
  const std::scoped_lock lock(conns_mutex_);
  listener_.close();
  conns_by_fd_.clear();
  conns_by_node_.clear();
  peers_.clear();
}

std::uint16_t TcpPeerTransport::listen_port() const {
  const std::scoped_lock lock(conns_mutex_);
  return listener_.valid() ? listener_.port() : 0;
}

std::size_t TcpPeerTransport::connection_count() const {
  const std::scoped_lock lock(conns_mutex_);
  return conns_by_fd_.size();
}

void TcpPeerTransport::append_metrics(const std::string& prefix,
                                      std::vector<obs::Sample>& out) const {
  const FaultStats fs = fault_stats();
  out.push_back({prefix + ".heartbeats_sent",
                 static_cast<std::int64_t>(fs.heartbeats_sent)});
  out.push_back({prefix + ".reconnects",
                 static_cast<std::int64_t>(fs.reconnects)});
  out.push_back({prefix + ".failed_dials",
                 static_cast<std::int64_t>(fs.failed_dials)});
  out.push_back({prefix + ".retransmitted",
                 static_cast<std::int64_t>(fs.retransmitted)});
  out.push_back({prefix + ".dropped_pending",
                 static_cast<std::int64_t>(fs.dropped_pending)});
  out.push_back({prefix + ".connections",
                 static_cast<std::int64_t>(connection_count())});
  out.push_back({prefix + ".rx_copies",
                 static_cast<std::int64_t>(
                     rx_copies_.load(std::memory_order_relaxed))});
  out.push_back({prefix + ".tx_copies",
                 static_cast<std::int64_t>(
                     tx_copies_.load(std::memory_order_relaxed))});
  out.push_back({prefix + ".rx_splices",
                 static_cast<std::int64_t>(
                     rx_splices_.load(std::memory_order_relaxed))});
  const QosStats qs = qos_stats();
  out.push_back(
      {prefix + ".rx_parks", static_cast<std::int64_t>(qs.rx_parks)});
  out.push_back(
      {prefix + ".rx_unparks", static_cast<std::int64_t>(qs.rx_unparks)});
  out.push_back({prefix + ".rx_shed", static_cast<std::int64_t>(qs.rx_shed)});
  out.push_back({prefix + ".tx_shed", static_cast<std::int64_t>(qs.tx_shed)});
  out.push_back({prefix + ".credit_stalls",
                 static_cast<std::int64_t>(qs.credit_stalls)});
  out.push_back({prefix + ".credit_grants_sent",
                 static_cast<std::int64_t>(qs.credit_grants_sent)});
  out.push_back({prefix + ".credit_grants_rx",
                 static_cast<std::int64_t>(qs.credit_grants_rx)});
  const IoStats is = io_stats();
  out.push_back({prefix + ".wake_coalesced",
                 static_cast<std::int64_t>(is.wake_coalesced)});
  out.push_back({prefix + ".io_syscalls",
                 static_cast<std::int64_t>(is.io_syscalls +
                                           is.engine_entries)});
  // Gauge: total kernel transitions per thousand wire frames (rx + tx).
  // The headline the io_uring path moves - multishot recv plus batched
  // submission push it toward the floor of one enter per burst.
  out.push_back({prefix + ".syscalls_per_kframe",
                 static_cast<std::int64_t>(is.syscalls_per_frame() * 1000.0)});
  out.push_back({prefix + ".uring.active",
                 static_cast<std::int64_t>(is.uring ? 1 : 0)});
  if (is.uring) {
    out.push_back({prefix + ".uring.enter_calls",
                   static_cast<std::int64_t>(is.uring_stats.enter_calls)});
    out.push_back({prefix + ".uring.sqe_batches",
                   static_cast<std::int64_t>(is.uring_stats.sqe_batches)});
    out.push_back({prefix + ".uring.sqes_submitted",
                   static_cast<std::int64_t>(is.uring_stats.sqes_submitted)});
    out.push_back(
        {prefix + ".uring.multishot_rearms",
         static_cast<std::int64_t>(is.uring_stats.multishot_rearms)});
    out.push_back(
        {prefix + ".uring.registered_buffer_hits",
         static_cast<std::int64_t>(is.uring_stats.registered_buffer_hits)});
    out.push_back(
        {prefix + ".uring.buffer_starvations",
         static_cast<std::int64_t>(is.uring_stats.buffer_starvations)});
    out.push_back({prefix + ".uring.slot_refills",
                   static_cast<std::int64_t>(is.uring_stats.slot_refills)});
  }
}

TcpPeerTransport::IoStats TcpPeerTransport::io_stats() const {
  IoStats s;
  s.uring = uring_active();
  s.io_syscalls = io_syscalls_.load(std::memory_order_relaxed);
  s.rx_frames = rx_frames_.load(std::memory_order_relaxed);
  s.tx_frames = tx_frames_.load(std::memory_order_relaxed);
  for (const auto& shard : reactors_) {
    s.engine_entries += shard->engine->kernel_entries();
    s.wake_coalesced += shard->engine->wakes_coalesced();
    if (s.uring) {
      const auto* ue =
          dynamic_cast<const netio::UringEngine*>(shard->engine.get());
      if (ue != nullptr) {
        const netio::UringStats us = ue->stats();
        s.uring_stats.enter_calls += us.enter_calls;
        s.uring_stats.sqe_batches += us.sqe_batches;
        s.uring_stats.sqes_submitted += us.sqes_submitted;
        s.uring_stats.multishot_rearms += us.multishot_rearms;
        s.uring_stats.registered_buffer_hits += us.registered_buffer_hits;
        s.uring_stats.buffer_starvations += us.buffer_starvations;
        s.uring_stats.slot_refills += us.slot_refills;
      }
    }
  }
  return s;
}

TcpPeerTransport::FaultStats TcpPeerTransport::fault_stats() const {
  FaultStats fs;
  fs.heartbeats_sent = heartbeats_sent_.load();
  fs.reconnects = reconnects_.load();
  fs.failed_dials = failed_dials_.load();
  fs.retransmitted = retransmitted_.load();
  fs.dropped_pending = dropped_pending_.load();
  return fs;
}

TcpPeerTransport::QosStats TcpPeerTransport::qos_stats() const {
  QosStats qs;
  qs.rx_parks = rx_parks_.load(std::memory_order_relaxed);
  qs.rx_unparks = rx_unparks_.load(std::memory_order_relaxed);
  qs.rx_shed = rx_shed_.load(std::memory_order_relaxed);
  qs.tx_shed = tx_shed_.load(std::memory_order_relaxed);
  qs.credit_stalls = credit_stalls_.load(std::memory_order_relaxed);
  qs.credit_grants_sent =
      credit_grants_sent_.load(std::memory_order_relaxed);
  qs.credit_grants_rx = credit_grants_rx_.load(std::memory_order_relaxed);
  return qs;
}

core::PeerState TcpPeerTransport::peer_state(i2o::NodeId node) const {
  const std::scoped_lock lock(conns_mutex_);
  const auto it = peers_.find(node);
  return it == peers_.end() ? core::PeerState::Unknown : it->second.state;
}

void TcpPeerTransport::disrupt_peer(i2o::NodeId node) {
  // Sever (not close) every connection to the node: the fd stays valid so
  // the reactor observes EOF/EPIPE instead of racing a reused descriptor,
  // and the normal failure path (Suspect, redial) takes over.
  const std::scoped_lock lock(conns_mutex_);
  for (const auto& [fd, conn] : conns_by_fd_) {
    if (conn->node.load(std::memory_order_relaxed) == node) {
      conn->stream.shutdown();
    }
  }
}

TcpPeerTransport::Transition TcpPeerTransport::set_state_locked(
    i2o::NodeId node, core::PeerState to) {
  Transition t;
  auto& info = peers_[node];
  t.node = node;
  t.from = info.state;
  t.to = to;
  info.state = to;
  if (to == core::PeerState::Up) {
    info.dial_attempts = 0;
  }
  if (to == core::PeerState::Down && !info.queued.empty()) {
    // Down drops the retransmit queue: callers were promised delivery only
    // across a successful reconnect, and the executive synthesizes FAIL
    // replies for whatever was in flight.
    dropped_pending_.fetch_add(info.queued.size());
    info.queued.clear();
  }
  return t;
}

void TcpPeerTransport::fire(const Transition& t) {
  if (!t.fired()) {
    return;
  }
  log_.info("peer ", t.node, ": ", core::to_string(t.from), " -> ",
            core::to_string(t.to));
  notify_peer_state(t.node, t.from, t.to);
}

Status TcpPeerTransport::send_hello(Connection& conn) {
  std::array<std::byte, kHelloBytes> hello{};
  i2o::put_u32(hello, 0, kHelloMagic);
  i2o::put_u16(hello, 4, executive().node_id());
  return conn.stream.write_all(hello);
}

Result<std::shared_ptr<TcpPeerTransport::Connection>> TcpPeerTransport::dial(
    i2o::NodeId node, const TcpPeer& peer) {
  auto stream = netio::TcpStream::connect(peer.host, peer.port);
  if (!stream.is_ok()) {
    return stream.status();
  }
  (void)stream.value().set_nodelay(true);
  auto conn = std::make_shared<Connection>();
  conn->stream = std::move(stream).value();
  conn->node.store(node, std::memory_order_relaxed);
  conn->credits = transport_config().credit_window;
  const std::int64_t now = steady_ns();
  conn->last_rx_ns.store(now, std::memory_order_relaxed);
  conn->last_tx_ns.store(now, std::memory_order_relaxed);
  if (Status st = send_hello(*conn); !st.is_ok()) {
    return st;
  }
  return conn;
}

void TcpPeerTransport::register_connection(
    const std::shared_ptr<Connection>& conn) {
  {
    const std::scoped_lock lock(conns_mutex_);
    if (reactors_.empty()) {
      return;  // shutting down; RAII closes the socket
    }
    conn->reactor_idx = next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                        static_cast<std::uint32_t>(reactors_.size());
    conns_by_fd_[conn->stream.fd()] = conn;
    const auto node = conn->node.load(std::memory_order_relaxed);
    if (node != i2o::kNullNode) {
      conns_by_node_.emplace(node, conn);
    }
  }
  // Index entries must exist before the fd can fire: the reactor routes a
  // ready event through conns_by_fd_.
  (void)reactors_[conn->reactor_idx]->engine->add(conn->stream.fd(), true,
                                                  false);
}

Result<std::shared_ptr<TcpPeerTransport::Connection>>
TcpPeerTransport::connection_to(i2o::NodeId node) {
  TcpPeer peer;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = conns_by_node_.find(node);
    if (it != conns_by_node_.end()) {
      return it->second;
    }
    const auto ep = config_.peers.find(node);
    if (ep == config_.peers.end()) {
      return {Errc::Unroutable, "no TCP endpoint configured for node"};
    }
    peer = ep->second;
  }
  // Dial and handshake unlocked: a slow or unreachable peer must not block
  // sends to other nodes behind the registry mutex.
  auto dialed = dial(node, peer);
  if (!dialed.is_ok()) {
    return dialed.status();
  }
  auto conn = std::move(dialed).value();
  Transition t;
  {
    const std::scoped_lock lock(conns_mutex_);
    // Another sender may have dialed the same node while we were
    // connecting; keep theirs and drop our socket (RAII closes it).
    const auto it = conns_by_node_.find(node);
    if (it != conns_by_node_.end()) {
      return it->second;
    }
    if (reactors_.empty()) {
      return {Errc::FailedPrecondition, "TCP transport not enabled"};
    }
    conn->reactor_idx = next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                        static_cast<std::uint32_t>(reactors_.size());
    conns_by_fd_[conn->stream.fd()] = conn;
    conns_by_node_.emplace(node, conn);
    t = set_state_locked(node, core::PeerState::Up);
  }
  (void)reactors_[conn->reactor_idx]->engine->add(conn->stream.fd(), true,
                                                  false);
  fire(t);
  return conn;
}

void TcpPeerTransport::set_interest(Connection& conn,
                                    std::optional<bool> read,
                                    std::optional<bool> write) {
  const std::scoped_lock lock(conn.interest_mutex);
  const bool r = read.value_or(conn.want_read);
  const bool w = write.value_or(conn.want_write);
  if (r == conn.want_read && w == conn.want_write) {
    return;
  }
  conn.want_read = r;
  conn.want_write = w;
  if (conn.reactor_idx < reactors_.size()) {
    // Failure is benign: the fd was already deregistered by a concurrent
    // drop (or the transport stopped) and will never fire again anyway.
    (void)reactors_[conn.reactor_idx]->engine->mod(conn.stream.fd(), r, w);
  }
}

void TcpPeerTransport::refill_flush_buf_locked(Connection& conn) {
  const std::uint32_t window = transport_config().credit_window;
  // Refill the writer-owned batch from pending, spending one credit per
  // data entry (control frames, heartbeats and grants ride for free).
  while (!conn.pending.empty()) {
    PendingSend& head = conn.pending.front();
    if (window > 0 && head.data) {
      if (conn.credits == 0) {
        // The data prefix is credit-stalled, but exempt entries queued
        // behind it (heartbeats, credit grants) must still go out - a
        // stalled sender that cannot heartbeat would look dead to the
        // very receiver whose grant is supposed to revive it.
        for (auto it = conn.pending.begin(); it != conn.pending.end();) {
          if (it->data) {
            ++it;
            continue;
          }
          conn.flush_bytes += it->wire_bytes();
          conn.flush_buf.push_back(std::move(*it));
          it = conn.pending.erase(it);
        }
        return;
      }
      --conn.credits;
    }
    conn.flush_bytes += head.wire_bytes();
    conn.flush_buf.push_back(std::move(head));
    conn.pending.pop_front();
  }
}

void TcpPeerTransport::retire_flushed_locked(Connection& conn) noexcept {
  // Retire fully accepted head entries: their FrameRefs drop back to the
  // pool now, and the next gather starts near the front.
  while (!conn.flush_buf.empty()) {
    const std::size_t head_bytes = conn.flush_buf.front().wire_bytes();
    if (conn.flush_off < head_bytes) {
      break;
    }
    conn.flush_off -= head_bytes;
    conn.flush_bytes -= head_bytes;
    conn.flush_buf.pop_front();
    tx_frames_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpPeerTransport::gather_iov_locked(Connection& conn) {
  // flush_buf is writer-owned, so the socket write needs no lock and
  // other senders keep appending to pending meanwhile. Bodies go to the
  // wire straight from wherever they live (pooled frame memory for the
  // zero-copy path) - the gathered iovec list is the only thing built.
  conn.iov_parts.clear();
  for (const PendingSend& e : conn.flush_buf) {
    conn.iov_parts.emplace_back(e.prefix.data(), e.prefix.size());
    const auto body = e.body();
    if (!body.empty()) {
      conn.iov_parts.push_back(body);
    }
  }
}

Status TcpPeerTransport::flush_pending(Connection& conn,
                                       std::unique_lock<std::mutex>& lk) {
  for (;;) {
    refill_flush_buf_locked(conn);
    if (conn.flush_buf.empty()) {
      if (!conn.pending.empty() && !conn.credit_stalled) {
        // Out of credits with frames queued: stall (queue intact, no
        // thread blocked). apply_credit_grant restarts the drain.
        conn.credit_stalled = true;
        credit_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    gather_iov_locked(conn);
    lk.unlock();
    io_syscalls_.fetch_add(1, std::memory_order_relaxed);
    auto wrote = conn.stream.write_vec_some(conn.iov_parts, conn.flush_off);
    lk.lock();
    if (!wrote.is_ok()) {
      if (wrote.status().code() == Errc::Timeout) {
        // Kernel buffer full: arm write interest and hand the rest of the
        // drain to the reactor. No sender thread ever blocks on a slow
        // consumer.
        set_interest(conn, std::nullopt, true);
        return Status::ok();
      }
      conn.pending.clear();  // connection is dead; drop queued sends
      conn.flush_buf.clear();
      conn.pending_bytes = 0;
      conn.flush_off = 0;
      conn.flush_bytes = 0;
      return wrote.status();
    }
    conn.pending_bytes -= wrote.value();
    conn.flush_off += wrote.value();
    conn.last_tx_ns.store(steady_ns(), std::memory_order_relaxed);
    retire_flushed_locked(conn);
    if (conn.flush_buf.empty() && conn.pending.empty()) {
      break;
    }
    // A partial head (or a capped iovec batch) loops: the retry either
    // makes progress or comes back as Timeout above.
  }
  // Fully drained (or credit-stalled with nothing in flight): write
  // readiness is no longer interesting.
  set_interest(conn, std::nullopt, false);
  return Status::ok();
}

Status TcpPeerTransport::write_entry(const std::shared_ptr<Connection>& conn,
                                     PendingSend entry,
                                     std::size_t wire_bytes,
                                     unsigned shed_priority) {
  std::unique_lock lk(conn->write_mutex);
  const std::size_t cap = transport_config().tx_buffer_bytes;
  // The backlog alone decides: a frame is never refused for its own size
  // (an idle connection accepts any frame the transport accepts), only
  // for the unsent bytes already queued ahead of it.
  if (cap > 0 && shed_priority > 0 &&
      conn->pending_bytes >= core::shed_threshold(cap, shed_priority)) {
    // Overload shedding, not failure: the connection stays up, the caller
    // sees ResourceExhausted. Priority 0 (heartbeats, credit grants) is
    // exempt - shedding those would wedge liveness or flow control, and
    // their volume is bounded by the tick rate.
    tx_shed_.fetch_add(1, std::memory_order_relaxed);
    return {Errc::ResourceExhausted, "tx queue full (overload shed)"};
  }
  conn->pending.push_back(std::move(entry));
  conn->pending_bytes += wire_bytes;
  if (conn->writer_active) {
    // The active writer gathers it into its batch (errors on piggybacked
    // sends surface as a dropped connection, like any wire loss).
    return Status::ok();
  }
  if (wire_bytes <= config_.coalesce_bytes && attached() &&
      executive().dispatch_active()) {
    // Handler send mid-dispatch-batch: cork it. The executive's
    // end-of-batch transport_flush() (or the maintenance tick, if this
    // send raced the tail of the batch) puts it on the wire in one
    // gathered syscall - one sendmsg on epoll, one SQE inside the
    // shard's single io_uring_enter on uring - with the rest of the
    // batch's replies.
    if (!conn->cork_listed) {
      conn->cork_listed = true;
      const std::scoped_lock cl(cork_mutex_);
      cork_list_.push_back(conn);
    }
    corked_.store(true, std::memory_order_release);
    return Status::ok();
  }
  if (uring_active()) {
    // Completion backend: SQE submission is engine-thread-only, so the
    // sender hands the queue to the owning shard (coalesced wake) instead
    // of draining it here. Wire errors surface asynchronously as a
    // dropped connection, exactly like piggybacked sends on epoll.
    lk.unlock();
    enlist_tx(conn);
    return Status::ok();
  }
  conn->writer_active = true;
  const Status st = flush_pending(*conn, lk);
  conn->writer_active = false;
  return st;
}

void TcpPeerTransport::on_transport_flush() {
  if (!corked_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Only connections that actually corked something are visited, so the
  // end-of-batch flush costs O(dirty), not O(connections).
  std::vector<std::shared_ptr<Connection>> dirty;
  {
    const std::scoped_lock lock(cork_mutex_);
    dirty.swap(cork_list_);
  }
  const bool uring = uring_active();
  for (const auto& conn : dirty) {
    std::unique_lock lk(conn->write_mutex);
    conn->cork_listed = false;
    if (conn->pending.empty() || conn->writer_active) {
      continue;  // nothing corked here, or an active writer drains it
    }
    if (uring) {
      // The shard's engine thread gathers the corked batch into one SQE
      // and its pump publishes every dirty conn with one io_uring_enter.
      lk.unlock();
      enlist_tx(conn);
      continue;
    }
    conn->writer_active = true;
    const Status st = flush_pending(*conn, lk);
    conn->writer_active = false;
    lk.unlock();
    if (!st.is_ok()) {
      drop_connection(conn);
    }
  }
}

Status TcpPeerTransport::send_heartbeat(
    const std::shared_ptr<Connection>& conn) {
  PendingSend hb;
  i2o::put_u32(hb.prefix, 0, kHeartbeatLen);
  const Status st = write_entry(conn, std::move(hb), hb.prefix.size(), 0);
  if (st.is_ok()) {
    heartbeats_sent_.fetch_add(1);
  }
  return st;
}

Status TcpPeerTransport::write_frame(const std::shared_ptr<Connection>& conn,
                                     std::vector<std::byte> frame) {
  PendingSend entry;
  i2o::put_u32(entry.prefix, 0, static_cast<std::uint32_t>(frame.size()));
  const std::size_t wire_bytes = entry.prefix.size() + frame.size();
  const bool control = is_control_frame(frame);
  entry.data = !control;
  entry.owned = std::move(frame);
  return write_entry(conn, std::move(entry), wire_bytes,
                     control ? static_cast<unsigned>(i2o::kControlPriority)
                             : static_cast<unsigned>(i2o::kDefaultPriority));
}

Status TcpPeerTransport::apply_credit_grant(
    const std::shared_ptr<Connection>& conn, std::uint32_t count) {
  std::unique_lock lk(conn->write_mutex);
  credit_grants_rx_.fetch_add(1, std::memory_order_relaxed);
  conn->credits += count;
  conn->credit_stalled = false;
  if (uring_active()) {
    // A grant arriving mid-parse re-lists the connection; the same
    // engine-loop iteration's pump picks the fresh credits up, so a
    // credit-stall resume joins the current submission batch.
    const bool work = !conn->pending.empty() || !conn->flush_buf.empty();
    lk.unlock();
    if (work) {
      enlist_tx(conn);
    }
    return Status::ok();
  }
  if (conn->writer_active || conn->pending.empty()) {
    return Status::ok();  // an active writer picks the credits up itself
  }
  conn->writer_active = true;
  const Status st = flush_pending(*conn, lk);
  conn->writer_active = false;
  return st;
}

void TcpPeerTransport::maybe_send_grant(
    const std::shared_ptr<Connection>& conn) {
  const std::uint32_t window = transport_config().credit_window;
  if (window == 0 || conn->grant_debt == 0) {
    return;
  }
  if (conn->grant_debt < std::max<std::uint32_t>(1, window / 2)) {
    return;  // grant at half-window granularity, not per frame
  }
  if (pause_credit_grants_.load(std::memory_order_relaxed)) {
    return;  // test hook: starve the peer of credits
  }
  PendingSend grant;
  i2o::put_u32(grant.prefix, 0, kCreditGrantLen);
  grant.owned.resize(4);
  i2o::put_u32(grant.owned, 0, conn->grant_debt);
  conn->grant_debt = 0;
  if (write_entry(conn, std::move(grant), kCreditGrantBytes, 0).is_ok()) {
    credit_grants_sent_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpPeerTransport::drop_connection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead.exchange(true, std::memory_order_acq_rel)) {
    return;  // another thread already dropped it
  }
  // Deregister first so the reactor cannot see new events for the fd, then
  // sever. The shared_ptr keeps the fd alive (and thus un-reused) until
  // every in-flight reference is gone.
  if (conn->reactor_idx < reactors_.size()) {
    (void)reactors_[conn->reactor_idx]->engine->del(conn->stream.fd());
  }
  conn->stream.shutdown();
  Transition t;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto fit = conns_by_fd_.find(conn->stream.fd());
    if (fit != conns_by_fd_.end() && fit->second == conn) {
      conns_by_fd_.erase(fit);
    }
    const i2o::NodeId node = conn->node.load(std::memory_order_relaxed);
    if (node != i2o::kNullNode) {
      const auto nit = conns_by_node_.find(node);
      if (nit != conns_by_node_.end() && nit->second == conn) {
        conns_by_node_.erase(nit);
      }
    }
    if (node == i2o::kNullNode ||
        transport_config().heartbeat_interval.count() <= 0) {
      return;  // never identified, or liveness disabled (seed behaviour)
    }
    if (config_.peers.find(node) == config_.peers.end()) {
      // No endpoint to redial (e.g. we are the accepting side): the peer
      // is gone until it dials back in. Declare it Down right away.
      t = set_state_locked(node, core::PeerState::Down);
    } else {
      auto& info = peers_[node];
      if (info.state != core::PeerState::Down) {
        t = set_state_locked(node, core::PeerState::Suspect);
      }
      info.dial_attempts = 0;
      info.next_dial_ns =
          steady_ns() +
          core::backoff_delay(transport_config(), 1, jitter_rng_.next())
              .count();
    }
  }
  fire(t);
}

void TcpPeerTransport::retransmit_queued(
    i2o::NodeId node, const std::shared_ptr<Connection>& conn) {
  std::deque<std::vector<std::byte>> queued;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = peers_.find(node);
    if (it == peers_.end() || it->second.queued.empty()) {
      return;
    }
    queued.swap(it->second.queued);
  }
  const std::size_t count = queued.size();
  for (auto& frame : queued) {
    // The queue owned the bytes already; moving them into the entry keeps
    // the retransmit copy-free.
    if (Status st = write_frame(conn, std::move(frame)); !st.is_ok()) {
      if (st.code() == Errc::ResourceExhausted) {
        continue;  // shed, not a dead wire; the connection stays up
      }
      log_.warn("retransmit to peer ", node, " failed: ", st.message());
      drop_connection(conn);
      return;
    }
    retransmitted_.fetch_add(1);
  }
  log_.info("retransmitted ", count, " queued frame(s) to peer ", node);
}

Status TcpPeerTransport::transport_send(i2o::NodeId dst,
                                        std::span<const std::byte> frame) {
  return send_common(dst, frame, {});
}

Status TcpPeerTransport::transport_send_frame(i2o::NodeId dst,
                                              mem::FrameRef frame) {
  if (!config_.zero_copy) {
    return transport_send(dst, frame.bytes());  // ablation: copy arm
  }
  const std::span<const std::byte> body = frame.bytes();
  return send_common(dst, body, std::move(frame));
}

Status TcpPeerTransport::send_common(i2o::NodeId dst,
                                     std::span<const std::byte> frame,
                                     mem::FrameRef ref) {
  if (!transport_running()) {
    return {Errc::FailedPrecondition, "TCP transport not enabled"};
  }
  if (frame.size() > config_.max_frame_bytes) {
    return {Errc::InvalidArgument, "frame exceeds TCP transport maximum"};
  }
  const bool control = is_control_frame(frame);
  // Liveness gate: Down fails fast; Suspect queues control-plane frames
  // for retransmission after the reconnect and refuses data frames.
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = peers_.find(dst);
    if (it != peers_.end()) {
      if (it->second.state == core::PeerState::Down) {
        return {Errc::Unavailable,
                "peer " + std::to_string(dst) + " is down"};
      }
      if (it->second.state == core::PeerState::Suspect) {
        if (!control) {
          return {Errc::Unavailable,
                  "peer " + std::to_string(dst) +
                      " is suspect; data frame not queued"};
        }
        if (it->second.queued.size() >= transport_config().pending_depth) {
          return {Errc::Unavailable,
                  "pending queue full for peer " + std::to_string(dst)};
        }
        it->second.queued.emplace_back(frame.begin(), frame.end());
        return Status::ok();
      }
    }
  }
  // Hold a shared reference so a concurrent disconnect cannot free the
  // connection under us.
  auto found = connection_to(dst);
  if (!found.is_ok()) {
    if (found.status().code() == Errc::Unroutable) {
      return found.status();
    }
    // First dial failed: mark the peer Suspect (the maintenance thread
    // takes over redialing) and queue control frames like any other
    // Suspect-window send.
    Transition t;
    bool queued = false;
    const bool liveness = transport_config().heartbeat_interval.count() > 0;
    if (liveness) {
      const std::scoped_lock lock(conns_mutex_);
      auto& info = peers_[dst];
      if (info.state != core::PeerState::Suspect &&
          info.state != core::PeerState::Down) {
        t = set_state_locked(dst, core::PeerState::Suspect);
        info.dial_attempts = 1;
        failed_dials_.fetch_add(1);
        info.next_dial_ns =
            steady_ns() +
            core::backoff_delay(transport_config(), 1, jitter_rng_.next())
                .count();
      }
      if (info.state == core::PeerState::Suspect && control &&
          info.queued.size() < transport_config().pending_depth) {
        info.queued.emplace_back(frame.begin(), frame.end());
        queued = true;
      }
    }
    fire(t);
    if (queued) {
      return Status::ok();
    }
    return {Errc::Unavailable, std::string(found.status().message())};
  }
  auto conn = std::move(found).value();
  PendingSend entry;
  i2o::put_u32(entry.prefix, 0, static_cast<std::uint32_t>(frame.size()));
  const std::size_t wire_bytes = entry.prefix.size() + frame.size();
  entry.data = !control;
  if (ref.valid()) {
    // Zero-copy: the queue holds the live reference; the writer gathers
    // the body straight from pooled memory.
    entry.frame = std::move(ref);
  } else {
    entry.owned.assign(frame.begin(), frame.end());
    tx_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  const unsigned prio = control
                            ? static_cast<unsigned>(i2o::kControlPriority)
                            : static_cast<unsigned>(i2o::kDefaultPriority);
  if (Status st = write_entry(conn, std::move(entry), wire_bytes, prio);
      !st.is_ok()) {
    if (st.code() == Errc::ResourceExhausted) {
      return st;  // overload shed: the connection is fine, the send is not
    }
    drop_connection(conn);
    return {Errc::Unavailable,
            "send to peer " + std::to_string(dst) + " failed: " +
                std::string(st.message())};
  }
  return Status::ok();
}

bool TcpPeerTransport::shed_inbound(std::span<const std::byte> frame,
                                    bool control) {
  const std::size_t limit = transport_config().admission_limit;
  if (limit == 0 || frame.size() < 8 || !attached()) {
    return false;
  }
  // Word 1 carries the target TiD in its low 12 bits; the backlog of that
  // TiD's dispatch shard is the admission signal.
  const std::uint32_t w1 = i2o::get_u32(frame, 4);
  const auto target = static_cast<i2o::Tid>(w1 & i2o::kMaxTid);
  const unsigned prio = control
                            ? static_cast<unsigned>(i2o::kControlPriority)
                            : static_cast<unsigned>(i2o::kDefaultPriority);
  if (executive().dispatch_backlog(target) <
      core::shed_threshold(limit, prio)) {
    return false;
  }
  rx_shed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TcpPeerTransport::ServiceResult TcpPeerTransport::service_connection(
    const std::shared_ptr<Connection>& conn) {
  Connection& c = *conn;
  if (!config_.zero_copy) {
    const ServiceResult r = service_connection_legacy(c);
    if (r == ServiceResult::kOk) {
      maybe_send_grant(conn);
    }
    return r;
  }
  // Zero-copy receive: the kernel writes straight into a pooled block;
  // complete frames are handed to the executive as views of that block
  // (no per-frame allocation, no memcpy). The block is rolled only when
  // its writable tail runs out - a partial frame straddling the roll pays
  // the one splice copy.
  c.rx_block_wanted = false;
  bool got_bytes = false;
  for (;;) {
    if (!c.rx_block.valid() && !roll_rx_block(c, /*need_hint=*/kReadChunk)) {
      break;  // pool exhausted: park below
    }
    auto tail = c.rx_block.bytes().subspan(c.rx_filled);
    if (tail.empty()) {
      if (!roll_rx_block(c, /*need_hint=*/kReadChunk)) {
        break;
      }
      tail = c.rx_block.bytes().subspan(c.rx_filled);
    }
    io_syscalls_.fetch_add(1, std::memory_order_relaxed);
    auto n = c.stream.read_available(tail);
    if (!n.is_ok()) {
      if (n.status().code() == Errc::Timeout) {
        break;  // kernel buffer drained
      }
      return ServiceResult::kDrop;  // EOF or error
    }
    got_bytes = true;
    c.rx_filled += n.value();
    if (!parse_rx_block(c, conn)) {
      return ServiceResult::kDrop;
    }
    if (c.rx_block_wanted) {
      break;  // a straddle roll failed mid-parse: park below
    }
    if (n.value() < tail.size()) {
      break;  // short read; any rest re-wakes us (level-triggered)
    }
  }
  if (got_bytes) {
    c.last_rx_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  maybe_send_grant(conn);
  if (c.rx_block_wanted) {
    // Pool exhausted: the caller disarms read interest instead of letting
    // the level-triggered readiness spin the reactor; a pool reclaim
    // re-arms it.
    return ServiceResult::kParked;
  }
  // Quiescent and fully parsed: hand the block back so the pool drains to
  // zero outstanding between bursts (undelivered views may still pin it).
  // The next burst grabs a fresh block - a lock-free or one-mutex pool hit
  // per wakeup, amortized over the whole burst.
  if (c.rx_block.valid() && c.rx_consumed == c.rx_filled) {
    c.rx_block.reset();
    c.rx_filled = 0;
    c.rx_consumed = 0;
  }
  return ServiceResult::kOk;
}

bool TcpPeerTransport::parse_rx_block(
    Connection& conn, const std::shared_ptr<Connection>& self) {
  const std::uint32_t window = transport_config().credit_window;
  for (;;) {
    // Discard phase for frames too large for any pool block.
    if (conn.rx_skip > 0) {
      const std::size_t take =
          std::min(conn.rx_skip, conn.rx_filled - conn.rx_consumed);
      conn.rx_consumed += take;
      conn.rx_skip -= take;
      if (conn.rx_skip > 0) {
        return true;  // rest of the oversized frame still in flight
      }
      continue;
    }
    const std::size_t avail = conn.rx_filled - conn.rx_consumed;
    const std::byte* base = conn.rx_block.bytes().data() + conn.rx_consumed;
    if (conn.node.load(std::memory_order_relaxed) == i2o::kNullNode) {
      // First bytes on an accepted connection must be the hello.
      if (avail < kHelloBytes) {
        return true;
      }
      const std::span<const std::byte> hello(base, kHelloBytes);
      if (i2o::get_u32(hello, 0) != kHelloMagic) {
        log_.warn("rejecting connection with bad hello magic");
        return false;
      }
      conn.node.store(i2o::get_u16(hello, 4), std::memory_order_relaxed);
      conn.rx_consumed += kHelloBytes;
      {
        // Index by node NOW, not at end-of-service: a handler on a
        // dispatch shard may reply to a frame from this very burst before
        // the service pass finishes, and that reply routes through
        // conns_by_node_.
        const std::scoped_lock lock(conns_mutex_);
        conns_by_node_.emplace(conn.node.load(std::memory_order_relaxed),
                               self);
      }
      continue;
    }
    if (avail < 4) {
      return true;
    }
    const std::uint32_t len =
        i2o::get_u32(std::span<const std::byte>(base, 4), 0);
    if (len == kHeartbeatLen) {
      conn.rx_consumed += 4;  // liveness ping; last_rx_ns stamped by caller
      continue;
    }
    if (len == kCreditGrantLen) {
      if (avail < kCreditGrantBytes) {
        return true;  // count still in flight
      }
      const std::uint32_t count = i2o::get_u32(
          std::span<const std::byte>(base, kCreditGrantBytes), 4);
      conn.rx_consumed += kCreditGrantBytes;
      if (!apply_credit_grant(self, count).is_ok()) {
        return false;  // the restarted drain hit a dead wire
      }
      continue;
    }
    if (len == 0 || len > config_.max_frame_bytes) {
      log_.warn("dropping connection announcing bad frame length ", len);
      return false;
    }
    const std::size_t need = 4 + static_cast<std::size_t>(len);
    if (need > mem::kMaxBlockBytes) {
      // No pool block can carry it; skip the body as it streams past
      // (the copying path could not deliver such a frame either - its
      // pool allocation failed).
      log_.warn("discarding frame of ", len, " bytes (exceeds pool block)");
      conn.rx_consumed += 4;
      conn.rx_skip = len;
      continue;
    }
    if (avail < need) {
      // Frame still in flight. If it can never complete in this block's
      // remaining bytes, splice the partial tail to a fresh block now (a
      // failed roll flags rx_block_wanted and the caller parks).
      if (conn.rx_consumed + need > conn.rx_block.size()) {
        (void)roll_rx_block(conn, need);
      }
      return true;
    }
    const std::span<const std::byte> fb(base + 4, len);
    const bool control = is_control_frame(fb);
    if (window > 0 && !control) {
      // One credit consumed per data frame; granted back at half-window
      // granularity from maybe_send_grant. Shed frames count too - the
      // transport did consume them off the wire.
      ++conn.grant_debt;
    }
    if (!shed_inbound(fb, control)) {
      mem::FrameRef view = conn.rx_block.view(conn.rx_consumed + 4, len);
      rx_frames_.fetch_add(1, std::memory_order_relaxed);
      (void)executive().deliver_from_wire(
          conn.node.load(std::memory_order_relaxed), tid(), std::move(view),
          rdtsc());
    }
    conn.rx_consumed += need;
  }
}

bool TcpPeerTransport::roll_rx_block(Connection& conn,
                                     std::size_t need_hint) {
  const std::size_t tail_bytes =
      conn.rx_block.valid() ? conn.rx_filled - conn.rx_consumed : 0;
  // Full-size blocks: 4x fewer rolls (and splices, and pool hits) than
  // kReadChunk-sized ones, and recv can drain up to the whole block in
  // one syscall. The block is released at burst quiescence either way.
  const std::size_t want = std::max<std::size_t>(
      mem::kMaxBlockBytes, std::max(need_hint, tail_bytes));
  auto fresh = executive().pool().allocate(std::min(want,
                                                    mem::kMaxBlockBytes));
  if (!fresh.is_ok()) {
    // Arm the reclaim hook BEFORE the final retry: a block recycled after
    // the arm re-wakes the reactor shards, so the park that follows a
    // failed retry cannot miss the release that would have satisfied it.
    executive().pool().arm_reclaim();
    fresh = executive().pool().allocate(std::min(want, mem::kMaxBlockBytes));
  }
  if (!fresh.is_ok()) {
    // The max-size ask above is a throughput choice; under pool pressure
    // it must not become a liveness one. Retry at the exact bytes the
    // straddling frame needs (its length prefix is in the tail once four
    // bytes have arrived) so a recycled smaller block can carry the parse
    // forward.
    std::uint64_t exact = tail_bytes + sizeof(std::uint32_t);
    if (tail_bytes >= sizeof(std::uint32_t)) {
      exact = sizeof(std::uint32_t) +
              static_cast<std::uint64_t>(i2o::get_u32(
                  conn.rx_block.bytes().subspan(conn.rx_consumed), 0));
    }
    const auto ask = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::max<std::uint64_t>(exact, tail_bytes + 1), mem::kMaxBlockBytes));
    if (ask < want) {
      fresh = executive().pool().allocate(ask);
    }
  }
  mem::FrameRef block;
  if (fresh.is_ok()) {
    block = std::move(fresh).value();
  } else if (conn.reactor_idx < reactors_.size() &&
             reactors_[conn.reactor_idx]->rx_reserve.valid()) {
    // Completion backend under total pool consumption: every free block
    // may be pinned behind this very roll (ring slots + parked backlog),
    // so the reclaim armed above could never fire. Absorb through the
    // shard reserve; the backlog block this releases re-primes the pool
    // and unpark_all re-arms the reserve from it.
    block = std::move(reactors_[conn.reactor_idx]->rx_reserve);
  } else {
    conn.rx_block_wanted = true;
    return false;
  }
  if (tail_bytes > 0) {
    // A partial frame straddles the block boundary: the one splice copy
    // of the zero-copy pipeline.
    std::memcpy(block.bytes().data(),
                conn.rx_block.bytes().data() + conn.rx_consumed, tail_bytes);
    rx_splices_.fetch_add(1, std::memory_order_relaxed);
    rx_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  conn.rx_block = std::move(block);
  conn.rx_filled = tail_bytes;
  conn.rx_consumed = 0;
  return true;
}

TcpPeerTransport::ServiceResult TcpPeerTransport::service_connection_legacy(
    Connection& conn) {
  // Pull everything the kernel has buffered, then parse every complete
  // message. One reactor wakeup therefore delivers a whole burst instead
  // of one frame.
  const std::uint32_t window = transport_config().credit_window;
  std::array<std::byte, kReadChunk> chunk;
  bool got_bytes = false;
  for (;;) {
    io_syscalls_.fetch_add(1, std::memory_order_relaxed);
    auto n = conn.stream.read_available(chunk);
    if (!n.is_ok()) {
      if (n.status().code() == Errc::Timeout) {
        break;  // kernel buffer drained
      }
      return ServiceResult::kDrop;  // EOF or error
    }
    got_bytes = true;
    conn.rx.insert(conn.rx.end(), chunk.begin(), chunk.begin() + n.value());
    if (n.value() < chunk.size()) {
      break;  // short read; epoll is level-triggered, any rest re-wakes us
    }
  }
  if (got_bytes) {
    conn.last_rx_ns.store(steady_ns(), std::memory_order_relaxed);
  }

  std::size_t off = conn.rx_off;
  for (;;) {
    const std::size_t avail = conn.rx.size() - off;
    if (conn.node.load(std::memory_order_relaxed) == i2o::kNullNode) {
      // First bytes on an accepted connection must be the hello.
      if (avail < kHelloBytes) {
        break;
      }
      const std::span<const std::byte> hello(conn.rx.data() + off,
                                             kHelloBytes);
      if (i2o::get_u32(hello, 0) != kHelloMagic) {
        log_.warn("rejecting connection with bad hello magic");
        return ServiceResult::kDrop;
      }
      conn.node.store(i2o::get_u16(hello, 4), std::memory_order_relaxed);
      off += kHelloBytes;
      {
        // Same early-index rule as the zero-copy path: replies to this
        // burst may route before the service pass finishes.
        const std::scoped_lock lock(conns_mutex_);
        const auto it = conns_by_fd_.find(conn.stream.fd());
        if (it != conns_by_fd_.end()) {
          conns_by_node_.emplace(
              conn.node.load(std::memory_order_relaxed), it->second);
        }
      }
      continue;
    }
    if (avail < 4) {
      break;
    }
    const std::uint32_t len =
        i2o::get_u32(std::span<const std::byte>(conn.rx.data() + off, 4), 0);
    if (len == kHeartbeatLen) {
      off += 4;  // liveness ping; last_rx_ns already stamped
      continue;
    }
    if (len == kCreditGrantLen) {
      if (avail < kCreditGrantBytes) {
        break;  // count still in flight
      }
      const std::uint32_t count = i2o::get_u32(
          std::span<const std::byte>(conn.rx.data() + off, kCreditGrantBytes),
          4);
      off += kCreditGrantBytes;
      // The legacy path only runs single-connection ablation setups; the
      // self shared_ptr is recovered from the registry for the restart.
      std::shared_ptr<Connection> self;
      {
        const std::scoped_lock lock(conns_mutex_);
        const auto it = conns_by_fd_.find(conn.stream.fd());
        if (it != conns_by_fd_.end()) {
          self = it->second;
        }
      }
      if (self && !apply_credit_grant(self, count).is_ok()) {
        return ServiceResult::kDrop;
      }
      continue;
    }
    if (len == 0 || len > config_.max_frame_bytes) {
      log_.warn("dropping connection announcing bad frame length ", len);
      return ServiceResult::kDrop;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) {
      break;  // frame still in flight
    }
    const std::span<const std::byte> fb(conn.rx.data() + off + 4, len);
    const bool control = is_control_frame(fb);
    if (window > 0 && !control) {
      ++conn.grant_debt;
    }
    if (!shed_inbound(fb, control)) {
      rx_frames_.fetch_add(1, std::memory_order_relaxed);
      (void)executive().deliver_from_wire(
          conn.node.load(std::memory_order_relaxed), tid(), fb, rdtsc());
      rx_copies_.fetch_add(1, std::memory_order_relaxed);
    }
    off += 4 + static_cast<std::size_t>(len);
  }
  // Consumed-offset bookkeeping: compact only when the buffer is quiescent
  // (fully parsed) or the dead prefix is large.
  conn.rx_off = off;
  if (conn.rx_off == conn.rx.size()) {
    conn.rx.clear();
    conn.rx_off = 0;
  } else if (conn.rx_off >= kReadChunk) {
    conn.rx.erase(conn.rx.begin(),
                  conn.rx.begin() + static_cast<std::ptrdiff_t>(conn.rx_off));
    conn.rx_off = 0;
  }
  return ServiceResult::kOk;
}

void TcpPeerTransport::handle_accept() {
  // Drain the whole accept backlog in one wakeup: under a mass connect
  // (the conn_scaling bench opens tens of thousands of sockets) one event
  // must not cost one loop iteration per connection.
  for (;;) {
    auto accepted = listener_.try_accept();
    if (!accepted.is_ok() || !accepted.value().has_value()) {
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->stream = std::move(*accepted.value());
    (void)conn->stream.set_nodelay(true);
    (void)conn->stream.set_nonblocking(true);
    conn->credits = transport_config().credit_window;
    const std::int64_t now = steady_ns();
    conn->last_rx_ns.store(now, std::memory_order_relaxed);
    conn->last_tx_ns.store(now, std::memory_order_relaxed);
    register_connection(conn);
  }
}

void TcpPeerTransport::hello_completed(
    const std::shared_ptr<Connection>& conn) {
  // Hello just completed on an accepted connection: the peer is alive
  // (again). Index it, mark it Up and replay anything queued for it.
  const i2o::NodeId node = conn->node.load(std::memory_order_relaxed);
  Transition t;
  {
    const std::scoped_lock lock(conns_mutex_);
    conns_by_node_.emplace(node, conn);  // a racing dial keeps the first
    t = set_state_locked(node, core::PeerState::Up);
  }
  fire(t);
  if (t.from == core::PeerState::Suspect) {
    reconnects_.fetch_add(1);
    retransmit_queued(node, conn);
  }
}

void TcpPeerTransport::park_connection(
    ReactorShard& shard, const std::shared_ptr<Connection>& conn) {
  if (conn->parked) {
    return;
  }
  conn->parked = true;
  rx_parks_.fetch_add(1, std::memory_order_relaxed);
  set_interest(*conn, false, std::nullopt);
  shard.parked.push_back(conn);
}

void TcpPeerTransport::unpark_all(ReactorShard& shard) {
  const bool completion = shard.engine->completion_mode();
  if (completion && !shard.rx_reserve.valid()) {
    // A roll consumed the deadlock reserve; re-arm it now that the pool
    // has recycled something (this runs on reclaim/grow wakes).
    if (auto res = executive().pool().allocate(mem::kMaxBlockBytes);
        res.is_ok()) {
      shard.rx_reserve = std::move(res).value();
    }
  }
  if (shard.parked.empty()) {
    return;
  }
  auto parked = std::move(shard.parked);
  shard.parked.clear();
  for (const auto& conn : parked) {
    if (conn->dead.load(std::memory_order_acquire)) {
      continue;
    }
    conn->parked = false;
    const bool had_node =
        conn->node.load(std::memory_order_relaxed) != i2o::kNullNode;
    // Completion backend: there is no socket to re-read - drain what the
    // multishot had already completed before the park's cancel landed,
    // then re-arm the recv (set_interest below replenishes the buffer
    // ring and posts a fresh multishot SQE).
    const ServiceResult r =
        completion ? drain_rx_backlog(conn) : service_connection(conn);
    if (r == ServiceResult::kDrop) {
      drop_connection(conn);
      continue;
    }
    if (!had_node &&
        conn->node.load(std::memory_order_relaxed) != i2o::kNullNode) {
      hello_completed(conn);
    }
    if (r == ServiceResult::kParked) {
      park_connection(shard, conn);  // still starved; stays parked
      continue;
    }
    rx_unparks_.fetch_add(1, std::memory_order_relaxed);
    set_interest(*conn, true, std::nullopt);
  }
}

void TcpPeerTransport::writable_event(
    const std::shared_ptr<Connection>& conn) {
  std::unique_lock lk(conn->write_mutex);
  if (conn->writer_active) {
    return;  // the active writer drains; it re-arms if it must
  }
  if (conn->pending.empty() && conn->flush_buf.empty()) {
    // Spurious (e.g. the drain completed on a sender thread between the
    // event and this lock): disarm so it does not fire again.
    lk.unlock();
    set_interest(*conn, std::nullopt, false);
    return;
  }
  conn->writer_active = true;
  const Status st = flush_pending(*conn, lk);
  conn->writer_active = false;
  lk.unlock();
  if (!st.is_ok()) {
    drop_connection(conn);
  }
}

TcpPeerTransport::ServiceResult TcpPeerTransport::absorb_rx_block(
    const std::shared_ptr<Connection>& conn, mem::FrameRef blk) {
  Connection& c = *conn;
  c.rx_block_wanted = false;
  std::size_t off = 0;
  const std::size_t total = blk.size();
  while (off < total) {
    if (!c.rx_block.valid() || c.rx_consumed == c.rx_filled) {
      // Quiescent: adopt the engine's block in place - the kernel
      // already wrote the burst into pool memory, parse it where it
      // lies. resize() exposes the block's full capacity so a partial
      // frame tail can be appended to (not rolled) by the next event.
      const std::size_t n = total - off;
      c.rx_block = off == 0 ? std::move(blk) : blk.view(off, n);
      (void)c.rx_block.resize(c.rx_block.capacity());
      c.rx_filled = n;
      c.rx_consumed = 0;
      off = total;
    } else {
      // A partial frame straddles engine blocks: append into the current
      // block's free tail (this copy is the completion-backend spelling
      // of the splice fallback). Copy ONLY what completes the straddling
      // frame - once it parses, rx_consumed catches rx_filled and the
      // next iteration adopts the block remainder in place. Copying the
      // whole block here would re-copy nearly every burst byte: at small
      // frame sizes almost every engine block ends mid-frame.
      const std::size_t tail = c.rx_filled - c.rx_consumed;
      std::size_t need;
      if (tail < sizeof(std::uint32_t)) {
        need = sizeof(std::uint32_t) - tail;  // finish the length prefix
      } else {
        const std::uint64_t frame =
            sizeof(std::uint32_t) +
            i2o::get_u32(c.rx_block.bytes().subspan(c.rx_consumed), 0);
        need = frame > tail ? static_cast<std::size_t>(frame - tail)
                            : std::size_t{1};
      }
      std::size_t room = c.rx_block.size() - c.rx_filled;
      if (room == 0) {
        if (!roll_rx_block(c, (c.rx_filled - c.rx_consumed) +
                                  (total - off))) {
          break;  // pool exhausted: stash the remainder below
        }
        room = c.rx_block.size() - c.rx_filled;
      }
      const std::size_t take = std::min({room, total - off, need});
      std::memcpy(c.rx_block.bytes().data() + c.rx_filled,
                  blk.bytes().data() + off, take);
      rx_splices_.fetch_add(1, std::memory_order_relaxed);
      rx_copies_.fetch_add(1, std::memory_order_relaxed);
      c.rx_filled += take;
      off += take;
    }
    if (!parse_rx_block(c, conn)) {
      return ServiceResult::kDrop;
    }
    if (c.rx_block_wanted) {
      break;  // a straddle roll failed mid-parse
    }
  }
  if (total > 0) {
    c.last_rx_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  maybe_send_grant(conn);
  if (c.rx_block_wanted || off < total) {
    if (off < total) {
      // Unabsorbed bytes stay at the backlog front so the unpark drain
      // resumes in stream order (byte-identical delivery).
      c.rx_backlog.push_front(blk.view(off, total - off));
    }
    return ServiceResult::kParked;
  }
  // Quiescent and fully parsed: hand the block back so the pool drains to
  // zero outstanding between bursts (undelivered views may still pin it).
  if (c.rx_block.valid() && c.rx_consumed == c.rx_filled) {
    c.rx_block.reset();
    c.rx_filled = 0;
    c.rx_consumed = 0;
  }
  return ServiceResult::kOk;
}

TcpPeerTransport::ServiceResult TcpPeerTransport::drain_rx_backlog(
    const std::shared_ptr<Connection>& conn) {
  Connection& c = *conn;
  if (c.rx_block.valid() && c.rx_consumed < c.rx_filled) {
    // A straddle parse stalled on pool exhaustion; re-attempt the roll.
    c.rx_block_wanted = false;
    if (!parse_rx_block(c, conn)) {
      return ServiceResult::kDrop;
    }
    if (c.rx_block_wanted) {
      return ServiceResult::kParked;
    }
  }
  while (!c.rx_backlog.empty()) {
    mem::FrameRef blk = std::move(c.rx_backlog.front());
    c.rx_backlog.pop_front();
    const ServiceResult r = absorb_rx_block(conn, std::move(blk));
    if (r != ServiceResult::kOk) {
      return r;  // kParked already re-stashed the remainder at the front
    }
  }
  return ServiceResult::kOk;
}

void TcpPeerTransport::enlist_tx(const std::shared_ptr<Connection>& conn) {
  if (conn->reactor_idx >= reactors_.size()) {
    return;  // transport stopping; queued bytes die with the connection
  }
  ReactorShard& shard = *reactors_[conn->reactor_idx];
  {
    const std::scoped_lock lock(shard.tx_mutex);
    if (conn->tx_listed) {
      return;  // already dirty; the pending wake covers this enlist too
    }
    conn->tx_listed = true;
    shard.tx_ready.push_back(conn);
  }
  shard.engine->wake();  // coalesced: concurrent enlists ride one eventfd
}

void TcpPeerTransport::pump_tx_ready(ReactorShard& shard) {
  std::vector<std::shared_ptr<Connection>> ready;
  {
    const std::scoped_lock lock(shard.tx_mutex);
    ready.swap(shard.tx_ready);
    for (const auto& conn : ready) {
      conn->tx_listed = false;
    }
  }
  if (ready.empty()) {
    return;
  }
  bool submitted = false;
  for (const auto& conn : ready) {
    if (conn->dead.load(std::memory_order_acquire)) {
      continue;
    }
    std::unique_lock lk(conn->write_mutex);
    if (conn->tx_inflight) {
      continue;  // its tx_done completion re-enlists whatever is left
    }
    refill_flush_buf_locked(*conn);
    if (conn->flush_buf.empty()) {
      if (!conn->pending.empty() && !conn->credit_stalled) {
        conn->credit_stalled = true;
        credit_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;  // nothing sendable until a credit grant re-lists us
    }
    gather_iov_locked(*conn);
    // The engine holds `conn` (as the pin) until the CQE, so the iovecs
    // and the pooled frame bytes they point into stay alive even if the
    // connection drops from the registry mid-flight.
    const Status st = shard.engine->submit_tx(
        conn->stream.fd(), conn->iov_parts, conn->flush_off, conn);
    if (!st.is_ok()) {
      // Registration race: the fd's add op is still queued (drained at
      // the top of the next wait). Retry next iteration.
      lk.unlock();
      enlist_tx(conn);
      continue;
    }
    conn->tx_inflight = true;
    submitted = true;
  }
  if (submitted) {
    shard.engine->flush_submissions();  // the whole round, one enter
  }
}

void TcpPeerTransport::tx_complete(const std::shared_ptr<Connection>& conn,
                                   std::int64_t res) {
  bool drop = false;
  {
    std::unique_lock lk(conn->write_mutex);
    conn->tx_inflight = false;
    if (res < 0) {
      if (res == -EAGAIN || res == -EINTR) {
        lk.unlock();
        enlist_tx(conn);  // spurious; resubmit the same gather
        return;
      }
      conn->pending.clear();  // connection is dead; drop queued sends
      conn->flush_buf.clear();
      conn->pending_bytes = 0;
      conn->flush_off = 0;
      conn->flush_bytes = 0;
      drop = true;
    } else {
      conn->pending_bytes -= static_cast<std::size_t>(res);
      conn->flush_off += static_cast<std::size_t>(res);
      conn->last_tx_ns.store(steady_ns(), std::memory_order_relaxed);
      retire_flushed_locked(*conn);
      if (!conn->flush_buf.empty() || !conn->pending.empty()) {
        // Short write, or senders queued more while this SQE flew:
        // resume by resubmission in this iteration's pump.
        lk.unlock();
        enlist_tx(conn);
        return;
      }
    }
  }
  if (drop) {
    drop_connection(conn);
  }
}

void TcpPeerTransport::reactor_loop(ReactorShard& shard) {
  const bool accept_shard = !reactors_.empty() && reactors_[0].get() == &shard;
  const int listener_fd = accept_shard ? listener_.fd() : -1;
  const bool completion = shard.engine->completion_mode();
  while (transport_running()) {
    auto ready = shard.engine->wait(kReactorWaitMs);
    if (!transport_running()) {
      break;
    }
    if (shard.rearm_parked.exchange(false, std::memory_order_acq_rel)) {
      unpark_all(shard);
    }
    if (ready.is_ok()) {
      for (auto& ev : ready.value()) {
        if (ev.fd == listener_fd) {
          handle_accept();
          continue;
        }
        std::shared_ptr<Connection> conn;
        {
          const std::scoped_lock lock(conns_mutex_);
          const auto it = conns_by_fd_.find(ev.fd);
          if (it != conns_by_fd_.end()) {
            conn = it->second;
          }
        }
        if (!conn || conn->dead.load(std::memory_order_acquire)) {
          continue;  // dropped while the event was in flight
        }
        if (completion) {
          if (ev.tx_done) {
            tx_complete(conn, ev.tx_res);
            if (conn->dead.load(std::memory_order_acquire)) {
              continue;
            }
          }
          if (ev.rx.valid()) {
            if (conn->parked) {
              // The multishot filled this before the park's cancel
              // landed; keep it in order for the unpark drain.
              conn->rx_backlog.push_back(std::move(ev.rx));
            } else {
              const bool had_node = conn->node.load(
                                        std::memory_order_relaxed) !=
                                    i2o::kNullNode;
              const ServiceResult r =
                  absorb_rx_block(conn, std::move(ev.rx));
              if (r == ServiceResult::kDrop) {
                drop_connection(conn);
                continue;
              }
              if (!had_node && conn->node.load(std::memory_order_relaxed) !=
                                   i2o::kNullNode) {
                hello_completed(conn);
              }
              if (r == ServiceResult::kParked) {
                park_connection(shard, conn);
              }
            }
          }
          if (ev.rx_stopped && !conn->parked) {
            // ENOBUFS with the pool truly exhausted: the multishot recv
            // shut itself down. Park; the reclaim/grow wake re-arms it.
            // Re-arm the reclaim hook ourselves - the engine armed it at
            // provide-failure time, but an unrelated recycle may have
            // consumed that arm before this park registered.
            park_connection(shard, conn);
            executive().pool().arm_reclaim();
          }
          if (ev.error) {
            drop_connection(conn);  // all preceding rx already absorbed
          }
          continue;
        }
        if (ev.writable) {
          writable_event(conn);
        }
        if (!ev.readable && !ev.error) {
          continue;
        }
        if (conn->parked) {
          // EPOLLERR/EPOLLHUP fire regardless of interest; the unpark pass
          // discovers the EOF once a block is available again.
          continue;
        }
        const bool had_node =
            conn->node.load(std::memory_order_relaxed) != i2o::kNullNode;
        const ServiceResult r = service_connection(conn);
        if (r == ServiceResult::kDrop) {
          drop_connection(conn);
          continue;
        }
        if (!had_node &&
            conn->node.load(std::memory_order_relaxed) != i2o::kNullNode) {
          hello_completed(conn);
        }
        if (r == ServiceResult::kParked) {
          park_connection(shard, conn);
        }
      }
    }
    if (completion) {
      // End of iteration: submit every tx gathered this round (rx-burst
      // replies, credit-grant resumes, short-write continuations) with
      // one io_uring_enter.
      pump_tx_ready(shard);
    }
  }
}

void TcpPeerTransport::maintenance_loop() {
  std::mutex wait_mutex;
  while (transport_running()) {
    const auto hb = transport_config().heartbeat_interval;
    auto tick = hb.count() > 0
                    ? std::clamp(hb / 8, std::chrono::nanoseconds(
                                             std::chrono::milliseconds(1)),
                                 std::chrono::nanoseconds(
                                     std::chrono::milliseconds(20)))
                    : std::chrono::nanoseconds(std::chrono::milliseconds(10));
    {
      std::unique_lock lk(wait_mutex);
      maintenance_cv_.wait_for(lk, tick,
                               [this] { return !transport_running(); });
    }
    if (!transport_running()) {
      return;
    }
    maintenance_tick(steady_ns());
    // Backstop for sends that corked while racing the tail of a dispatch
    // batch: whatever the end-of-batch flush missed leaves within a tick.
    on_transport_flush();
  }
}

void TcpPeerTransport::maintenance_tick(std::int64_t now_ns) {
  const core::TransportConfig cfg = transport_config();
  const std::int64_t hb_ns = cfg.heartbeat_interval.count();

  std::vector<Transition> transitions;
  std::vector<std::shared_ptr<Connection>> need_heartbeat;
  std::vector<std::shared_ptr<Connection>> to_drop;
  std::vector<std::pair<i2o::NodeId, TcpPeer>> to_dial;
  {
    const std::scoped_lock lock(conns_mutex_);
    if (hb_ns > 0) {
      for (const auto& [fd, conn] : conns_by_fd_) {
        const i2o::NodeId node = conn->node.load(std::memory_order_relaxed);
        if (node == i2o::kNullNode) {
          continue;
        }
        const std::int64_t idle_rx =
            now_ns - conn->last_rx_ns.load(std::memory_order_relaxed);
        const std::int64_t idle_tx =
            now_ns - conn->last_tx_ns.load(std::memory_order_relaxed);
        auto& info = peers_[node];
        if (idle_rx >=
            hb_ns * static_cast<std::int64_t>(cfg.missed_heartbeat_limit)) {
          // Peer went silent past the limit: declare it dead and sever the
          // connection; the redial path takes over.
          to_drop.push_back(conn);
          transitions.push_back(set_state_locked(node, core::PeerState::Down));
          if (config_.peers.count(node) != 0) {
            info.dial_attempts = 0;
            info.next_dial_ns =
                now_ns +
                core::backoff_delay(cfg, 1, jitter_rng_.next()).count();
          }
          continue;
        }
        if (idle_rx >= hb_ns && info.state == core::PeerState::Up) {
          transitions.push_back(
              set_state_locked(node, core::PeerState::Suspect));
        } else if (idle_rx < hb_ns &&
                   info.state == core::PeerState::Suspect) {
          // Traffic resumed on the live connection.
          transitions.push_back(set_state_locked(node, core::PeerState::Up));
        }
        if (idle_tx >= hb_ns) {
          need_heartbeat.push_back(conn);
        }
      }
      // Redial peers whose backoff deadline passed and that have no live
      // connection (dial happens unlocked below).
      for (auto& [node, info] : peers_) {
        if ((info.state != core::PeerState::Suspect &&
             info.state != core::PeerState::Down) ||
            info.dialing || now_ns < info.next_dial_ns) {
          continue;
        }
        if (conns_by_node_.count(node) != 0) {
          continue;
        }
        const auto ep = config_.peers.find(node);
        if (ep == config_.peers.end()) {
          continue;  // nothing to dial; wait for the peer to call back
        }
        info.dialing = true;
        to_dial.emplace_back(node, ep->second);
      }
    }
  }
  for (const auto& t : transitions) {
    fire(t);
  }
  for (const auto& conn : to_drop) {
    // The Down transition was recorded above; this is the sever-without-
    // re-transition half of drop_connection.
    if (conn->dead.exchange(true, std::memory_order_acq_rel)) {
      continue;
    }
    if (conn->reactor_idx < reactors_.size()) {
      (void)reactors_[conn->reactor_idx]->engine->del(conn->stream.fd());
    }
    conn->stream.shutdown();
    const std::scoped_lock lock(conns_mutex_);
    const auto fit = conns_by_fd_.find(conn->stream.fd());
    if (fit != conns_by_fd_.end() && fit->second == conn) {
      conns_by_fd_.erase(fit);
    }
    const i2o::NodeId node = conn->node.load(std::memory_order_relaxed);
    const auto nit = conns_by_node_.find(node);
    if (nit != conns_by_node_.end() && nit->second == conn) {
      conns_by_node_.erase(nit);
    }
  }
  for (const auto& conn : need_heartbeat) {
    if (Status st = send_heartbeat(conn);
        !st.is_ok() && st.code() != Errc::ResourceExhausted) {
      drop_connection(conn);
    }
  }
  for (const auto& [node, peer] : to_dial) {
    auto dialed = dial(node, peer);
    Transition t;
    std::shared_ptr<Connection> conn;
    bool fresh = false;
    {
      const std::scoped_lock lock(conns_mutex_);
      auto& info = peers_[node];
      info.dialing = false;
      if (!dialed.is_ok()) {
        failed_dials_.fetch_add(1);
        info.dial_attempts++;
        info.next_dial_ns =
            steady_ns() +
            core::backoff_delay(cfg, info.dial_attempts, jitter_rng_.next())
                .count();
        if (info.state == core::PeerState::Suspect) {
          // A failed redial upgrades Suspect to Down: callers now fail
          // fast instead of queueing behind a peer that may never return.
          t = set_state_locked(node, core::PeerState::Down);
        }
      } else {
        conn = std::move(dialed).value();
        const auto it = conns_by_node_.find(node);
        if (it != conns_by_node_.end()) {
          conn = it->second;  // peer dialed us first; keep theirs
        } else if (!reactors_.empty()) {
          conn->reactor_idx =
              next_reactor_.fetch_add(1, std::memory_order_relaxed) %
              static_cast<std::uint32_t>(reactors_.size());
          conns_by_fd_[conn->stream.fd()] = conn;
          conns_by_node_.emplace(node, conn);
          fresh = true;
        }
        t = set_state_locked(node, core::PeerState::Up);
        reconnects_.fetch_add(1);
      }
    }
    if (fresh) {
      (void)reactors_[conn->reactor_idx]->engine->add(conn->stream.fd(), true,
                                                      false);
    }
    fire(t);
    if (conn) {
      retransmit_queued(node, conn);
    }
  }
}

}  // namespace xdaq::pt
