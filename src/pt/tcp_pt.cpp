#include "pt/tcp_pt.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "i2o/wire.hpp"
#include "util/clock.hpp"

namespace xdaq::pt {

namespace {
constexpr std::uint32_t kHelloMagic = 0x58444151;  // "XDAQ"
constexpr std::size_t kHelloBytes = 6;             // magic + node id
}  // namespace

TcpPeerTransport::TcpPeerTransport(TcpTransportConfig config)
    : TransportDevice("TcpPeerTransport", Mode::Task),
      config_(std::move(config)),
      log_("pt/tcp") {}

TcpPeerTransport::~TcpPeerTransport() { stop_transport(); }

Status TcpPeerTransport::on_configure(const i2o::ParamList& params) {
  for (const auto& [key, value] : params) {
    if (key == "listen_port") {
      config_.listen_port =
          static_cast<std::uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key.rfind("peer.", 0) == 0) {
      const auto node = static_cast<i2o::NodeId>(
          std::strtoul(key.c_str() + 5, nullptr, 10));
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        return {Errc::InvalidArgument, "peer entry needs host:port"};
      }
      add_peer(node, value.substr(0, colon),
               static_cast<std::uint16_t>(
                   std::strtoul(value.substr(colon + 1).c_str(), nullptr,
                                10)));
    }
  }
  return Status::ok();
}

void TcpPeerTransport::add_peer(i2o::NodeId node, const std::string& host,
                                std::uint16_t port) {
  const std::scoped_lock lock(conns_mutex_);
  config_.peers[node] = TcpPeer{host, port};
}

Status TcpPeerTransport::on_enable() { return start_transport(); }

Status TcpPeerTransport::on_halt() {
  stop_transport();
  return Status::ok();
}

i2o::ParamList TcpPeerTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("listen_port", std::to_string(listen_port()));
  params.emplace_back("connections", std::to_string(connection_count()));
  return params;
}

Status TcpPeerTransport::start_transport() {
  if (running_.load()) {
    return Status::ok();
  }
  auto listener = netio::TcpListener::bind(config_.listen_port);
  if (!listener.is_ok()) {
    return listener.status();
  }
  {
    const std::scoped_lock lock(conns_mutex_);
    listener_ = std::move(listener).value();
  }
  if (Status st = listener_.set_nonblocking(true); !st.is_ok()) {
    return st;
  }
  running_.store(true);
  reader_thread_ = std::thread([this] { reader_loop(); });
  return Status::ok();
}

void TcpPeerTransport::stop_transport() {
  running_.store(false);
  if (reader_thread_.joinable()) {
    reader_thread_.join();
  }
  const std::scoped_lock lock(conns_mutex_);
  listener_.close();
  conns_.clear();
}

std::uint16_t TcpPeerTransport::listen_port() const {
  const std::scoped_lock lock(conns_mutex_);
  return listener_.valid() ? listener_.port() : 0;
}

std::size_t TcpPeerTransport::connection_count() const {
  const std::scoped_lock lock(conns_mutex_);
  return conns_.size();
}

Status TcpPeerTransport::send_hello(Connection& conn) {
  std::array<std::byte, kHelloBytes> hello{};
  i2o::put_u32(hello, 0, kHelloMagic);
  i2o::put_u16(hello, 4, executive().node_id());
  return conn.stream.write_all(hello);
}

Result<TcpPeerTransport::Connection*> TcpPeerTransport::connection_to(
    i2o::NodeId node) {
  const std::scoped_lock lock(conns_mutex_);
  for (const auto& conn : conns_) {
    if (conn->node == node) {
      return conn.get();
    }
  }
  const auto it = config_.peers.find(node);
  if (it == config_.peers.end()) {
    return {Errc::Unroutable, "no TCP endpoint configured for node"};
  }
  auto stream = netio::TcpStream::connect(it->second.host, it->second.port);
  if (!stream.is_ok()) {
    return stream.status();
  }
  (void)stream.value().set_nodelay(true);
  auto conn = std::make_shared<Connection>();
  conn->stream = std::move(stream).value();
  conn->node = node;
  if (Status st = send_hello(*conn); !st.is_ok()) {
    return st;
  }
  conns_.push_back(conn);
  return conn.get();
}

Status TcpPeerTransport::transport_send(i2o::NodeId dst,
                                        std::span<const std::byte> frame) {
  if (!running_.load()) {
    return {Errc::FailedPrecondition, "TCP transport not enabled"};
  }
  if (frame.size() > config_.max_frame_bytes) {
    return {Errc::InvalidArgument, "frame exceeds TCP transport maximum"};
  }
  // Hold a shared reference so a concurrent disconnect cannot free the
  // connection under us.
  std::shared_ptr<Connection> conn;
  {
    auto found = connection_to(dst);
    if (!found.is_ok()) {
      return found.status();
    }
    const std::scoped_lock lock(conns_mutex_);
    for (const auto& c : conns_) {
      if (c.get() == found.value()) {
        conn = c;
        break;
      }
    }
  }
  if (conn == nullptr) {
    return {Errc::ConnectionClosed, "connection vanished during send"};
  }
  std::array<std::byte, 4> len{};
  i2o::put_u32(len, 0, static_cast<std::uint32_t>(frame.size()));
  const std::scoped_lock wlock(*conn->write_mutex);
  if (Status st = conn->stream.write_all(len); !st.is_ok()) {
    return st;
  }
  return conn->stream.write_all(frame);
}

bool TcpPeerTransport::service_connection(Connection& conn) {
  if (conn.node == i2o::kNullNode) {
    // First message on an accepted connection must be the hello.
    std::array<std::byte, kHelloBytes> hello{};
    if (!conn.stream.read_exact(hello).is_ok()) {
      return false;
    }
    if (i2o::get_u32(hello, 0) != kHelloMagic) {
      log_.warn("rejecting connection with bad hello magic");
      return false;
    }
    conn.node = i2o::get_u16(hello, 4);
    return true;
  }
  std::array<std::byte, 4> lenbuf{};
  if (!conn.stream.read_exact(lenbuf).is_ok()) {
    return false;
  }
  const std::uint32_t len = i2o::get_u32(lenbuf, 0);
  if (len == 0 || len > config_.max_frame_bytes) {
    log_.warn("dropping connection announcing bad frame length ", len);
    return false;
  }
  std::vector<std::byte> frame(len);
  if (!conn.stream.read_exact(frame).is_ok()) {
    return false;
  }
  (void)executive().deliver_from_wire(conn.node, tid(), frame, rdtsc());
  return true;
}

void TcpPeerTransport::reader_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    // Snapshot the fd set; shared_ptrs keep connections alive through the
    // unlocked service phase.
    netio::Poller poller;
    std::vector<std::shared_ptr<Connection>> snapshot;
    int listener_fd = -1;
    {
      const std::scoped_lock lock(conns_mutex_);
      listener_fd = listener_.fd();
      poller.watch(listener_fd);
      for (const auto& conn : conns_) {
        poller.watch(conn->stream.fd());
        snapshot.push_back(conn);
      }
    }
    auto ready = poller.wait_readable(20);
    if (!ready.is_ok()) {
      continue;
    }
    for (const int fd : ready.value()) {
      if (fd == listener_fd) {
        auto accepted = listener_.try_accept();
        if (accepted.is_ok() && accepted.value().has_value()) {
          auto conn = std::make_shared<Connection>();
          conn->stream = std::move(*accepted.value());
          (void)conn->stream.set_nodelay(true);
          const std::scoped_lock lock(conns_mutex_);
          conns_.push_back(std::move(conn));
        }
        continue;
      }
      for (const auto& conn : snapshot) {
        if (conn->stream.fd() == fd) {
          if (!service_connection(*conn)) {
            const std::scoped_lock lock(conns_mutex_);
            conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                         conns_.end());
          }
          break;
        }
      }
    }
  }
}

}  // namespace xdaq::pt
