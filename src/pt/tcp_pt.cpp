#include "pt/tcp_pt.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

#include "i2o/wire.hpp"
#include "util/clock.hpp"

namespace xdaq::pt {

namespace {
constexpr std::uint32_t kHelloMagic = 0x58444151;  // "XDAQ"
constexpr std::size_t kHelloBytes = 6;             // magic + node id
constexpr std::size_t kReadChunk = 64 * 1024;      // per-recv scratch size
/// Length-prefix sentinel for a heartbeat (no body). Cannot collide with a
/// real frame: lengths are bounded by max_frame_bytes.
constexpr std::uint32_t kHeartbeatLen = 0xFFFFFFFF;
/// When the combiner's pending buffer backs up past this, senders stop
/// piggybacking and wait for the writer slot, so TCP backpressure reaches
/// producers instead of growing the buffer without bound.
constexpr std::size_t kPendingHighWater = 256 * 1024;
}  // namespace

TcpPeerTransport::TcpPeerTransport(TcpTransportConfig config,
                                   core::TransportConfig transport_config)
    : TransportDevice("TcpPeerTransport", Mode::Task, transport_config),
      config_(std::move(config)),
      log_("pt/tcp") {}

TcpPeerTransport::~TcpPeerTransport() { transport_down(); }

std::int64_t TcpPeerTransport::steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TcpPeerTransport::is_control_frame(
    std::span<const std::byte> frame) noexcept {
  if (frame.size() < 8) {
    return true;  // malformed; treat conservatively as control
  }
  const auto flags = static_cast<std::uint8_t>(frame[1]);
  const auto function = static_cast<std::uint8_t>(frame[7]);
  return function != static_cast<std::uint8_t>(i2o::Function::Private) ||
         (flags & i2o::kFlagControl) != 0;
}

Status TcpPeerTransport::on_configure(const i2o::ParamList& params) {
  if (Status st = parse_transport_params(params); !st.is_ok()) {
    return st;
  }
  for (const auto& [key, value] : params) {
    if (key == "listen_port") {
      config_.listen_port =
          static_cast<std::uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "zero_copy") {
      config_.zero_copy = value != "0" && value != "false";
    } else if (key.rfind("peer.", 0) == 0) {
      const auto node = static_cast<i2o::NodeId>(
          std::strtoul(key.c_str() + 5, nullptr, 10));
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        return {Errc::InvalidArgument, "peer entry needs host:port"};
      }
      add_peer(node, value.substr(0, colon),
               static_cast<std::uint16_t>(
                   std::strtoul(value.substr(colon + 1).c_str(), nullptr,
                                10)));
    }
  }
  return Status::ok();
}

void TcpPeerTransport::add_peer(i2o::NodeId node, const std::string& host,
                                std::uint16_t port) {
  const std::scoped_lock lock(conns_mutex_);
  config_.peers[node] = TcpPeer{host, port};
}

Status TcpPeerTransport::on_enable() { return transport_up(); }

Status TcpPeerTransport::on_halt() {
  transport_down();
  return Status::ok();
}

i2o::ParamList TcpPeerTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("listen_port", std::to_string(listen_port()));
  params.emplace_back("connections", std::to_string(connection_count()));
  const FaultStats fs = fault_stats();
  params.emplace_back("heartbeats_sent", std::to_string(fs.heartbeats_sent));
  params.emplace_back("reconnects", std::to_string(fs.reconnects));
  params.emplace_back("failed_dials", std::to_string(fs.failed_dials));
  params.emplace_back("retransmitted", std::to_string(fs.retransmitted));
  params.emplace_back("dropped_pending", std::to_string(fs.dropped_pending));
  {
    const std::scoped_lock lock(conns_mutex_);
    for (const auto& [node, info] : peers_) {
      params.emplace_back("peer_state." + std::to_string(node),
                          std::string(core::to_string(info.state)));
    }
  }
  return params;
}

Status TcpPeerTransport::on_transport_start() {
  auto listener = netio::TcpListener::bind(config_.listen_port);
  if (!listener.is_ok()) {
    return listener.status();
  }
  {
    const std::scoped_lock lock(conns_mutex_);
    listener_ = std::move(listener).value();
    jitter_rng_ = Rng(config_.jitter_seed);
    peers_.clear();
  }
  if (Status st = listener_.set_nonblocking(true); !st.is_ok()) {
    return st;
  }
  heartbeats_sent_.store(0);
  reconnects_.store(0);
  failed_dials_.store(0);
  retransmitted_.store(0);
  dropped_pending_.store(0);
  rx_copies_.store(0);
  tx_copies_.store(0);
  rx_splices_.store(0);
  reader_thread_ = std::thread([this] { reader_loop(); });
  maintenance_thread_ = std::thread([this] { maintenance_loop(); });
  return Status::ok();
}

void TcpPeerTransport::on_transport_stop() {
  maintenance_cv_.notify_all();
  if (reader_thread_.joinable()) {
    reader_thread_.join();
  }
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
  const std::scoped_lock lock(conns_mutex_);
  listener_.close();
  conns_.clear();
  peers_.clear();
}

std::uint16_t TcpPeerTransport::listen_port() const {
  const std::scoped_lock lock(conns_mutex_);
  return listener_.valid() ? listener_.port() : 0;
}

std::size_t TcpPeerTransport::connection_count() const {
  const std::scoped_lock lock(conns_mutex_);
  return conns_.size();
}

void TcpPeerTransport::append_metrics(const std::string& prefix,
                                      std::vector<obs::Sample>& out) const {
  const FaultStats fs = fault_stats();
  out.push_back({prefix + ".heartbeats_sent",
                 static_cast<std::int64_t>(fs.heartbeats_sent)});
  out.push_back({prefix + ".reconnects",
                 static_cast<std::int64_t>(fs.reconnects)});
  out.push_back({prefix + ".failed_dials",
                 static_cast<std::int64_t>(fs.failed_dials)});
  out.push_back({prefix + ".retransmitted",
                 static_cast<std::int64_t>(fs.retransmitted)});
  out.push_back({prefix + ".dropped_pending",
                 static_cast<std::int64_t>(fs.dropped_pending)});
  out.push_back({prefix + ".connections",
                 static_cast<std::int64_t>(connection_count())});
  out.push_back({prefix + ".rx_copies",
                 static_cast<std::int64_t>(
                     rx_copies_.load(std::memory_order_relaxed))});
  out.push_back({prefix + ".tx_copies",
                 static_cast<std::int64_t>(
                     tx_copies_.load(std::memory_order_relaxed))});
  out.push_back({prefix + ".rx_splices",
                 static_cast<std::int64_t>(
                     rx_splices_.load(std::memory_order_relaxed))});
}

TcpPeerTransport::FaultStats TcpPeerTransport::fault_stats() const {
  FaultStats fs;
  fs.heartbeats_sent = heartbeats_sent_.load();
  fs.reconnects = reconnects_.load();
  fs.failed_dials = failed_dials_.load();
  fs.retransmitted = retransmitted_.load();
  fs.dropped_pending = dropped_pending_.load();
  return fs;
}

core::PeerState TcpPeerTransport::peer_state(i2o::NodeId node) const {
  const std::scoped_lock lock(conns_mutex_);
  const auto it = peers_.find(node);
  return it == peers_.end() ? core::PeerState::Unknown : it->second.state;
}

void TcpPeerTransport::disrupt_peer(i2o::NodeId node) {
  // Sever (not close) every connection to the node: the fd stays valid so
  // the reader/writer threads observe EOF/EPIPE instead of racing a reused
  // descriptor, and the normal failure path (Suspect, redial) takes over.
  const std::scoped_lock lock(conns_mutex_);
  for (const auto& conn : conns_) {
    if (conn->node == node) {
      conn->stream.shutdown();
    }
  }
}

TcpPeerTransport::Transition TcpPeerTransport::set_state_locked(
    i2o::NodeId node, core::PeerState to) {
  Transition t;
  auto& info = peers_[node];
  t.node = node;
  t.from = info.state;
  t.to = to;
  info.state = to;
  if (to == core::PeerState::Up) {
    info.dial_attempts = 0;
  }
  if (to == core::PeerState::Down && !info.queued.empty()) {
    // Down drops the retransmit queue: callers were promised delivery only
    // across a successful reconnect, and the executive synthesizes FAIL
    // replies for whatever was in flight.
    dropped_pending_.fetch_add(info.queued.size());
    info.queued.clear();
  }
  return t;
}

void TcpPeerTransport::fire(const Transition& t) {
  if (!t.fired()) {
    return;
  }
  log_.info("peer ", t.node, ": ", core::to_string(t.from), " -> ",
            core::to_string(t.to));
  notify_peer_state(t.node, t.from, t.to);
}

Status TcpPeerTransport::send_hello(Connection& conn) {
  std::array<std::byte, kHelloBytes> hello{};
  i2o::put_u32(hello, 0, kHelloMagic);
  i2o::put_u16(hello, 4, executive().node_id());
  return conn.stream.write_all(hello);
}

Result<std::shared_ptr<TcpPeerTransport::Connection>> TcpPeerTransport::dial(
    i2o::NodeId node, const TcpPeer& peer) {
  auto stream = netio::TcpStream::connect(peer.host, peer.port);
  if (!stream.is_ok()) {
    return stream.status();
  }
  (void)stream.value().set_nodelay(true);
  auto conn = std::make_shared<Connection>();
  conn->stream = std::move(stream).value();
  conn->node = node;
  const std::int64_t now = steady_ns();
  conn->last_rx_ns.store(now, std::memory_order_relaxed);
  conn->last_tx_ns.store(now, std::memory_order_relaxed);
  if (Status st = send_hello(*conn); !st.is_ok()) {
    return st;
  }
  return conn;
}

Result<std::shared_ptr<TcpPeerTransport::Connection>>
TcpPeerTransport::connection_to(i2o::NodeId node) {
  TcpPeer peer;
  {
    const std::scoped_lock lock(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->node == node) {
        return conn;
      }
    }
    const auto it = config_.peers.find(node);
    if (it == config_.peers.end()) {
      return {Errc::Unroutable, "no TCP endpoint configured for node"};
    }
    peer = it->second;
  }
  // Dial and handshake unlocked: a slow or unreachable peer must not block
  // sends to other nodes behind the registry mutex.
  auto dialed = dial(node, peer);
  if (!dialed.is_ok()) {
    return dialed.status();
  }
  auto conn = std::move(dialed).value();
  Transition t;
  {
    const std::scoped_lock lock(conns_mutex_);
    // Another sender may have dialed the same node while we were
    // connecting; keep theirs and drop our socket (RAII closes it).
    for (const auto& existing : conns_) {
      if (existing->node == node) {
        return existing;
      }
    }
    conns_.push_back(conn);
    t = set_state_locked(node, core::PeerState::Up);
  }
  fire(t);
  return conn;
}

Status TcpPeerTransport::flush_pending(Connection& conn,
                                       std::unique_lock<std::mutex>& lk) {
  while (!conn.pending.empty()) {
    conn.flush_buf.clear();
    std::swap(conn.pending, conn.flush_buf);
    conn.pending_bytes = 0;
    // flush_buf is writer-owned, so the socket write needs no lock and
    // other senders keep appending to pending meanwhile. Bodies go to the
    // wire straight from wherever they live (pooled frame memory for the
    // zero-copy path) - the gathered iovec list is the only thing built.
    lk.unlock();
    conn.iov_parts.clear();
    for (const PendingSend& e : conn.flush_buf) {
      conn.iov_parts.emplace_back(e.prefix.data(), e.prefix.size());
      const auto body = e.body();
      if (!body.empty()) {
        conn.iov_parts.push_back(body);
      }
    }
    const Status st = conn.stream.write_vec(conn.iov_parts);
    lk.lock();
    // Only now - after the kernel accepted every byte - do the FrameRefs
    // queued in flush_buf drop back to their pools.
    conn.flush_buf.clear();
    if (!st.is_ok()) {
      conn.pending.clear();  // connection is dead; drop queued sends
      conn.pending_bytes = 0;
      return st;
    }
  }
  conn.last_tx_ns.store(steady_ns(), std::memory_order_relaxed);
  return Status::ok();
}

Status TcpPeerTransport::write_entry(Connection& conn, PendingSend entry,
                                     std::size_t wire_bytes) {
  std::unique_lock lk(conn.write_mutex);
  conn.pending.push_back(std::move(entry));
  conn.pending_bytes += wire_bytes;
  if (conn.writer_active) {
    if (wire_bytes <= config_.coalesce_bytes &&
        conn.pending_bytes < kPendingHighWater) {
      // Small send: the active writer gathers it into the same syscall as
      // its own (errors on piggybacked sends surface as a dropped
      // connection, like any wire loss).
      return Status::ok();
    }
    // Large send or backed up: park until the writer drains. The previous
    // writer may flush our entry for us; the loop below then finds
    // pending empty and returns immediately.
    conn.write_cv.wait(lk, [&conn] { return !conn.writer_active; });
  } else if (wire_bytes <= config_.coalesce_bytes &&
             conn.pending_bytes < config_.coalesce_bytes && attached() &&
             executive().dispatch_active()) {
    // Handler send mid-dispatch-batch: cork it. The executive's
    // end-of-batch transport_flush() (or the maintenance tick, if this
    // send raced the tail of the batch) puts it on the wire in one
    // gathered syscall with the rest of the batch's replies. With a
    // sharded executive the flush may come from a sibling shard's
    // end-of-batch; corked_ is an atomic and the drain runs under
    // write_mutex, so who flushes does not matter.
    corked_.store(true, std::memory_order_release);
    return Status::ok();
  }
  conn.writer_active = true;
  const Status st = flush_pending(conn, lk);
  conn.writer_active = false;
  lk.unlock();
  conn.write_cv.notify_all();
  return st;
}

void TcpPeerTransport::on_transport_flush() {
  if (!corked_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::scoped_lock lock(conns_mutex_);
    conns = conns_;
  }
  for (const auto& conn : conns) {
    std::unique_lock lk(conn->write_mutex);
    if (conn->pending.empty() || conn->writer_active) {
      continue;  // nothing corked here, or an active writer drains it
    }
    conn->writer_active = true;
    const Status st = flush_pending(*conn, lk);
    conn->writer_active = false;
    lk.unlock();
    conn->write_cv.notify_all();
    if (!st.is_ok()) {
      drop_connection(conn);
    }
  }
}

Status TcpPeerTransport::send_heartbeat(Connection& conn) {
  PendingSend hb;
  i2o::put_u32(hb.prefix, 0, kHeartbeatLen);
  const Status st = write_entry(conn, std::move(hb), 4);
  if (st.is_ok()) {
    heartbeats_sent_.fetch_add(1);
  }
  return st;
}

Status TcpPeerTransport::write_frame(Connection& conn,
                                     std::vector<std::byte> frame) {
  PendingSend entry;
  i2o::put_u32(entry.prefix, 0, static_cast<std::uint32_t>(frame.size()));
  const std::size_t wire_bytes = entry.prefix.size() + frame.size();
  entry.owned = std::move(frame);
  return write_entry(conn, std::move(entry), wire_bytes);
}

void TcpPeerTransport::drop_connection(
    const std::shared_ptr<Connection>& conn) {
  conn->stream.shutdown();
  Transition t;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = std::find(conns_.begin(), conns_.end(), conn);
    if (it == conns_.end()) {
      return;  // another thread already dropped it
    }
    conns_.erase(it);
    const i2o::NodeId node = conn->node;
    if (node == i2o::kNullNode ||
        transport_config().heartbeat_interval.count() <= 0) {
      return;  // never identified, or liveness disabled (seed behaviour)
    }
    if (config_.peers.find(node) == config_.peers.end()) {
      // No endpoint to redial (e.g. we are the accepting side): the peer
      // is gone until it dials back in. Declare it Down right away.
      t = set_state_locked(node, core::PeerState::Down);
    } else {
      auto& info = peers_[node];
      if (info.state != core::PeerState::Down) {
        t = set_state_locked(node, core::PeerState::Suspect);
      }
      info.dial_attempts = 0;
      info.next_dial_ns =
          steady_ns() +
          core::backoff_delay(transport_config(), 1, jitter_rng_.next())
              .count();
    }
  }
  fire(t);
}

void TcpPeerTransport::retransmit_queued(
    i2o::NodeId node, const std::shared_ptr<Connection>& conn) {
  std::deque<std::vector<std::byte>> queued;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = peers_.find(node);
    if (it == peers_.end() || it->second.queued.empty()) {
      return;
    }
    queued.swap(it->second.queued);
  }
  const std::size_t count = queued.size();
  for (auto& frame : queued) {
    // The queue owned the bytes already; moving them into the entry keeps
    // the retransmit copy-free.
    if (Status st = write_frame(*conn, std::move(frame)); !st.is_ok()) {
      log_.warn("retransmit to peer ", node, " failed: ", st.message());
      drop_connection(conn);
      return;
    }
    retransmitted_.fetch_add(1);
  }
  log_.info("retransmitted ", count, " queued frame(s) to peer ", node);
}

Status TcpPeerTransport::transport_send(i2o::NodeId dst,
                                        std::span<const std::byte> frame) {
  return send_common(dst, frame, {});
}

Status TcpPeerTransport::transport_send_frame(i2o::NodeId dst,
                                              mem::FrameRef frame) {
  if (!config_.zero_copy) {
    return transport_send(dst, frame.bytes());  // ablation: copy arm
  }
  const std::span<const std::byte> body = frame.bytes();
  return send_common(dst, body, std::move(frame));
}

Status TcpPeerTransport::send_common(i2o::NodeId dst,
                                     std::span<const std::byte> frame,
                                     mem::FrameRef ref) {
  if (!transport_running()) {
    return {Errc::FailedPrecondition, "TCP transport not enabled"};
  }
  if (frame.size() > config_.max_frame_bytes) {
    return {Errc::InvalidArgument, "frame exceeds TCP transport maximum"};
  }
  // Liveness gate: Down fails fast; Suspect queues control-plane frames
  // for retransmission after the reconnect and refuses data frames.
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = peers_.find(dst);
    if (it != peers_.end()) {
      if (it->second.state == core::PeerState::Down) {
        return {Errc::Unavailable,
                "peer " + std::to_string(dst) + " is down"};
      }
      if (it->second.state == core::PeerState::Suspect) {
        if (!is_control_frame(frame)) {
          return {Errc::Unavailable,
                  "peer " + std::to_string(dst) +
                      " is suspect; data frame not queued"};
        }
        if (it->second.queued.size() >= transport_config().pending_depth) {
          return {Errc::Unavailable,
                  "pending queue full for peer " + std::to_string(dst)};
        }
        it->second.queued.emplace_back(frame.begin(), frame.end());
        return Status::ok();
      }
    }
  }
  // Hold a shared reference so a concurrent disconnect cannot free the
  // connection under us.
  auto found = connection_to(dst);
  if (!found.is_ok()) {
    if (found.status().code() == Errc::Unroutable) {
      return found.status();
    }
    // First dial failed: mark the peer Suspect (the maintenance thread
    // takes over redialing) and queue control frames like any other
    // Suspect-window send.
    Transition t;
    bool queued = false;
    const bool liveness = transport_config().heartbeat_interval.count() > 0;
    if (liveness) {
      const std::scoped_lock lock(conns_mutex_);
      auto& info = peers_[dst];
      if (info.state != core::PeerState::Suspect &&
          info.state != core::PeerState::Down) {
        t = set_state_locked(dst, core::PeerState::Suspect);
        info.dial_attempts = 1;
        failed_dials_.fetch_add(1);
        info.next_dial_ns =
            steady_ns() +
            core::backoff_delay(transport_config(), 1, jitter_rng_.next())
                .count();
      }
      if (info.state == core::PeerState::Suspect && is_control_frame(frame) &&
          info.queued.size() < transport_config().pending_depth) {
        info.queued.emplace_back(frame.begin(), frame.end());
        queued = true;
      }
    }
    fire(t);
    if (queued) {
      return Status::ok();
    }
    return {Errc::Unavailable, std::string(found.status().message())};
  }
  auto conn = std::move(found).value();
  PendingSend entry;
  i2o::put_u32(entry.prefix, 0, static_cast<std::uint32_t>(frame.size()));
  const std::size_t wire_bytes = entry.prefix.size() + frame.size();
  if (ref.valid()) {
    // Zero-copy: the queue holds the live reference; the writer gathers
    // the body straight from pooled memory.
    entry.frame = std::move(ref);
  } else {
    entry.owned.assign(frame.begin(), frame.end());
    tx_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  if (Status st = write_entry(*conn, std::move(entry), wire_bytes);
      !st.is_ok()) {
    drop_connection(conn);
    return {Errc::Unavailable,
            "send to peer " + std::to_string(dst) + " failed: " +
                std::string(st.message())};
  }
  return Status::ok();
}

bool TcpPeerTransport::service_connection(Connection& conn) {
  if (!config_.zero_copy) {
    return service_connection_legacy(conn);
  }
  // Zero-copy receive: the kernel writes straight into a pooled block;
  // complete frames are handed to the executive as views of that block
  // (no per-frame allocation, no memcpy). The block is rolled only when
  // its writable tail runs out - a partial frame straddling the roll pays
  // the one splice copy.
  bool got_bytes = false;
  for (;;) {
    if (!conn.rx_block.valid() &&
        !roll_rx_block(conn, /*need_hint=*/kReadChunk)) {
      // Pool exhausted: leave the kernel buffer queued; poll() is
      // level-triggered, so the data re-wakes us once blocks are free.
      return true;
    }
    auto tail = conn.rx_block.bytes().subspan(conn.rx_filled);
    if (tail.empty()) {
      if (!roll_rx_block(conn, /*need_hint=*/kReadChunk)) {
        return true;
      }
      tail = conn.rx_block.bytes().subspan(conn.rx_filled);
    }
    auto n = conn.stream.read_available(tail);
    if (!n.is_ok()) {
      if (n.status().code() == Errc::Timeout) {
        break;  // kernel buffer drained
      }
      return false;  // EOF or error
    }
    got_bytes = true;
    conn.rx_filled += n.value();
    if (!parse_rx_block(conn)) {
      return false;
    }
    if (n.value() < tail.size()) {
      break;  // short read; any rest re-wakes us
    }
  }
  if (got_bytes) {
    conn.last_rx_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  // Quiescent and fully parsed: hand the block back so the pool drains to
  // zero outstanding between bursts (undelivered views may still pin it).
  // The next burst grabs a fresh block - a lock-free or one-mutex pool hit
  // per wakeup, amortized over the whole burst.
  if (conn.rx_block.valid() && conn.rx_consumed == conn.rx_filled) {
    conn.rx_block.reset();
    conn.rx_filled = 0;
    conn.rx_consumed = 0;
  }
  return true;
}

bool TcpPeerTransport::parse_rx_block(Connection& conn) {
  for (;;) {
    // Discard phase for frames too large for any pool block.
    if (conn.rx_skip > 0) {
      const std::size_t take =
          std::min(conn.rx_skip, conn.rx_filled - conn.rx_consumed);
      conn.rx_consumed += take;
      conn.rx_skip -= take;
      if (conn.rx_skip > 0) {
        return true;  // rest of the oversized frame still in flight
      }
      continue;
    }
    const std::size_t avail = conn.rx_filled - conn.rx_consumed;
    const std::byte* base = conn.rx_block.bytes().data() + conn.rx_consumed;
    if (conn.node == i2o::kNullNode) {
      // First bytes on an accepted connection must be the hello.
      if (avail < kHelloBytes) {
        return true;
      }
      const std::span<const std::byte> hello(base, kHelloBytes);
      if (i2o::get_u32(hello, 0) != kHelloMagic) {
        log_.warn("rejecting connection with bad hello magic");
        return false;
      }
      conn.node = i2o::get_u16(hello, 4);
      conn.rx_consumed += kHelloBytes;
      continue;
    }
    if (avail < 4) {
      return true;
    }
    const std::uint32_t len =
        i2o::get_u32(std::span<const std::byte>(base, 4), 0);
    if (len == kHeartbeatLen) {
      conn.rx_consumed += 4;  // liveness ping; last_rx_ns stamped by caller
      continue;
    }
    if (len == 0 || len > config_.max_frame_bytes) {
      log_.warn("dropping connection announcing bad frame length ", len);
      return false;
    }
    const std::size_t need = 4 + static_cast<std::size_t>(len);
    if (need > mem::kMaxBlockBytes) {
      // No pool block can carry it; skip the body as it streams past
      // (the copying path could not deliver such a frame either - its
      // pool allocation failed).
      log_.warn("discarding frame of ", len, " bytes (exceeds pool block)");
      conn.rx_consumed += 4;
      conn.rx_skip = len;
      continue;
    }
    if (avail < need) {
      // Frame still in flight. If it can never complete in this block's
      // remaining bytes, splice the partial tail to a fresh block now.
      if (conn.rx_consumed + need > conn.rx_block.size() &&
          !roll_rx_block(conn, need)) {
        return true;  // pool exhausted; retry on the next wakeup
      }
      return true;
    }
    mem::FrameRef view = conn.rx_block.view(conn.rx_consumed + 4, len);
    (void)executive().deliver_from_wire(conn.node, tid(), std::move(view),
                                        rdtsc());
    conn.rx_consumed += need;
  }
}

bool TcpPeerTransport::roll_rx_block(Connection& conn,
                                     std::size_t need_hint) {
  const std::size_t tail_bytes =
      conn.rx_block.valid() ? conn.rx_filled - conn.rx_consumed : 0;
  // Full-size blocks: 4x fewer rolls (and splices, and pool hits) than
  // kReadChunk-sized ones, and recv can drain up to the whole block in
  // one syscall. The block is released at burst quiescence either way.
  const std::size_t want = std::max<std::size_t>(
      mem::kMaxBlockBytes, std::max(need_hint, tail_bytes));
  auto fresh = executive().pool().allocate(std::min(want,
                                                    mem::kMaxBlockBytes));
  if (!fresh.is_ok()) {
    return false;
  }
  if (tail_bytes > 0) {
    // A partial frame straddles the block boundary: the one splice copy
    // of the zero-copy pipeline.
    std::memcpy(fresh.value().bytes().data(),
                conn.rx_block.bytes().data() + conn.rx_consumed, tail_bytes);
    rx_splices_.fetch_add(1, std::memory_order_relaxed);
    rx_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  conn.rx_block = std::move(fresh).value();
  conn.rx_filled = tail_bytes;
  conn.rx_consumed = 0;
  return true;
}

bool TcpPeerTransport::service_connection_legacy(Connection& conn) {
  // Pull everything the kernel has buffered (the socket stays blocking for
  // writes; MSG_DONTWAIT bounds the reads), then parse every complete
  // message. One poll wakeup therefore delivers a whole burst instead of
  // one frame.
  std::array<std::byte, kReadChunk> chunk;
  bool got_bytes = false;
  for (;;) {
    auto n = conn.stream.read_available(chunk);
    if (!n.is_ok()) {
      if (n.status().code() == Errc::Timeout) {
        break;  // kernel buffer drained
      }
      return false;  // EOF or error
    }
    got_bytes = true;
    conn.rx.insert(conn.rx.end(), chunk.begin(), chunk.begin() + n.value());
    if (n.value() < chunk.size()) {
      break;  // short read; poll() is level-triggered, any rest re-wakes us
    }
  }
  if (got_bytes) {
    conn.last_rx_ns.store(steady_ns(), std::memory_order_relaxed);
  }

  std::size_t off = conn.rx_off;
  for (;;) {
    const std::size_t avail = conn.rx.size() - off;
    if (conn.node == i2o::kNullNode) {
      // First bytes on an accepted connection must be the hello.
      if (avail < kHelloBytes) {
        break;
      }
      const std::span<const std::byte> hello(conn.rx.data() + off,
                                             kHelloBytes);
      if (i2o::get_u32(hello, 0) != kHelloMagic) {
        log_.warn("rejecting connection with bad hello magic");
        return false;
      }
      conn.node = i2o::get_u16(hello, 4);
      off += kHelloBytes;
      continue;
    }
    if (avail < 4) {
      break;
    }
    const std::uint32_t len =
        i2o::get_u32(std::span<const std::byte>(conn.rx.data() + off, 4), 0);
    if (len == kHeartbeatLen) {
      off += 4;  // liveness ping; last_rx_ns already stamped
      continue;
    }
    if (len == 0 || len > config_.max_frame_bytes) {
      log_.warn("dropping connection announcing bad frame length ", len);
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) {
      break;  // frame still in flight
    }
    (void)executive().deliver_from_wire(
        conn.node, tid(),
        std::span<const std::byte>(conn.rx.data() + off + 4, len), rdtsc());
    rx_copies_.fetch_add(1, std::memory_order_relaxed);
    off += 4 + static_cast<std::size_t>(len);
  }
  // Consumed-offset bookkeeping: the old per-pass front erase memmoved
  // every unconsumed byte on every wakeup. Compact only when the buffer
  // is quiescent (fully parsed) or the dead prefix is large.
  conn.rx_off = off;
  if (conn.rx_off == conn.rx.size()) {
    conn.rx.clear();
    conn.rx_off = 0;
  } else if (conn.rx_off >= kReadChunk) {
    conn.rx.erase(conn.rx.begin(),
                  conn.rx.begin() + static_cast<std::ptrdiff_t>(conn.rx_off));
    conn.rx_off = 0;
  }
  return true;
}

void TcpPeerTransport::reader_loop() {
  while (transport_running()) {
    // Snapshot the fd set, keyed by fd for O(1) routing of ready events;
    // shared_ptrs keep connections alive through the unlocked service
    // phase.
    netio::Poller poller;
    std::unordered_map<int, std::shared_ptr<Connection>> by_fd;
    int listener_fd = -1;
    {
      const std::scoped_lock lock(conns_mutex_);
      listener_fd = listener_.fd();
      poller.watch(listener_fd);
      by_fd.reserve(conns_.size());
      for (const auto& conn : conns_) {
        poller.watch(conn->stream.fd());
        by_fd.emplace(conn->stream.fd(), conn);
      }
    }
    auto ready = poller.wait_readable(20);
    if (!ready.is_ok()) {
      continue;
    }
    for (const int fd : ready.value()) {
      if (fd == listener_fd) {
        auto accepted = listener_.try_accept();
        if (accepted.is_ok() && accepted.value().has_value()) {
          auto conn = std::make_shared<Connection>();
          conn->stream = std::move(*accepted.value());
          (void)conn->stream.set_nodelay(true);
          const std::int64_t now = steady_ns();
          conn->last_rx_ns.store(now, std::memory_order_relaxed);
          conn->last_tx_ns.store(now, std::memory_order_relaxed);
          const std::scoped_lock lock(conns_mutex_);
          conns_.push_back(std::move(conn));
        }
        continue;
      }
      const auto it = by_fd.find(fd);
      if (it == by_fd.end()) {
        continue;
      }
      const bool had_node = it->second->node != i2o::kNullNode;
      if (!service_connection(*it->second)) {
        drop_connection(it->second);
        continue;
      }
      if (!had_node && it->second->node != i2o::kNullNode) {
        // Hello just completed on an accepted connection: the peer is
        // alive (again). Mark it Up and replay anything queued for it.
        const i2o::NodeId node = it->second->node;
        Transition t;
        {
          const std::scoped_lock lock(conns_mutex_);
          t = set_state_locked(node, core::PeerState::Up);
        }
        fire(t);
        if (t.from == core::PeerState::Suspect) {
          reconnects_.fetch_add(1);
          retransmit_queued(node, it->second);
        }
      }
    }
  }
}

void TcpPeerTransport::maintenance_loop() {
  std::mutex wait_mutex;
  while (transport_running()) {
    const auto hb = transport_config().heartbeat_interval;
    auto tick = hb.count() > 0
                    ? std::clamp(hb / 8, std::chrono::nanoseconds(
                                             std::chrono::milliseconds(1)),
                                 std::chrono::nanoseconds(
                                     std::chrono::milliseconds(20)))
                    : std::chrono::nanoseconds(std::chrono::milliseconds(10));
    {
      std::unique_lock lk(wait_mutex);
      maintenance_cv_.wait_for(lk, tick,
                               [this] { return !transport_running(); });
    }
    if (!transport_running()) {
      return;
    }
    maintenance_tick(steady_ns());
    // Backstop for sends that corked while racing the tail of a dispatch
    // batch: whatever the end-of-batch flush missed leaves within a tick.
    on_transport_flush();
  }
}

void TcpPeerTransport::maintenance_tick(std::int64_t now_ns) {
  const core::TransportConfig cfg = transport_config();
  const std::int64_t hb_ns = cfg.heartbeat_interval.count();

  std::vector<Transition> transitions;
  std::vector<std::shared_ptr<Connection>> need_heartbeat;
  std::vector<std::shared_ptr<Connection>> to_drop;
  std::vector<std::pair<i2o::NodeId, TcpPeer>> to_dial;
  {
    const std::scoped_lock lock(conns_mutex_);
    if (hb_ns > 0) {
      for (const auto& conn : conns_) {
        if (conn->node == i2o::kNullNode) {
          continue;
        }
        const std::int64_t idle_rx =
            now_ns - conn->last_rx_ns.load(std::memory_order_relaxed);
        const std::int64_t idle_tx =
            now_ns - conn->last_tx_ns.load(std::memory_order_relaxed);
        auto& info = peers_[conn->node];
        if (idle_rx >=
            hb_ns * static_cast<std::int64_t>(cfg.missed_heartbeat_limit)) {
          // Peer went silent past the limit: declare it dead and sever the
          // connection; the redial path takes over.
          to_drop.push_back(conn);
          transitions.push_back(
              set_state_locked(conn->node, core::PeerState::Down));
          if (config_.peers.count(conn->node) != 0) {
            info.dial_attempts = 0;
            info.next_dial_ns =
                now_ns +
                core::backoff_delay(cfg, 1, jitter_rng_.next()).count();
          }
          continue;
        }
        if (idle_rx >= hb_ns && info.state == core::PeerState::Up) {
          transitions.push_back(
              set_state_locked(conn->node, core::PeerState::Suspect));
        } else if (idle_rx < hb_ns &&
                   info.state == core::PeerState::Suspect) {
          // Traffic resumed on the live connection.
          transitions.push_back(
              set_state_locked(conn->node, core::PeerState::Up));
        }
        if (idle_tx >= hb_ns) {
          need_heartbeat.push_back(conn);
        }
      }
      // Redial peers whose backoff deadline passed and that have no live
      // connection (dial happens unlocked below).
      for (auto& [node, info] : peers_) {
        if ((info.state != core::PeerState::Suspect &&
             info.state != core::PeerState::Down) ||
            info.dialing || now_ns < info.next_dial_ns) {
          continue;
        }
        const bool connected =
            std::any_of(conns_.begin(), conns_.end(),
                        [node = node](const auto& c) {
                          return c->node == node;
                        });
        if (connected) {
          continue;
        }
        const auto ep = config_.peers.find(node);
        if (ep == config_.peers.end()) {
          continue;  // nothing to dial; wait for the peer to call back
        }
        info.dialing = true;
        to_dial.emplace_back(node, ep->second);
      }
    }
  }
  for (const auto& t : transitions) {
    fire(t);
  }
  for (const auto& conn : to_drop) {
    conn->stream.shutdown();
    const std::scoped_lock lock(conns_mutex_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
  }
  for (const auto& conn : need_heartbeat) {
    if (Status st = send_heartbeat(*conn); !st.is_ok()) {
      drop_connection(conn);
    }
  }
  for (const auto& [node, peer] : to_dial) {
    auto dialed = dial(node, peer);
    Transition t;
    std::shared_ptr<Connection> conn;
    {
      const std::scoped_lock lock(conns_mutex_);
      auto& info = peers_[node];
      info.dialing = false;
      if (!dialed.is_ok()) {
        failed_dials_.fetch_add(1);
        info.dial_attempts++;
        info.next_dial_ns =
            steady_ns() +
            core::backoff_delay(cfg, info.dial_attempts, jitter_rng_.next())
                .count();
        if (info.state == core::PeerState::Suspect) {
          // A failed redial upgrades Suspect to Down: callers now fail
          // fast instead of queueing behind a peer that may never return.
          t = set_state_locked(node, core::PeerState::Down);
        }
      } else {
        conn = std::move(dialed).value();
        bool duplicate = false;
        for (const auto& existing : conns_) {
          if (existing->node == node) {
            duplicate = true;  // peer dialed us first; keep theirs
            conn = existing;
            break;
          }
        }
        if (!duplicate) {
          conns_.push_back(conn);
        }
        t = set_state_locked(node, core::PeerState::Up);
        reconnects_.fetch_add(1);
      }
    }
    fire(t);
    if (conn) {
      retransmit_queued(node, conn);
    }
  }
}

}  // namespace xdaq::pt
