#include "pt/tcp_pt.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

#include "i2o/wire.hpp"
#include "util/clock.hpp"

namespace xdaq::pt {

namespace {
constexpr std::uint32_t kHelloMagic = 0x58444151;  // "XDAQ"
constexpr std::size_t kHelloBytes = 6;             // magic + node id
constexpr std::size_t kReadChunk = 64 * 1024;      // per-recv scratch size
/// When the combiner's pending buffer backs up past this, senders stop
/// piggybacking and wait for the writer slot, so TCP backpressure reaches
/// producers instead of growing the buffer without bound.
constexpr std::size_t kPendingHighWater = 256 * 1024;
}  // namespace

TcpPeerTransport::TcpPeerTransport(TcpTransportConfig config)
    : TransportDevice("TcpPeerTransport", Mode::Task),
      config_(std::move(config)),
      log_("pt/tcp") {}

TcpPeerTransport::~TcpPeerTransport() { stop_transport(); }

Status TcpPeerTransport::on_configure(const i2o::ParamList& params) {
  for (const auto& [key, value] : params) {
    if (key == "listen_port") {
      config_.listen_port =
          static_cast<std::uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key.rfind("peer.", 0) == 0) {
      const auto node = static_cast<i2o::NodeId>(
          std::strtoul(key.c_str() + 5, nullptr, 10));
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        return {Errc::InvalidArgument, "peer entry needs host:port"};
      }
      add_peer(node, value.substr(0, colon),
               static_cast<std::uint16_t>(
                   std::strtoul(value.substr(colon + 1).c_str(), nullptr,
                                10)));
    }
  }
  return Status::ok();
}

void TcpPeerTransport::add_peer(i2o::NodeId node, const std::string& host,
                                std::uint16_t port) {
  const std::scoped_lock lock(conns_mutex_);
  config_.peers[node] = TcpPeer{host, port};
}

Status TcpPeerTransport::on_enable() { return start_transport(); }

Status TcpPeerTransport::on_halt() {
  stop_transport();
  return Status::ok();
}

i2o::ParamList TcpPeerTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("listen_port", std::to_string(listen_port()));
  params.emplace_back("connections", std::to_string(connection_count()));
  return params;
}

Status TcpPeerTransport::start_transport() {
  if (running_.load()) {
    return Status::ok();
  }
  auto listener = netio::TcpListener::bind(config_.listen_port);
  if (!listener.is_ok()) {
    return listener.status();
  }
  {
    const std::scoped_lock lock(conns_mutex_);
    listener_ = std::move(listener).value();
  }
  if (Status st = listener_.set_nonblocking(true); !st.is_ok()) {
    return st;
  }
  running_.store(true);
  reader_thread_ = std::thread([this] { reader_loop(); });
  return Status::ok();
}

void TcpPeerTransport::stop_transport() {
  running_.store(false);
  if (reader_thread_.joinable()) {
    reader_thread_.join();
  }
  const std::scoped_lock lock(conns_mutex_);
  listener_.close();
  conns_.clear();
}

std::uint16_t TcpPeerTransport::listen_port() const {
  const std::scoped_lock lock(conns_mutex_);
  return listener_.valid() ? listener_.port() : 0;
}

std::size_t TcpPeerTransport::connection_count() const {
  const std::scoped_lock lock(conns_mutex_);
  return conns_.size();
}

Status TcpPeerTransport::send_hello(Connection& conn) {
  std::array<std::byte, kHelloBytes> hello{};
  i2o::put_u32(hello, 0, kHelloMagic);
  i2o::put_u16(hello, 4, executive().node_id());
  return conn.stream.write_all(hello);
}

Result<std::shared_ptr<TcpPeerTransport::Connection>>
TcpPeerTransport::connection_to(i2o::NodeId node) {
  TcpPeer peer;
  {
    const std::scoped_lock lock(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->node == node) {
        return conn;
      }
    }
    const auto it = config_.peers.find(node);
    if (it == config_.peers.end()) {
      return {Errc::Unroutable, "no TCP endpoint configured for node"};
    }
    peer = it->second;
  }
  // Dial and handshake unlocked: a slow or unreachable peer must not block
  // sends to other nodes behind the registry mutex.
  auto stream = netio::TcpStream::connect(peer.host, peer.port);
  if (!stream.is_ok()) {
    return stream.status();
  }
  (void)stream.value().set_nodelay(true);
  auto conn = std::make_shared<Connection>();
  conn->stream = std::move(stream).value();
  conn->node = node;
  if (Status st = send_hello(*conn); !st.is_ok()) {
    return st;
  }
  {
    const std::scoped_lock lock(conns_mutex_);
    // Another sender may have dialed the same node while we were
    // connecting; keep theirs and drop our socket (RAII closes it).
    for (const auto& existing : conns_) {
      if (existing->node == node) {
        return existing;
      }
    }
    conns_.push_back(conn);
  }
  return conn;
}

Status TcpPeerTransport::flush_pending(Connection& conn,
                                       std::unique_lock<std::mutex>& lk) {
  while (!conn.pending.empty()) {
    conn.flush_buf.clear();
    std::swap(conn.pending, conn.flush_buf);
    // flush_buf is writer-owned, so the socket write needs no lock and
    // other senders keep appending to pending meanwhile.
    lk.unlock();
    const Status st = conn.stream.write_all(conn.flush_buf);
    lk.lock();
    if (!st.is_ok()) {
      conn.pending.clear();  // connection is dead; drop queued bytes
      return st;
    }
  }
  return Status::ok();
}

Status TcpPeerTransport::transport_send(i2o::NodeId dst,
                                        std::span<const std::byte> frame) {
  if (!running_.load()) {
    return {Errc::FailedPrecondition, "TCP transport not enabled"};
  }
  if (frame.size() > config_.max_frame_bytes) {
    return {Errc::InvalidArgument, "frame exceeds TCP transport maximum"};
  }
  // Hold a shared reference so a concurrent disconnect cannot free the
  // connection under us.
  auto found = connection_to(dst);
  if (!found.is_ok()) {
    return found.status();
  }
  Connection& conn = *found.value();
  std::array<std::byte, 4> len{};
  i2o::put_u32(len, 0, static_cast<std::uint32_t>(frame.size()));

  std::unique_lock lk(conn.write_mutex);
  if (frame.size() + len.size() <= config_.coalesce_bytes) {
    // Small frame: queue it; if a writer is already flushing, it will pick
    // this frame up in the same syscall as its own (errors on piggybacked
    // frames surface as a dropped connection, like any wire loss).
    conn.pending.insert(conn.pending.end(), len.begin(), len.end());
    conn.pending.insert(conn.pending.end(), frame.begin(), frame.end());
    if (conn.writer_active) {
      if (conn.pending.size() < kPendingHighWater) {
        return Status::ok();
      }
      // Backed up: park until the writer drains, then take over.
      conn.write_cv.wait(lk, [&conn] { return !conn.writer_active; });
    }
    conn.writer_active = true;
    const Status st = flush_pending(conn, lk);
    conn.writer_active = false;
    lk.unlock();
    conn.write_cv.notify_all();
    return st;
  }

  // Large frame: claim the writer slot, drain queued small sends first so
  // ordering holds, then gathered-write prefix + body with zero copies.
  conn.write_cv.wait(lk, [&conn] { return !conn.writer_active; });
  conn.writer_active = true;
  Status st = flush_pending(conn, lk);
  if (st.is_ok()) {
    lk.unlock();
    st = conn.stream.write_all2(len, frame);
    lk.lock();
  }
  if (st.is_ok()) {
    // Flush anything that piggybacked while the gathered write ran.
    st = flush_pending(conn, lk);
  }
  conn.writer_active = false;
  lk.unlock();
  conn.write_cv.notify_all();
  return st;
}

bool TcpPeerTransport::service_connection(Connection& conn) {
  // Pull everything the kernel has buffered (the socket stays blocking for
  // writes; MSG_DONTWAIT bounds the reads), then parse every complete
  // message. One poll wakeup therefore delivers a whole burst instead of
  // one frame.
  std::array<std::byte, kReadChunk> chunk;
  for (;;) {
    auto n = conn.stream.read_available(chunk);
    if (!n.is_ok()) {
      if (n.status().code() == Errc::Timeout) {
        break;  // kernel buffer drained
      }
      return false;  // EOF or error
    }
    conn.rx.insert(conn.rx.end(), chunk.begin(), chunk.begin() + n.value());
    if (n.value() < chunk.size()) {
      break;  // short read; poll() is level-triggered, any rest re-wakes us
    }
  }

  std::size_t off = 0;
  for (;;) {
    const std::size_t avail = conn.rx.size() - off;
    if (conn.node == i2o::kNullNode) {
      // First bytes on an accepted connection must be the hello.
      if (avail < kHelloBytes) {
        break;
      }
      const std::span<const std::byte> hello(conn.rx.data() + off,
                                             kHelloBytes);
      if (i2o::get_u32(hello, 0) != kHelloMagic) {
        log_.warn("rejecting connection with bad hello magic");
        return false;
      }
      conn.node = i2o::get_u16(hello, 4);
      off += kHelloBytes;
      continue;
    }
    if (avail < 4) {
      break;
    }
    const std::uint32_t len =
        i2o::get_u32(std::span<const std::byte>(conn.rx.data() + off, 4), 0);
    if (len == 0 || len > config_.max_frame_bytes) {
      log_.warn("dropping connection announcing bad frame length ", len);
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) {
      break;  // frame still in flight
    }
    (void)executive().deliver_from_wire(
        conn.node, tid(),
        std::span<const std::byte>(conn.rx.data() + off + 4, len), rdtsc());
    off += 4 + static_cast<std::size_t>(len);
  }
  conn.rx.erase(conn.rx.begin(),
                conn.rx.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

void TcpPeerTransport::reader_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    // Snapshot the fd set, keyed by fd for O(1) routing of ready events;
    // shared_ptrs keep connections alive through the unlocked service
    // phase.
    netio::Poller poller;
    std::unordered_map<int, std::shared_ptr<Connection>> by_fd;
    int listener_fd = -1;
    {
      const std::scoped_lock lock(conns_mutex_);
      listener_fd = listener_.fd();
      poller.watch(listener_fd);
      by_fd.reserve(conns_.size());
      for (const auto& conn : conns_) {
        poller.watch(conn->stream.fd());
        by_fd.emplace(conn->stream.fd(), conn);
      }
    }
    auto ready = poller.wait_readable(20);
    if (!ready.is_ok()) {
      continue;
    }
    for (const int fd : ready.value()) {
      if (fd == listener_fd) {
        auto accepted = listener_.try_accept();
        if (accepted.is_ok() && accepted.value().has_value()) {
          auto conn = std::make_shared<Connection>();
          conn->stream = std::move(*accepted.value());
          (void)conn->stream.set_nodelay(true);
          const std::scoped_lock lock(conns_mutex_);
          conns_.push_back(std::move(conn));
        }
        continue;
      }
      const auto it = by_fd.find(fd);
      if (it != by_fd.end() && !service_connection(*it->second)) {
        const std::scoped_lock lock(conns_mutex_);
        conns_.erase(std::remove(conns_.begin(), conns_.end(), it->second),
                     conns_.end());
      }
    }
  }
}

}  // namespace xdaq::pt
