// local_bus.hpp - peer transport for executives sharing one process.
//
// Models the paper's figure 3a: peer operation through the messaging
// instance when IOPs sit on the same bus segment. Delivery is a direct,
// synchronous handoff into the destination executive's inbound queue -
// no wire, no serialization beyond the frame itself. Useful for tests
// and as the fastest baseline a transport can be.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "core/executive.hpp"
#include "core/transport.hpp"

namespace xdaq::pt {

class LocalBusTransport;

/// The shared "bus segment": a registry of transports by node id.
/// Create one per process (or per simulated segment).
class LocalBus {
 public:
  LocalBus() = default;
  LocalBus(const LocalBus&) = delete;
  LocalBus& operator=(const LocalBus&) = delete;

  [[nodiscard]] std::size_t attached() const;

 private:
  friend class LocalBusTransport;

  Status attach(i2o::NodeId node, LocalBusTransport* pt);
  void detach(i2o::NodeId node);
  LocalBusTransport* find(i2o::NodeId node) const;

  mutable std::mutex mutex_;
  std::map<i2o::NodeId, LocalBusTransport*> nodes_;
};

class LocalBusTransport final : public core::TransportDevice {
 public:
  explicit LocalBusTransport(LocalBus& bus)
      : TransportDevice("LocalBusTransport", Mode::Task), bus_(&bus) {}
  ~LocalBusTransport() override;

  Status transport_send(i2o::NodeId dst,
                        std::span<const std::byte> frame) override;
  /// Zero-copy handoff: the peer executive receives the same pooled
  /// reference; no wire bytes exist, so rx_copies stays 0.
  Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) override;

  /// Bus attachment is the liveness signal here: an attached peer is Up,
  /// a detached one Unknown (in-process, there is no Suspect window).
  [[nodiscard]] core::PeerState peer_state(i2o::NodeId node) const override {
    return bus_->find(node) != nullptr ? core::PeerState::Up
                                       : core::PeerState::Unknown;
  }

  void append_metrics(const std::string& prefix,
                      std::vector<obs::Sample>& out) const override {
    out.push_back({prefix + ".forwarded",
                   static_cast<std::int64_t>(
                       forwarded_.load(std::memory_order_relaxed))});
    out.push_back({prefix + ".no_peer",
                   static_cast<std::int64_t>(
                       no_peer_.load(std::memory_order_relaxed))});
    out.push_back({prefix + ".rx_copies",
                   static_cast<std::int64_t>(
                       rx_copies_.load(std::memory_order_relaxed))});
    out.push_back({prefix + ".tx_copies", 0});
  }

 protected:
  /// Joins the bus under the executive's node id when installed.
  void plugin() override;

 private:
  LocalBus* bus_;
  bool attached_to_bus_ = false;
  std::atomic<std::uint64_t> forwarded_{0};  ///< frames handed to a peer
  std::atomic<std::uint64_t> no_peer_{0};    ///< sends to a detached node
  /// Copies on the span fallback path (zero on the FrameRef path).
  std::atomic<std::uint64_t> rx_copies_{0};
};

}  // namespace xdaq::pt
