#include "pt/fifo_pt.hpp"

#include "util/clock.hpp"

namespace xdaq::pt {

FifoLink::FifoLink(std::size_t depth)
    : fifo_to_0_(depth), fifo_to_1_(depth) {}

FifoTransport::FifoTransport(FifoLink& link, int endpoint)
    : TransportDevice("FifoTransport", Mode::Polling),
      link_(&link),
      endpoint_(endpoint & 1) {}

FifoTransport::~FifoTransport() {
  const std::scoped_lock lock(link_->attach_mutex_);
  if (link_->endpoints_[endpoint_] == this) {
    link_->endpoints_[endpoint_] = nullptr;
  }
}

void FifoTransport::plugin() {
  const std::scoped_lock lock(link_->attach_mutex_);
  link_->endpoints_[endpoint_] = this;
}

Status FifoTransport::post_slot(i2o::NodeId dst, FifoLink::Slot slot) {
  // A point-to-point segment: the only reachable node is the other end.
  const int other = endpoint_ ^ 1;
  FifoTransport* peer = nullptr;
  {
    const std::scoped_lock lock(link_->attach_mutex_);
    peer = link_->endpoints_[other];
  }
  if (peer == nullptr || peer->executive().node_id() != dst) {
    return {Errc::Unroutable, "node is not on this PCI segment"};
  }
  const std::scoped_lock lock(link_->producer_mutex_[other]);
  if (!link_->fifo_towards(other).try_push(std::move(slot))) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return {Errc::ResourceExhausted, "outbound FIFO full"};
  }
  return Status::ok();
}

Status FifoTransport::transport_send(i2o::NodeId dst,
                                     std::span<const std::byte> frame) {
  FifoLink::Slot slot;
  slot.src = executive().node_id();
  slot.frame.assign(frame.begin(), frame.end());
  tx_copies_.fetch_add(1, std::memory_order_relaxed);
  return post_slot(dst, std::move(slot));
}

Status FifoTransport::transport_send_frame(i2o::NodeId dst,
                                           mem::FrameRef frame) {
  // The pooled reference itself rides through the ring slot - the bytes
  // never leave the sender's block until the peer executive consumes
  // them (the synthetic analogue of a PCI bus-master descriptor).
  FifoLink::Slot slot;
  slot.src = executive().node_id();
  slot.ref = std::move(frame);
  return post_slot(dst, std::move(slot));
}

void FifoTransport::on_transport_poll() {
  // Runs on dispatch shard 0 (the executive's polling owner);
  // deliver_from_wire then fans each frame out to its target's shard.
  auto& fifo = link_->fifo_towards(endpoint_);
  while (auto slot = fifo.try_pop()) {
    if (slot->ref.valid()) {
      (void)executive().deliver_from_wire(slot->src, tid(),
                                          std::move(slot->ref), rdtsc());
    } else {
      rx_copies_.fetch_add(1, std::memory_order_relaxed);
      (void)executive().deliver_from_wire(slot->src, tid(), slot->frame,
                                          rdtsc());
    }
  }
}

i2o::ParamList FifoTransport::on_params_get() {
  auto params = Device::on_params_get();
  params.emplace_back("endpoint", std::to_string(endpoint_));
  params.emplace_back("fifo_depth", std::to_string(link_->depth()));
  params.emplace_back("fifo_full_rejects",
                      std::to_string(fifo_full_rejects()));
  return params;
}

}  // namespace xdaq::pt
