#include "mem/pool.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <memory>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace xdaq::mem {

void FrameRef::release() noexcept {
  if (!blk_) {
    return;
  }
  // Sole-owner fast path: if this ref is the only one left, no other
  // thread can create a new ref (sharing requires holding one), so the
  // locked decrement can be skipped. The acquire load synchronizes with
  // the release decrements of refs dropped on other threads.
  if (blk_->refcount.load(std::memory_order_acquire) == 1) {
    blk_->refcount.store(0, std::memory_order_relaxed);
    blk_->owner->recycle(blk_);
  } else if (blk_->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    blk_->owner->recycle(blk_);
  }
  blk_ = nullptr;
}

FrameRef FrameRef::view(std::size_t offset, std::size_t length) const
    noexcept {
  if (!blk_ || offset + length > len_) {
    return {};
  }
  blk_->refcount.fetch_add(1, std::memory_order_relaxed);
  blk_->owner->note_view();
  return FrameRef(blk_, static_cast<std::uint32_t>(off_ + offset),
                  static_cast<std::uint32_t>(length));
}

BlockHeader* FrameRef::release_for_batch() noexcept {
  BlockHeader* blk = blk_;
  if (blk == nullptr) {
    return nullptr;
  }
  blk_ = nullptr;
  if (blk->refcount.load(std::memory_order_acquire) == 1) {
    blk->refcount.store(0, std::memory_order_relaxed);
    return blk;
  }
  if (blk->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    blk->owner->recycle(blk);
  }
  return nullptr;
}

BlockHeader* new_raw_block(Pool* owner, std::size_t data_bytes,
                           std::uint32_t size_class) {
  // Keep the data area 16-byte aligned: header size is a multiple of 16 on
  // LP64 (asserted below), and operator new returns max_align_t alignment.
  static_assert(sizeof(BlockHeader) % 16 == 0 || alignof(std::max_align_t) >= 16,
                "data area alignment");
  void* raw = ::operator new(sizeof(BlockHeader) + data_bytes, std::nothrow);
  if (raw == nullptr) {
    return nullptr;
  }
  auto* blk = ::new (raw) BlockHeader();
  blk->owner = owner;
  blk->capacity = static_cast<std::uint32_t>(data_bytes);
  blk->size = 0;
  blk->size_class = size_class;
  return blk;
}

void delete_raw_block(BlockHeader* blk) noexcept {
  blk->~BlockHeader();
  ::operator delete(static_cast<void*>(blk));
}

// ---------------------------------------------------------------- SimplePool

namespace {
std::vector<BinSpec> default_bins() {
  // Small control frames, medium event fragments, bulk blocks up to the
  // I2O 256 KiB ceiling. A few hundred blocks total: enough that the
  // original scheme's best-fit walk has a visible cost, as it did in the
  // paper's Table 1.
  return {
      {256, 128}, {1024, 64}, {4096, 64},
      {16384, 32}, {65536, 16}, {kMaxBlockBytes, 8},
  };
}
}  // namespace

SimplePool::SimplePool() : SimplePool(default_bins()) {}

SimplePool::SimplePool(const std::vector<BinSpec>& bins) {
  // Provision in the given order; every block goes onto the single free
  // list (LIFO, so the last-provisioned block is at the head).
  for (const auto& spec : bins) {
    for (std::size_t i = 0; i < spec.block_count; ++i) {
      BlockHeader* blk = new_raw_block(this, spec.block_bytes, 0);
      if (blk == nullptr) {
        break;  // provision as much as memory allows
      }
      storage_.push_back(blk);
      blk->next_free = free_head_;
      free_head_ = blk;
      ++free_count_;
      stats_.bytes_reserved += spec.block_bytes;
    }
  }
}

SimplePool::~SimplePool() {
  for (void* raw : storage_) {
    delete_raw_block(static_cast<BlockHeader*>(raw));
  }
}

Result<FrameRef> SimplePool::allocate(std::size_t bytes) {
  if (bytes > kMaxBlockBytes) {
    const std::scoped_lock lock(mutex_);
    ++stats_.failures;
    return {Errc::InvalidArgument, "request exceeds 256 KiB block limit"};
  }
  const std::scoped_lock lock(mutex_);
  // The original scheme: walk the whole list for the best (smallest
  // adequate) block. This linear matching from requested size to block is
  // what the optimized table scheme replaces with an index.
  BlockHeader* best = nullptr;
  BlockHeader* best_prev = nullptr;
  BlockHeader* prev = nullptr;
  for (BlockHeader* cur = free_head_; cur != nullptr;
       prev = cur, cur = cur->next_free) {
    if (cur->capacity >= bytes &&
        (best == nullptr || cur->capacity < best->capacity)) {
      best = cur;
      best_prev = prev;
    }
  }
  if (best == nullptr) {
    ++stats_.failures;
    return {Errc::ResourceExhausted, "no free block large enough"};
  }
  if (best_prev == nullptr) {
    free_head_ = best->next_free;
  } else {
    best_prev->next_free = best->next_free;
  }
  --free_count_;
  best->next_free = nullptr;
  best->size = static_cast<std::uint32_t>(bytes);
  best->refcount.store(1, std::memory_order_relaxed);
  ++stats_.allocs;
  ++stats_.outstanding;
  return FrameRef::adopt(best);
}

void SimplePool::recycle(BlockHeader* blk) noexcept {
  {
    const std::scoped_lock lock(mutex_);
    blk->size = 0;
    blk->next_free = free_head_;
    free_head_ = blk;
    ++free_count_;
    ++stats_.frees;
    --stats_.outstanding;
  }
  notify_reclaim();  // outside the free-list lock
}

PoolStats SimplePool::stats() const {
  const std::scoped_lock lock(mutex_);
  PoolStats s = stats_;
  s.views = view_count();
  return s;
}

std::size_t SimplePool::free_count() const {
  const std::scoped_lock lock(mutex_);
  return free_count_;
}

std::size_t SimplePool::block_count() const {
  const std::scoped_lock lock(mutex_);
  return storage_.size();
}

// ----------------------------------------------------------------- TablePool

namespace {
/// Thread-cache policy: only classes this small are stashed per thread
/// (bulk blocks would pin megabytes per thread), at most this many blocks
/// per class per thread.
constexpr std::size_t kThreadCacheMaxBlockBytes = 16 * 1024;
constexpr std::size_t kThreadCacheDepth = 8;

/// Guards thread-cache registration and teardown across ALL TablePools -
/// taken only on thread/pool creation and destruction, never on the
/// alloc/recycle fast path.
std::mutex g_cache_registry_mutex;
}  // namespace

/// One thread's stash of free blocks for one pool. Owned by the thread
/// (via ThreadCacheHolder below); registered with the pool so either side
/// can tear it down first: the pool's destructor detaches every shard it
/// still owns, and a thread's exit returns blocks to every pool still
/// alive. Both walk under g_cache_registry_mutex.
struct TablePool::ThreadCache {
  const TablePool* pool = nullptr;  ///< null once detached (pool destroyed)
  std::vector<std::vector<BlockHeader*>> bins;  ///< per size class
  std::size_t total = 0;                        ///< blocks across all bins
};

/// thread_local holder: destroys (flushes) every shard on thread exit.
struct ThreadCacheHolder {
  std::vector<std::unique_ptr<TablePool::ThreadCache>> shards;

  ~ThreadCacheHolder() {
    const std::scoped_lock lock(g_cache_registry_mutex);
    for (auto& shard : shards) {
      if (shard->pool == nullptr) {
        continue;
      }
      auto* pool = const_cast<TablePool*>(shard->pool);
      pool->return_cached_blocks(*shard);
      auto& reg = pool->caches_;
      reg.erase(std::remove(reg.begin(), reg.end(), shard.get()), reg.end());
      shard->pool = nullptr;
    }
  }
};

namespace {
thread_local ThreadCacheHolder t_cache_holder;
}  // namespace

TablePool::TablePool(std::size_t min_class_bytes, bool hugepages)
    : min_class_bytes_(std::bit_ceil(std::max<std::size_t>(min_class_bytes,
                                                           16))),
      hugepages_(hugepages) {
#if !defined(__linux__)
  hugepages_ = false;  // MAP_HUGETLB is Linux-only
#endif
  min_class_shift_ =
      static_cast<unsigned>(std::countr_zero(min_class_bytes_));
  std::size_t sz = min_class_bytes_;
  while (sz < kMaxBlockBytes) {
    classes_.emplace_back().block_bytes = sz;
    sz <<= 1;
  }
  classes_.emplace_back().block_bytes = kMaxBlockBytes;
}

TablePool::~TablePool() {
  {
    // Detach surviving thread caches: their blocks are owned by
    // cls.storage and freed below, so the shards just drop the pointers.
    const std::scoped_lock lock(g_cache_registry_mutex);
    for (ThreadCache* tc : caches_) {
      for (auto& bin : tc->bins) {
        bin.clear();
      }
      tc->total = 0;
      tc->pool = nullptr;
    }
    caches_.clear();
  }
  for (SizeClass& cls : classes_) {
    for (void* raw : cls.storage) {
      delete_raw_block(static_cast<BlockHeader*>(raw));
    }
  }
#if defined(__linux__)
  // Arena-backed blocks never appear in cls.storage; their memory goes
  // away with the arena itself.
  for (const Arena& arena : arenas_) {
    ::munmap(arena.base, arena.bytes);
  }
#endif
}

BlockHeader* TablePool::carve_from_arena(SizeClass& cls, std::uint32_t idx) {
#if defined(__linux__)
  constexpr std::size_t kHugePageBytes = 2 * 1024 * 1024;
  // Header + data per block, rounded so every data area stays 16-aligned.
  const std::size_t step =
      (sizeof(BlockHeader) + cls.block_bytes + 15U) & ~std::size_t{15};
  const std::size_t arena_bytes =
      ((step + kHugePageBytes - 1) / kHugePageBytes) * kHugePageBytes;
  void* base = ::mmap(nullptr, arena_bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (base == MAP_FAILED) {
    // First-failure latch: the kernel has no hugepages to give (or the
    // reservation ran out); stop asking and let growth fall back to heap
    // blocks for the rest of this pool's life.
    hugepages_ok_.store(false, std::memory_order_relaxed);
    return nullptr;
  }
  {
    const std::scoped_lock lock(arenas_mutex_);
    arenas_.push_back({base, arena_bytes});
  }
  hugepage_bytes_.fetch_add(arena_bytes, std::memory_order_relaxed);
  const std::size_t count = arena_bytes / step;
  auto* bytes = static_cast<std::byte*>(base);
  BlockHeader* first = nullptr;
  for (std::size_t i = 0; i < count; ++i) {
    auto* blk = ::new (bytes + i * step) BlockHeader();
    blk->owner = this;
    blk->capacity = static_cast<std::uint32_t>(cls.block_bytes);
    blk->size = 0;
    blk->size_class = idx;
    blk->flags = kBlockArenaBacked;
    if (first == nullptr) {
      first = blk;
    } else {
      blk->next_free = cls.free_list;
      cls.free_list = blk;
      ++cls.free_count;
    }
  }
  stats_.grows.fetch_add(count, std::memory_order_relaxed);
  stats_.bytes_reserved.fetch_add(count * cls.block_bytes,
                                  std::memory_order_relaxed);
  return first;
#else
  (void)cls;
  (void)idx;
  hugepages_ok_.store(false, std::memory_order_relaxed);
  return nullptr;
#endif
}

void TablePool::warm_thread_cache() { (void)thread_cache(/*create=*/true); }

TablePool::ThreadCache* TablePool::thread_cache(bool create) const {
  auto& shards = t_cache_holder.shards;
  ThreadCache* stale = nullptr;
  for (const auto& shard : shards) {
    if (shard->pool == this) {
      return shard.get();
    }
    if (shard->pool == nullptr && stale == nullptr) {
      stale = shard.get();
    }
  }
  if (!create) {
    return nullptr;
  }
  ThreadCache* tc = stale;
  if (tc == nullptr) {
    try {
      shards.push_back(std::make_unique<ThreadCache>());
    } catch (...) {
      return nullptr;
    }
    tc = shards.back().get();
  }
  // Pre-size every bin so recycle() never allocates (it is noexcept).
  tc->bins.assign(classes_.size(), {});
  for (auto& bin : tc->bins) {
    bin.reserve(kThreadCacheDepth);
  }
  tc->total = 0;
  tc->pool = this;
  const std::scoped_lock lock(g_cache_registry_mutex);
  caches_.push_back(tc);
  return tc;
}

void TablePool::return_cached_blocks(ThreadCache& tc) noexcept {
  for (std::size_t idx = 0; idx < tc.bins.size(); ++idx) {
    auto& bin = tc.bins[idx];
    if (bin.empty()) {
      continue;
    }
    SizeClass& cls = classes_[idx];
    const std::scoped_lock lock(cls.mutex);
    for (BlockHeader* blk : bin) {
      blk->next_free = cls.free_list;
      cls.free_list = blk;
      ++cls.free_count;
    }
    bin.clear();
  }
  tc.total = 0;
}

void TablePool::flush_thread_cache() {
  if (ThreadCache* tc = thread_cache(/*create=*/false)) {
    return_cached_blocks(*tc);
  }
}

std::size_t TablePool::thread_cached_blocks() const {
  const ThreadCache* tc = thread_cache(/*create=*/false);
  return tc == nullptr ? 0 : tc->total;
}

std::size_t TablePool::size_class_of(std::size_t bytes) const {
  if (bytes <= min_class_bytes_) {
    return 0;
  }
  // Index = position of the highest set bit relative to the minimum class,
  // i.e. the table-based size -> class matching the paper describes.
  const std::size_t rounded = std::bit_ceil(bytes);
  const auto shift =
      static_cast<unsigned>(std::countr_zero(rounded)) - min_class_shift_;
  return std::min<std::size_t>(shift, classes_.size() - 1);
}

std::size_t TablePool::class_block_bytes(std::size_t cls) const {
  return classes_.at(cls).block_bytes;
}

Result<FrameRef> TablePool::allocate(std::size_t bytes) {
  if (bytes > kMaxBlockBytes) {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    return {Errc::InvalidArgument, "request exceeds 256 KiB block limit"};
  }
  const std::size_t idx = size_class_of(bytes);
  SizeClass& cls = classes_[idx];
  BlockHeader* blk = nullptr;
  // Fast path: the calling thread's own stash - no lock at all.
  if (cls.block_bytes <= kThreadCacheMaxBlockBytes) {
    if (ThreadCache* tc = thread_cache(/*create=*/true)) {
      auto& bin = tc->bins[idx];
      if (!bin.empty()) {
        blk = bin.back();
        bin.pop_back();
        --tc->total;
      }
    }
  }
  bool grew = false;
  if (blk == nullptr) {
    const std::scoped_lock lock(cls.mutex);
    blk = cls.free_list;
    if (blk != nullptr) {
      cls.free_list = blk->next_free;
      --cls.free_count;
    } else {
      // On-demand growth. With hugepage backing, carve a whole 2 MiB
      // arena into blocks of this class (first block returned, rest onto
      // the free list); otherwise - or once hugepages have failed - grow
      // one heap block at a time as before.
      if (hugepages_ && hugepages_ok_.load(std::memory_order_relaxed)) {
        blk = carve_from_arena(cls, static_cast<std::uint32_t>(idx));
        grew = blk != nullptr;
      }
      if (blk == nullptr) {
        blk = new_raw_block(this, cls.block_bytes,
                            static_cast<std::uint32_t>(idx));
        if (blk == nullptr) {
          stats_.failures.fetch_add(1, std::memory_order_relaxed);
          return {Errc::ResourceExhausted, "out of memory growing pool"};
        }
        cls.storage.push_back(blk);
        grew = true;
        stats_.grows.fetch_add(1, std::memory_order_relaxed);
        stats_.bytes_reserved.fetch_add(cls.block_bytes,
                                        std::memory_order_relaxed);
      }
    }
  }
  if (grew) {
    notify_grow();  // outside the class lock, like notify_reclaim
  }
  blk->next_free = nullptr;
  blk->size = static_cast<std::uint32_t>(bytes);
  blk->refcount.store(1, std::memory_order_relaxed);
  stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  return FrameRef::adopt(blk);
}

void TablePool::recycle(BlockHeader* blk) noexcept {
  const std::size_t idx = blk->size_class;
  SizeClass& cls = classes_[idx];
  blk->size = 0;
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  // Fast path: stash in the calling thread's cache (lock-free). Only uses
  // an existing cache - creating one could allocate, and recycle must not.
  if (cls.block_bytes <= kThreadCacheMaxBlockBytes) {
    if (ThreadCache* tc = thread_cache(/*create=*/false)) {
      auto& bin = tc->bins[idx];
      if (bin.size() < kThreadCacheDepth) {
        bin.push_back(blk);  // no allocation: bins are pre-reserved
        ++tc->total;
        notify_reclaim();
        return;
      }
    }
  }
  {
    const std::scoped_lock lock(cls.mutex);
    blk->next_free = cls.free_list;
    cls.free_list = blk;
    ++cls.free_count;
  }
  notify_reclaim();
}

void TablePool::recycle_batch(std::span<BlockHeader* const> blks) noexcept {
  if (blks.empty()) {
    return;
  }
  // One stats update and one thread-cache lookup for the whole batch.
  stats_.frees.fetch_add(blks.size(), std::memory_order_relaxed);
  ThreadCache* tc = thread_cache(/*create=*/false);
  // Blocks that do not fit the thread cache are chained per class on the
  // stack, then each chain is spliced onto its class's free list under
  // ONE lock acquisition - a full dispatch batch of same-class frames
  // costs one mutex round trip instead of one per frame.
  constexpr std::size_t kMaxClasses = 24;  // 64 B .. 256 KiB is 13 classes
  struct Chain {
    BlockHeader* head = nullptr;
    BlockHeader* tail = nullptr;
    std::size_t count = 0;
  };
  std::array<Chain, kMaxClasses> chains{};
  for (BlockHeader* blk : blks) {
    const std::size_t idx = blk->size_class;
    SizeClass& cls = classes_[idx];
    blk->size = 0;
    if (tc != nullptr && cls.block_bytes <= kThreadCacheMaxBlockBytes) {
      auto& bin = tc->bins[idx];
      if (bin.size() < kThreadCacheDepth) {
        bin.push_back(blk);  // no allocation: bins are pre-reserved
        ++tc->total;
        continue;
      }
    }
    if (idx >= kMaxClasses) {  // unreachable with default class tables
      const std::scoped_lock lock(cls.mutex);
      blk->next_free = cls.free_list;
      cls.free_list = blk;
      ++cls.free_count;
      continue;
    }
    Chain& chain = chains[idx];
    blk->next_free = chain.head;
    chain.head = blk;
    if (chain.tail == nullptr) {
      chain.tail = blk;
    }
    ++chain.count;
  }
  for (std::size_t idx = 0; idx < chains.size(); ++idx) {
    Chain& chain = chains[idx];
    if (chain.head == nullptr) {
      continue;
    }
    SizeClass& cls = classes_[idx];
    const std::scoped_lock lock(cls.mutex);
    chain.tail->next_free = cls.free_list;
    cls.free_list = chain.head;
    cls.free_count += chain.count;
  }
  notify_reclaim();
}

PoolStats TablePool::stats() const {
  PoolStats s;
  // Load frees before allocs: a concurrent allocate/recycle pair can then
  // only make outstanding read high (alloc counted, free not yet), never
  // underflow below zero.
  s.frees = stats_.frees.load(std::memory_order_acquire);
  s.allocs = stats_.allocs.load(std::memory_order_relaxed);
  s.grows = stats_.grows.load(std::memory_order_relaxed);
  s.failures = stats_.failures.load(std::memory_order_relaxed);
  s.outstanding = s.allocs - s.frees;
  s.bytes_reserved = stats_.bytes_reserved.load(std::memory_order_relaxed);
  s.views = view_count();
  s.hugepage_bytes = hugepage_bytes_.load(std::memory_order_relaxed);
  return s;
}

std::size_t TablePool::class_free_count(std::size_t cls) const {
  const SizeClass& c = classes_.at(cls);
  const std::scoped_lock lock(c.mutex);
  return c.free_count;
}

}  // namespace xdaq::mem
