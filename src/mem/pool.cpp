#include "mem/pool.hpp"

#include <bit>
#include <cstdlib>
#include <new>

namespace xdaq::mem {

void FrameRef::release() noexcept {
  if (!blk_) {
    return;
  }
  if (blk_->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    blk_->owner->recycle(blk_);
  }
  blk_ = nullptr;
}

BlockHeader* new_raw_block(Pool* owner, std::size_t data_bytes,
                           std::uint32_t size_class) {
  // Keep the data area 16-byte aligned: header size is a multiple of 16 on
  // LP64 (asserted below), and operator new returns max_align_t alignment.
  static_assert(sizeof(BlockHeader) % 16 == 0 || alignof(std::max_align_t) >= 16,
                "data area alignment");
  void* raw = ::operator new(sizeof(BlockHeader) + data_bytes, std::nothrow);
  if (raw == nullptr) {
    return nullptr;
  }
  auto* blk = ::new (raw) BlockHeader();
  blk->owner = owner;
  blk->capacity = static_cast<std::uint32_t>(data_bytes);
  blk->size = 0;
  blk->size_class = size_class;
  return blk;
}

void delete_raw_block(BlockHeader* blk) noexcept {
  blk->~BlockHeader();
  ::operator delete(static_cast<void*>(blk));
}

// ---------------------------------------------------------------- SimplePool

namespace {
std::vector<BinSpec> default_bins() {
  // Small control frames, medium event fragments, bulk blocks up to the
  // I2O 256 KiB ceiling. A few hundred blocks total: enough that the
  // original scheme's best-fit walk has a visible cost, as it did in the
  // paper's Table 1.
  return {
      {256, 128}, {1024, 64}, {4096, 64},
      {16384, 32}, {65536, 16}, {kMaxBlockBytes, 8},
  };
}
}  // namespace

SimplePool::SimplePool() : SimplePool(default_bins()) {}

SimplePool::SimplePool(const std::vector<BinSpec>& bins) {
  // Provision in the given order; every block goes onto the single free
  // list (LIFO, so the last-provisioned block is at the head).
  for (const auto& spec : bins) {
    for (std::size_t i = 0; i < spec.block_count; ++i) {
      BlockHeader* blk = new_raw_block(this, spec.block_bytes, 0);
      if (blk == nullptr) {
        break;  // provision as much as memory allows
      }
      storage_.push_back(blk);
      blk->next_free = free_head_;
      free_head_ = blk;
      ++free_count_;
      stats_.bytes_reserved += spec.block_bytes;
    }
  }
}

SimplePool::~SimplePool() {
  for (void* raw : storage_) {
    delete_raw_block(static_cast<BlockHeader*>(raw));
  }
}

Result<FrameRef> SimplePool::allocate(std::size_t bytes) {
  if (bytes > kMaxBlockBytes) {
    const std::scoped_lock lock(mutex_);
    ++stats_.failures;
    return {Errc::InvalidArgument, "request exceeds 256 KiB block limit"};
  }
  const std::scoped_lock lock(mutex_);
  // The original scheme: walk the whole list for the best (smallest
  // adequate) block. This linear matching from requested size to block is
  // what the optimized table scheme replaces with an index.
  BlockHeader* best = nullptr;
  BlockHeader* best_prev = nullptr;
  BlockHeader* prev = nullptr;
  for (BlockHeader* cur = free_head_; cur != nullptr;
       prev = cur, cur = cur->next_free) {
    if (cur->capacity >= bytes &&
        (best == nullptr || cur->capacity < best->capacity)) {
      best = cur;
      best_prev = prev;
    }
  }
  if (best == nullptr) {
    ++stats_.failures;
    return {Errc::ResourceExhausted, "no free block large enough"};
  }
  if (best_prev == nullptr) {
    free_head_ = best->next_free;
  } else {
    best_prev->next_free = best->next_free;
  }
  --free_count_;
  best->next_free = nullptr;
  best->size = static_cast<std::uint32_t>(bytes);
  best->refcount.store(1, std::memory_order_relaxed);
  ++stats_.allocs;
  ++stats_.outstanding;
  return FrameRef::adopt(best);
}

void SimplePool::recycle(BlockHeader* blk) noexcept {
  const std::scoped_lock lock(mutex_);
  blk->size = 0;
  blk->next_free = free_head_;
  free_head_ = blk;
  ++free_count_;
  ++stats_.frees;
  --stats_.outstanding;
}

PoolStats SimplePool::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

std::size_t SimplePool::free_count() const {
  const std::scoped_lock lock(mutex_);
  return free_count_;
}

std::size_t SimplePool::block_count() const {
  const std::scoped_lock lock(mutex_);
  return storage_.size();
}

// ----------------------------------------------------------------- TablePool

TablePool::TablePool(std::size_t min_class_bytes)
    : min_class_bytes_(std::bit_ceil(std::max<std::size_t>(min_class_bytes,
                                                           16))) {
  min_class_shift_ =
      static_cast<unsigned>(std::countr_zero(min_class_bytes_));
  std::size_t sz = min_class_bytes_;
  while (sz < kMaxBlockBytes) {
    classes_.push_back(SizeClass{sz, nullptr, 0, {}});
    sz <<= 1;
  }
  classes_.push_back(SizeClass{kMaxBlockBytes, nullptr, 0, {}});
}

TablePool::~TablePool() {
  for (SizeClass& cls : classes_) {
    for (void* raw : cls.storage) {
      delete_raw_block(static_cast<BlockHeader*>(raw));
    }
  }
}

std::size_t TablePool::size_class_of(std::size_t bytes) const {
  if (bytes <= min_class_bytes_) {
    return 0;
  }
  // Index = position of the highest set bit relative to the minimum class,
  // i.e. the table-based size -> class matching the paper describes.
  const std::size_t rounded = std::bit_ceil(bytes);
  const auto shift =
      static_cast<unsigned>(std::countr_zero(rounded)) - min_class_shift_;
  return std::min<std::size_t>(shift, classes_.size() - 1);
}

std::size_t TablePool::class_block_bytes(std::size_t cls) const {
  return classes_.at(cls).block_bytes;
}

Result<FrameRef> TablePool::allocate(std::size_t bytes) {
  if (bytes > kMaxBlockBytes) {
    const std::scoped_lock lock(mutex_);
    ++stats_.failures;
    return {Errc::InvalidArgument, "request exceeds 256 KiB block limit"};
  }
  const std::size_t idx = size_class_of(bytes);
  const std::scoped_lock lock(mutex_);
  SizeClass& cls = classes_[idx];
  BlockHeader* blk = cls.free_list;
  if (blk != nullptr) {
    cls.free_list = blk->next_free;
    --cls.free_count;
  } else {
    // On-demand growth: the first allocation in a class creates its block.
    blk = new_raw_block(this, cls.block_bytes,
                        static_cast<std::uint32_t>(idx));
    if (blk == nullptr) {
      ++stats_.failures;
      return {Errc::ResourceExhausted, "out of memory growing pool"};
    }
    cls.storage.push_back(blk);
    ++stats_.grows;
    stats_.bytes_reserved += cls.block_bytes;
  }
  blk->next_free = nullptr;
  blk->size = static_cast<std::uint32_t>(bytes);
  blk->refcount.store(1, std::memory_order_relaxed);
  ++stats_.allocs;
  ++stats_.outstanding;
  return FrameRef::adopt(blk);
}

void TablePool::recycle(BlockHeader* blk) noexcept {
  const std::scoped_lock lock(mutex_);
  SizeClass& cls = classes_[blk->size_class];
  blk->size = 0;
  blk->next_free = cls.free_list;
  cls.free_list = blk;
  ++cls.free_count;
  ++stats_.frees;
  --stats_.outstanding;
}

PoolStats TablePool::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace xdaq::mem
