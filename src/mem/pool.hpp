// pool.hpp - executive-owned buffer pools and the zero-copy frame handle.
//
// Paper section 4: "All communication employs a zero-copy scheme as the
// message buffers are taken from the executive's memory pool. Memory is
// allocated in fixed sized blocks with a maximum length of 256 KB. ...
// Automatic garbage collection is provided, such that blocks are recycled
// if they are not referenced anymore."
//
// Two allocator schemes are provided, matching the evaluation:
//  * SimplePool  - the original scheme: statically provisioned blocks of
//    assorted fixed sizes on ONE free list, searched best-fit on every
//    allocation. The search is what made the paper's frameAlloc cost
//    2.18 us and dominate Table 1; the optimized scheme's contribution
//    was precisely to replace it with an indexed lookup.
//  * TablePool   - the optimized scheme: "allocates memory for the buffer
//    pool on demand. Furthermore it relies on a table based matching from
//    requested memory size to pool buffer size" (paper section 5).
//
// FrameRef is an intrusively reference-counted handle; when the last
// reference drops, the block returns to its pool (the paper's "automatic
// garbage collection").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::mem {

/// Largest usable block: one full I2O frame (256 KiB).
inline constexpr std::size_t kMaxBlockBytes = 256 * 1024;

class Pool;

/// BlockHeader::flags: block lives inside an mmap'd arena (hugepage
/// backing) - owned by the arena, never individually freed.
inline constexpr std::uint32_t kBlockArenaBacked = 1U << 0;

/// Header stored in front of every pooled block's data area. alignas(16)
/// keeps sizeof a multiple of 16 so the data area that follows stays
/// 16-byte aligned both for heap blocks and for arena-carved ones.
struct alignas(16) BlockHeader {
  Pool* owner = nullptr;
  BlockHeader* next_free = nullptr;  ///< intrusive free-list link
  std::atomic<std::uint32_t> refcount{0};
  std::uint32_t capacity = 0;   ///< usable data bytes following the header
  std::uint32_t size = 0;       ///< current logical frame length
  std::uint32_t size_class = 0; ///< owning bin/class index
  std::uint32_t flags = 0;      ///< kBlockArenaBacked etc.

  std::byte* data() noexcept {
    return reinterpret_cast<std::byte*>(this + 1);
  }
  const std::byte* data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

/// Reference-counted handle to a pooled block, or to a *view* - an
/// offset+length slice of a block. Copying shares the block; the block is
/// recycled when the last handle (whole-block or view) goes away. Views
/// let one pooled rx block carry several received frames: each frame is a
/// disjoint slice sharing the owning block's refcount, so the block
/// returns to its pool only after every frame cut from it is released.
class FrameRef {
 public:
  FrameRef() noexcept = default;

  /// Takes over a block whose refcount was already set to 1 by the pool.
  static FrameRef adopt(BlockHeader* blk) noexcept { return FrameRef(blk); }

  FrameRef(const FrameRef& other) noexcept
      : blk_(other.blk_), off_(other.off_), len_(other.len_) {
    retain();
  }
  FrameRef(FrameRef&& other) noexcept
      : blk_(other.blk_), off_(other.off_), len_(other.len_) {
    other.blk_ = nullptr;
    other.off_ = 0;
    other.len_ = 0;
  }
  FrameRef& operator=(const FrameRef& other) noexcept {
    if (this != &other) {
      release();
      blk_ = other.blk_;
      off_ = other.off_;
      len_ = other.len_;
      retain();
    }
    return *this;
  }
  FrameRef& operator=(FrameRef&& other) noexcept {
    if (this != &other) {
      release();
      blk_ = other.blk_;
      off_ = other.off_;
      len_ = other.len_;
      other.blk_ = nullptr;
      other.off_ = 0;
      other.len_ = 0;
    }
    return *this;
  }
  ~FrameRef() { release(); }

  [[nodiscard]] bool valid() const noexcept { return blk_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  [[nodiscard]] std::size_t size() const noexcept { return blk_ ? len_ : 0; }
  /// Bytes this handle may grow into: the block tail past the view offset.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return blk_ ? blk_->capacity - off_ : 0;
  }
  /// Offset of this handle's window into the owning block (0 for a
  /// whole-block handle).
  [[nodiscard]] std::size_t offset() const noexcept { return off_; }
  [[nodiscard]] bool is_view() const noexcept {
    return blk_ != nullptr && (off_ != 0 || len_ != blk_->size);
  }

  /// Logical resize within capacity. Returns false if it does not fit.
  /// Handle-local: resizing a view never disturbs sibling views of the
  /// same block. A whole-block handle also keeps BlockHeader::size in
  /// step for pool diagnostics.
  bool resize(std::size_t bytes) noexcept {
    if (!blk_ || off_ + bytes > blk_->capacity) {
      return false;
    }
    len_ = static_cast<std::uint32_t>(bytes);
    if (off_ == 0) {
      blk_->size = len_;
    }
    return true;
  }

  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return blk_ ? std::span<std::byte>(blk_->data() + off_, len_)
                : std::span<std::byte>{};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return blk_ ? std::span<const std::byte>(blk_->data() + off_, len_)
                : std::span<const std::byte>{};
  }

  /// A new handle covering `[offset, offset + length)` of this handle's
  /// window, sharing the block's refcount (the block is recycled only
  /// after the last view drops). Out-of-range requests return an invalid
  /// ref. The caller owns non-overlap of writable views.
  [[nodiscard]] FrameRef view(std::size_t offset, std::size_t length) const
      noexcept;

  /// Current number of handles on the block (diagnostics/tests only).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return blk_ ? blk_->refcount.load(std::memory_order_relaxed) : 0;
  }

  void reset() noexcept {
    release();
    blk_ = nullptr;
    off_ = 0;
    len_ = 0;
  }

  /// Batched-release support: if this handle is the sole owner, detaches
  /// and returns the block WITHOUT recycling it - the caller must hand it
  /// to Pool::recycle_batch (or recycle) promptly. Otherwise behaves like
  /// reset() and returns nullptr. Lets a dispatch loop return a whole
  /// batch of frames to the pool in one call.
  [[nodiscard]] BlockHeader* release_for_batch() noexcept;

 private:
  explicit FrameRef(BlockHeader* blk) noexcept
      : blk_(blk), len_(blk ? blk->size : 0) {}
  FrameRef(BlockHeader* blk, std::uint32_t off, std::uint32_t len) noexcept
      : blk_(blk), off_(off), len_(len) {}

  void retain() noexcept {
    if (blk_) {
      blk_->refcount.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept;

  BlockHeader* blk_ = nullptr;
  std::uint32_t off_ = 0;  ///< view offset into the block's data area
  std::uint32_t len_ = 0;  ///< this handle's logical length
};

/// Counters exposed by every pool.
struct PoolStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t grows = 0;        ///< on-demand block creations (TablePool)
  std::uint64_t failures = 0;     ///< allocation failures
  std::uint64_t outstanding = 0;  ///< blocks currently referenced
  std::uint64_t bytes_reserved = 0;
  std::uint64_t views = 0;  ///< sub-block views cut from this pool's blocks
  std::uint64_t hugepage_bytes = 0;  ///< bytes backed by hugepage arenas
};

/// Allocator interface. Implementations must be thread-safe: device
/// handlers in the executive thread and task-mode peer transports allocate
/// concurrently.
class Pool {
 public:
  virtual ~Pool() = default;

  /// Allocates a block with capacity >= bytes; size is preset to `bytes`.
  virtual Result<FrameRef> allocate(std::size_t bytes) = 0;

  /// Called by the last FrameRef; returns the block to the free store.
  virtual void recycle(BlockHeader* blk) noexcept = 0;

  /// Returns a batch of detached blocks (from FrameRef::release_for_batch)
  /// in one call, letting implementations amortize bookkeeping over the
  /// batch. Blocks must belong to this pool. Default: recycle one by one.
  virtual void recycle_batch(std::span<BlockHeader* const> blks) noexcept {
    for (BlockHeader* blk : blks) {
      recycle(blk);
    }
  }

  [[nodiscard]] virtual PoolStats stats() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Pre-creates any per-thread allocator state for the calling thread so
  /// the first allocation on a dispatch shard doesn't pay registration
  /// cost. Default: nothing to warm.
  virtual void warm_thread_cache() {}

  /// Sub-block views cut from this pool's blocks (FrameRef::view); kept on
  /// the base so view creation never takes a pool lock.
  [[nodiscard]] std::uint64_t view_count() const noexcept {
    return views_.load(std::memory_order_relaxed);
  }

  // -- reclaim notification -------------------------------------------------
  // A consumer whose allocate() failed (pool exhausted) can park itself and
  // arm a one-shot hook: the next recycle fires every registered listener,
  // which re-arms the parked consumer (e.g. a TCP connection whose read
  // interest was disarmed). The fast path costs ONE relaxed atomic load per
  // recycle while nothing is armed. Listeners must be cheap, must not
  // throw, and must not allocate from this pool or re-enter it.

  /// Registers `fn` under `owner` (the deregistration key).
  void add_reclaim_listener(const void* owner, std::function<void()> fn) {
    const std::scoped_lock lock(reclaim_mutex_);
    reclaim_listeners_.emplace_back(owner, std::move(fn));
  }
  /// Removes every listener registered under `owner`.
  void remove_reclaim_listener(const void* owner) noexcept {
    const std::scoped_lock lock(reclaim_mutex_);
    std::erase_if(reclaim_listeners_,
                  [owner](const auto& e) { return e.first == owner; });
  }
  /// Arms the one-shot notification (call after a failed allocate()).
  void arm_reclaim() noexcept {
    reclaim_armed_.store(true, std::memory_order_release);
  }

  // -- growth notification --------------------------------------------------
  // Consumers that register pool memory with an external party (the
  // io_uring engine provides pool blocks to the kernel as rx buffers) need
  // to hear when the pool gains capacity, not only when blocks come back:
  // a pool that GROWS can satisfy an allocation that previously failed
  // even though nothing was recycled. Growth is rare (TablePool creates a
  // block/arena the first time a class needs it), so listeners fire
  // unconditionally - no arming protocol. Same rules as reclaim listeners:
  // cheap, non-throwing, no re-entry into the pool.

  /// Registers `fn` under `owner` (the deregistration key).
  void add_grow_listener(const void* owner, std::function<void()> fn) {
    const std::scoped_lock lock(reclaim_mutex_);
    grow_listeners_.emplace_back(owner, std::move(fn));
    has_grow_listeners_.store(true, std::memory_order_release);
  }
  /// Removes every grow listener registered under `owner`.
  void remove_grow_listener(const void* owner) noexcept {
    const std::scoped_lock lock(reclaim_mutex_);
    std::erase_if(grow_listeners_,
                  [owner](const auto& e) { return e.first == owner; });
    has_grow_listeners_.store(!grow_listeners_.empty(),
                              std::memory_order_release);
  }

 protected:
  /// Fires the grow listeners. Implementations call this after creating
  /// new block storage, AFTER their free-list locks are released.
  void notify_grow() noexcept {
    if (!has_grow_listeners_.load(std::memory_order_acquire)) {
      return;  // fast path: nobody listening
    }
    const std::scoped_lock lock(reclaim_mutex_);
    for (const auto& [owner, fn] : grow_listeners_) {
      fn();
    }
  }

  /// Fires the armed listeners. Implementations call this at the end of
  /// every recycle path, AFTER their free-list locks are released (the
  /// listeners may take consumer-side locks).
  void notify_reclaim() noexcept {
    if (!reclaim_armed_.load(std::memory_order_relaxed)) {
      return;  // fast path: nothing armed, no RMW
    }
    if (!reclaim_armed_.exchange(false, std::memory_order_acq_rel)) {
      return;
    }
    const std::scoped_lock lock(reclaim_mutex_);
    for (const auto& [owner, fn] : reclaim_listeners_) {
      fn();
    }
  }

 private:
  friend class FrameRef;
  void note_view() noexcept {
    views_.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> views_{0};
  std::atomic<bool> reclaim_armed_{false};
  std::atomic<bool> has_grow_listeners_{false};
  std::mutex reclaim_mutex_;
  std::vector<std::pair<const void*, std::function<void()>>>
      reclaim_listeners_;
  std::vector<std::pair<const void*, std::function<void()>>>
      grow_listeners_;
};

/// Bin description for SimplePool provisioning.
struct BinSpec {
  std::size_t block_bytes;
  std::size_t block_count;
};

/// The original scheme: all blocks, of assorted fixed sizes, live on one
/// free list; every allocation walks the whole list for the best fit
/// (smallest adequate block), under one global lock. Recycled blocks are
/// pushed at the head, so the list loses its initial size ordering over
/// time - exactly the behaviour the optimized table scheme eliminates.
class SimplePool final : public Pool {
 public:
  /// Default provisioning mirrors a DAQ node: many small control blocks,
  /// fewer bulk-data blocks.
  SimplePool();
  explicit SimplePool(const std::vector<BinSpec>& bins);
  ~SimplePool() override;

  SimplePool(const SimplePool&) = delete;
  SimplePool& operator=(const SimplePool&) = delete;

  Result<FrameRef> allocate(std::size_t bytes) override;
  void recycle(BlockHeader* blk) noexcept override;
  [[nodiscard]] PoolStats stats() const override;
  [[nodiscard]] std::string name() const override { return "simple"; }

  /// Free blocks currently on the list (tests).
  [[nodiscard]] std::size_t free_count() const;
  /// Total provisioned blocks.
  [[nodiscard]] std::size_t block_count() const;

 private:
  mutable std::mutex mutex_;
  BlockHeader* free_head_ = nullptr;
  std::size_t free_count_ = 0;
  std::vector<void*> storage_;  ///< owned raw allocations
  PoolStats stats_;
};

/// The optimized scheme: power-of-two size classes indexed by a lookup
/// table, per-class free lists, blocks created on demand the first time a
/// class is used. This is the allocator the paper reports as cutting the
/// framework overhead from 8.9 us to 4.9 us per call.
///
/// Concurrency: each size class has its own lock, so the dispatch thread
/// and task-mode peer transports allocating different frame sizes never
/// serialize. On top of that, every thread keeps a small free-block cache
/// per pool for the small classes, making the common same-thread
/// alloc/recycle cycle lock-free. Cached blocks return to the owning size
/// class when the thread exits (or via flush_thread_cache), and PoolStats
/// stays exact through relaxed atomics.
class TablePool final : public Pool {
 public:
  static constexpr std::size_t kDefaultMinClass = 64;

  /// min_class_bytes: smallest block size (default 64 B). With
  /// `hugepages`, on-demand growth first tries to carve blocks out of
  /// 2 MiB MAP_HUGETLB arenas (fewer TLB misses on bulk traffic); the
  /// first mmap failure latches the feature off and growth falls back to
  /// ordinary heap blocks - no functional difference, just backing.
  explicit TablePool(std::size_t min_class_bytes = kDefaultMinClass,
                     bool hugepages = false);
  ~TablePool() override;

  TablePool(const TablePool&) = delete;
  TablePool& operator=(const TablePool&) = delete;

  Result<FrameRef> allocate(std::size_t bytes) override;
  void recycle(BlockHeader* blk) noexcept override;
  void recycle_batch(std::span<BlockHeader* const> blks) noexcept override;
  [[nodiscard]] PoolStats stats() const override;
  [[nodiscard]] std::string name() const override { return "table"; }

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t class_block_bytes(std::size_t cls) const;
  [[nodiscard]] std::size_t size_class_of(std::size_t bytes) const;

  /// Free blocks on a class's shared list (excludes thread-cached blocks;
  /// diagnostics/tests).
  [[nodiscard]] std::size_t class_free_count(std::size_t cls) const;
  /// Blocks currently stashed in the calling thread's cache for this pool.
  [[nodiscard]] std::size_t thread_cached_blocks() const;
  /// Returns the calling thread's cached blocks to the shared class lists.
  void flush_thread_cache();

  /// Registers (creates) the calling thread's cache eagerly; dispatch
  /// shards call this at startup so their first allocation is already on
  /// the lock-free path.
  void warm_thread_cache() override;

  /// True while hugepage arena carving is enabled and has not failed.
  [[nodiscard]] bool hugepages_active() const noexcept {
    return hugepages_ && hugepages_ok_.load(std::memory_order_relaxed);
  }

 private:
  struct SizeClass {
    std::size_t block_bytes = 0;
    mutable std::mutex mutex;  ///< guards free_list/free_count/storage
    BlockHeader* free_list = nullptr;
    std::size_t free_count = 0;
    std::vector<void*> storage;
  };

  /// Per-(thread, pool) stash of free blocks; defined in pool.cpp.
  struct ThreadCache;
  friend struct ThreadCacheHolder;

  /// Finds (optionally creating) the calling thread's cache for this pool.
  ThreadCache* thread_cache(bool create) const;
  /// Pushes every cached block back onto its class's shared free list.
  void return_cached_blocks(ThreadCache& tc) noexcept;

  /// Grows `cls` by carving an entire 2 MiB hugepage arena into blocks:
  /// the first block is returned, the rest go onto the class free list.
  /// Returns nullptr (and latches hugepages_ok_ off) when the mmap fails.
  /// Caller holds cls.mutex.
  BlockHeader* carve_from_arena(SizeClass& cls, std::uint32_t idx);

  /// Senders and the dispatch thread bump these on every frame, so a
  /// mutex here would re-serialize the hot path the class sharding just
  /// split up. Relaxed is enough: counters are exact totals, and tests
  /// only read them at quiescence.
  struct AtomicPoolStats {
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> grows{0};
    std::atomic<std::uint64_t> failures{0};
    // outstanding is derived (allocs - frees) rather than kept as its own
    // counter: one less locked RMW on every allocate AND every recycle.
    std::atomic<std::uint64_t> bytes_reserved{0};
  };

  /// deque, not vector: SizeClass owns a mutex and must never move.
  std::deque<SizeClass> classes_;
  std::size_t min_class_bytes_;
  unsigned min_class_shift_ = 0;
  mutable AtomicPoolStats stats_;

  /// Hugepage arena backing (see constructor doc). Arena blocks carry
  /// kBlockArenaBacked and are never individually freed; the destructor
  /// unmaps whole arenas instead.
  bool hugepages_ = false;
  std::atomic<bool> hugepages_ok_{true};  ///< first-failure latch
  std::atomic<std::uint64_t> hugepage_bytes_{0};
  struct Arena {
    void* base = nullptr;
    std::size_t bytes = 0;
  };
  std::mutex arenas_mutex_;
  std::vector<Arena> arenas_;

  /// Thread caches registered for this pool; guarded by the process-wide
  /// cache registry mutex in pool.cpp (registration and teardown only -
  /// never the alloc/recycle fast path).
  mutable std::vector<ThreadCache*> caches_;
};

/// Allocates `bytes` of raw storage holding a BlockHeader + data area and
/// initializes the header (refcount 0). Shared by both pool types.
BlockHeader* new_raw_block(Pool* owner, std::size_t data_bytes,
                           std::uint32_t size_class);
void delete_raw_block(BlockHeader* blk) noexcept;

}  // namespace xdaq::mem
