// pool.hpp - executive-owned buffer pools and the zero-copy frame handle.
//
// Paper section 4: "All communication employs a zero-copy scheme as the
// message buffers are taken from the executive's memory pool. Memory is
// allocated in fixed sized blocks with a maximum length of 256 KB. ...
// Automatic garbage collection is provided, such that blocks are recycled
// if they are not referenced anymore."
//
// Two allocator schemes are provided, matching the evaluation:
//  * SimplePool  - the original scheme: statically provisioned blocks of
//    assorted fixed sizes on ONE free list, searched best-fit on every
//    allocation. The search is what made the paper's frameAlloc cost
//    2.18 us and dominate Table 1; the optimized scheme's contribution
//    was precisely to replace it with an indexed lookup.
//  * TablePool   - the optimized scheme: "allocates memory for the buffer
//    pool on demand. Furthermore it relies on a table based matching from
//    requested memory size to pool buffer size" (paper section 5).
//
// FrameRef is an intrusively reference-counted handle; when the last
// reference drops, the block returns to its pool (the paper's "automatic
// garbage collection").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::mem {

/// Largest usable block: one full I2O frame (256 KiB).
inline constexpr std::size_t kMaxBlockBytes = 256 * 1024;

class Pool;

/// Header stored in front of every pooled block's data area.
struct BlockHeader {
  Pool* owner = nullptr;
  BlockHeader* next_free = nullptr;  ///< intrusive free-list link
  std::atomic<std::uint32_t> refcount{0};
  std::uint32_t capacity = 0;   ///< usable data bytes following the header
  std::uint32_t size = 0;       ///< current logical frame length
  std::uint32_t size_class = 0; ///< owning bin/class index

  std::byte* data() noexcept {
    return reinterpret_cast<std::byte*>(this + 1);
  }
  const std::byte* data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

/// Reference-counted handle to a pooled block. Copying shares the block;
/// the block is recycled when the last handle goes away.
class FrameRef {
 public:
  FrameRef() noexcept = default;

  /// Takes over a block whose refcount was already set to 1 by the pool.
  static FrameRef adopt(BlockHeader* blk) noexcept { return FrameRef(blk); }

  FrameRef(const FrameRef& other) noexcept : blk_(other.blk_) { retain(); }
  FrameRef(FrameRef&& other) noexcept : blk_(other.blk_) {
    other.blk_ = nullptr;
  }
  FrameRef& operator=(const FrameRef& other) noexcept {
    if (this != &other) {
      release();
      blk_ = other.blk_;
      retain();
    }
    return *this;
  }
  FrameRef& operator=(FrameRef&& other) noexcept {
    if (this != &other) {
      release();
      blk_ = other.blk_;
      other.blk_ = nullptr;
    }
    return *this;
  }
  ~FrameRef() { release(); }

  [[nodiscard]] bool valid() const noexcept { return blk_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return blk_ ? blk_->size : 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return blk_ ? blk_->capacity : 0;
  }

  /// Logical resize within capacity. Returns false if it does not fit.
  bool resize(std::size_t bytes) noexcept {
    if (!blk_ || bytes > blk_->capacity) {
      return false;
    }
    blk_->size = static_cast<std::uint32_t>(bytes);
    return true;
  }

  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return blk_ ? std::span<std::byte>(blk_->data(), blk_->size)
                : std::span<std::byte>{};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return blk_ ? std::span<const std::byte>(blk_->data(), blk_->size)
                : std::span<const std::byte>{};
  }

  /// Current number of handles on the block (diagnostics/tests only).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return blk_ ? blk_->refcount.load(std::memory_order_relaxed) : 0;
  }

  void reset() noexcept {
    release();
    blk_ = nullptr;
  }

 private:
  explicit FrameRef(BlockHeader* blk) noexcept : blk_(blk) {}

  void retain() noexcept {
    if (blk_) {
      blk_->refcount.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept;

  BlockHeader* blk_ = nullptr;
};

/// Counters exposed by every pool.
struct PoolStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t grows = 0;        ///< on-demand block creations (TablePool)
  std::uint64_t failures = 0;     ///< allocation failures
  std::uint64_t outstanding = 0;  ///< blocks currently referenced
  std::uint64_t bytes_reserved = 0;
};

/// Allocator interface. Implementations must be thread-safe: device
/// handlers in the executive thread and task-mode peer transports allocate
/// concurrently.
class Pool {
 public:
  virtual ~Pool() = default;

  /// Allocates a block with capacity >= bytes; size is preset to `bytes`.
  virtual Result<FrameRef> allocate(std::size_t bytes) = 0;

  /// Called by the last FrameRef; returns the block to the free store.
  virtual void recycle(BlockHeader* blk) noexcept = 0;

  [[nodiscard]] virtual PoolStats stats() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Bin description for SimplePool provisioning.
struct BinSpec {
  std::size_t block_bytes;
  std::size_t block_count;
};

/// The original scheme: all blocks, of assorted fixed sizes, live on one
/// free list; every allocation walks the whole list for the best fit
/// (smallest adequate block), under one global lock. Recycled blocks are
/// pushed at the head, so the list loses its initial size ordering over
/// time - exactly the behaviour the optimized table scheme eliminates.
class SimplePool final : public Pool {
 public:
  /// Default provisioning mirrors a DAQ node: many small control blocks,
  /// fewer bulk-data blocks.
  SimplePool();
  explicit SimplePool(const std::vector<BinSpec>& bins);
  ~SimplePool() override;

  SimplePool(const SimplePool&) = delete;
  SimplePool& operator=(const SimplePool&) = delete;

  Result<FrameRef> allocate(std::size_t bytes) override;
  void recycle(BlockHeader* blk) noexcept override;
  [[nodiscard]] PoolStats stats() const override;
  [[nodiscard]] std::string name() const override { return "simple"; }

  /// Free blocks currently on the list (tests).
  [[nodiscard]] std::size_t free_count() const;
  /// Total provisioned blocks.
  [[nodiscard]] std::size_t block_count() const;

 private:
  mutable std::mutex mutex_;
  BlockHeader* free_head_ = nullptr;
  std::size_t free_count_ = 0;
  std::vector<void*> storage_;  ///< owned raw allocations
  PoolStats stats_;
};

/// The optimized scheme: power-of-two size classes indexed by a lookup
/// table, per-class free lists, blocks created on demand the first time a
/// class is used. This is the allocator the paper reports as cutting the
/// framework overhead from 8.9 us to 4.9 us per call.
class TablePool final : public Pool {
 public:
  /// min_class_bytes: smallest block size (default 64 B).
  explicit TablePool(std::size_t min_class_bytes = 64);
  ~TablePool() override;

  TablePool(const TablePool&) = delete;
  TablePool& operator=(const TablePool&) = delete;

  Result<FrameRef> allocate(std::size_t bytes) override;
  void recycle(BlockHeader* blk) noexcept override;
  [[nodiscard]] PoolStats stats() const override;
  [[nodiscard]] std::string name() const override { return "table"; }

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t class_block_bytes(std::size_t cls) const;
  [[nodiscard]] std::size_t size_class_of(std::size_t bytes) const;

 private:
  struct SizeClass {
    std::size_t block_bytes = 0;
    BlockHeader* free_list = nullptr;
    std::size_t free_count = 0;
    std::vector<void*> storage;
  };

  mutable std::mutex mutex_;
  std::vector<SizeClass> classes_;
  std::size_t min_class_bytes_;
  unsigned min_class_shift_ = 0;
  PoolStats stats_;
};

/// Allocates `bytes` of raw storage holding a BlockHeader + data area and
/// initializes the header (refcount 0). Shared by both pool types.
BlockHeader* new_raw_block(Pool* owner, std::size_t data_bytes,
                           std::uint32_t size_class);
void delete_raw_block(BlockHeader* blk) noexcept;

}  // namespace xdaq::mem
