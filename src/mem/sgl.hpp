// sgl.hpp - scatter-gather lists over pooled blocks.
//
// The I2O architecture transmits data larger than one frame either by
// chaining frames (i2o/chain.hpp) or by attaching a Scatter-Gather List
// that references separately owned buffers. Inside a node the SGL is the
// zero-copy path: references are shared, nothing moves. Crossing a node
// boundary, a peer transport gathers the segments into the wire stream
// (the software analogue of DMA gather).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mem/pool.hpp"
#include "util/status.hpp"

namespace xdaq::mem {

/// An ordered list of pooled-buffer segments forming one logical message.
class ScatterGatherList {
 public:
  ScatterGatherList() = default;

  /// Appends a whole buffer as the next segment (shares the reference).
  void append(FrameRef buffer);

  /// Appends a sub-range [offset, offset+length) of a buffer.
  Status append(FrameRef buffer, std::size_t offset, std::size_t length);

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_;
  }

  /// Read-only view of segment i.
  [[nodiscard]] std::span<const std::byte> segment(std::size_t i) const;

  /// All segments in order, shaped for vectored I/O (writev/sendmsg):
  /// a transport hands these straight to the kernel and the wire gathers
  /// out of pooled memory - no gather_into flattening copy. The spans are
  /// valid for as long as this list holds its buffer references.
  [[nodiscard]] std::vector<std::span<const std::byte>> spans() const;

  /// Copies all segments, in order, into `out` (must be >= total_bytes()).
  Status gather_into(std::span<std::byte> out) const;

  /// Convenience: gather into a fresh vector.
  [[nodiscard]] std::vector<std::byte> gather() const;

  /// Splits `data` over blocks allocated from `pool`, each at most
  /// `max_segment` bytes, and returns the resulting list (used to stage a
  /// large application payload without one oversized copy).
  static Result<ScatterGatherList> scatter(Pool& pool,
                                           std::span<const std::byte> data,
                                           std::size_t max_segment);

  void clear() noexcept {
    segments_.clear();
    total_bytes_ = 0;
  }

 private:
  struct Segment {
    FrameRef buffer;
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::vector<Segment> segments_;
  std::size_t total_bytes_ = 0;
};

}  // namespace xdaq::mem
