#include "mem/sgl.hpp"

#include <algorithm>
#include <cstring>

namespace xdaq::mem {

void ScatterGatherList::append(FrameRef buffer) {
  const std::size_t len = buffer.size();
  segments_.push_back(Segment{std::move(buffer), 0, len});
  total_bytes_ += len;
}

Status ScatterGatherList::append(FrameRef buffer, std::size_t offset,
                                 std::size_t length) {
  if (!buffer.valid()) {
    return {Errc::InvalidArgument, "null buffer in SGL"};
  }
  if (offset > buffer.size() || length > buffer.size() - offset) {
    return {Errc::InvalidArgument, "SGL segment outside buffer"};
  }
  segments_.push_back(Segment{std::move(buffer), offset, length});
  total_bytes_ += length;
  return Status::ok();
}

std::span<const std::byte> ScatterGatherList::segment(std::size_t i) const {
  const Segment& s = segments_.at(i);
  return s.buffer.bytes().subspan(s.offset, s.length);
}

std::vector<std::span<const std::byte>> ScatterGatherList::spans() const {
  std::vector<std::span<const std::byte>> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) {
    out.push_back(s.buffer.bytes().subspan(s.offset, s.length));
  }
  return out;
}

Status ScatterGatherList::gather_into(std::span<std::byte> out) const {
  if (out.size() < total_bytes_) {
    return {Errc::InvalidArgument, "gather target too small"};
  }
  std::size_t off = 0;
  for (const Segment& s : segments_) {
    if (s.length != 0) {
      std::memcpy(out.data() + off, s.buffer.bytes().data() + s.offset,
                  s.length);
    }
    off += s.length;
  }
  return Status::ok();
}

std::vector<std::byte> ScatterGatherList::gather() const {
  std::vector<std::byte> out(total_bytes_);
  (void)gather_into(out);
  return out;
}

Result<ScatterGatherList> ScatterGatherList::scatter(
    Pool& pool, std::span<const std::byte> data, std::size_t max_segment) {
  if (max_segment == 0) {
    return {Errc::InvalidArgument, "max_segment must be positive"};
  }
  ScatterGatherList out;
  std::size_t off = 0;
  do {
    const std::size_t take = std::min(max_segment, data.size() - off);
    auto blk = pool.allocate(take);
    if (!blk.is_ok()) {
      return blk.status();
    }
    if (take != 0) {
      std::memcpy(blk.value().bytes().data(), data.data() + off, take);
    }
    out.append(std::move(blk).value());
    off += take;
  } while (off < data.size());
  return out;
}

}  // namespace xdaq::mem
