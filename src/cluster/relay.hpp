// relay.hpp - store-and-forward envelope for nodes without a direct link.
//
// When the route table says the next hop for node D is "relay via R", the
// sender wraps the fully encoded inner frame in a private kXdaq/kXfnRelay
// frame addressed to R's executive (TiD 1 on every node - no target
// lookup needed). Intermediate hops never unwrap: they decrement the TTL
// in place and forward the same envelope towards D, so the origin node id
// survives the trip and the final hop can intern the correct initiator
// proxy. A TTL of 0 drops the envelope (loop guard).
//
// Envelope payload layout (little-endian):
//   [u16 src node][u16 dst node][u8 ttl][u8 rsvd][u16 rsvd][u32 inner_len]
//   followed by the inner frame's `inner_len` encoded bytes.
#pragma once

#include <cstdint>
#include <span>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::cluster {

/// xfunction codes in the kXdaq private organization used by the cluster
/// fabric (0x0001/0x0002 are the core timer and event codes).
inline constexpr std::uint16_t kXfnGossip = 0x0003;
inline constexpr std::uint16_t kXfnRelay = 0x0004;

inline constexpr std::size_t kRelayHeaderBytes = 12;
inline constexpr std::uint8_t kDefaultRelayTtl = 8;

struct RelayHeader {
  i2o::NodeId src = i2o::kNullNode;  ///< originating node
  i2o::NodeId dst = i2o::kNullNode;  ///< final destination node
  std::uint8_t ttl = kDefaultRelayTtl;
  std::uint32_t inner_len = 0;  ///< encoded inner frame bytes
};

/// Writes the 12-byte relay header at the start of `payload`.
void encode_relay_header(const RelayHeader& hdr, std::span<std::byte> payload);

/// Parses + validates: payload must hold the header and inner_len bytes.
Result<RelayHeader> decode_relay_header(std::span<const std::byte> payload);

/// Patches only the TTL byte of an already encoded envelope payload.
void patch_relay_ttl(std::span<std::byte> payload, std::uint8_t ttl);

/// The inner frame bytes of a validated envelope payload.
[[nodiscard]] std::span<const std::byte> relay_inner(
    const RelayHeader& hdr, std::span<const std::byte> payload) noexcept;

}  // namespace xdaq::cluster
