// resolver.hpp - the one place remote TiDs are resolved to proxies.
//
// The API-redesign facade: callers ask "give me a proxy for device T on
// node N" and the resolver picks the route - a direct peer transport, a
// relay next hop, or a failure when the node is unroutable. It replaces
// every hand-wired (node, remote_tid, via_pt) triple in the tree; the
// executive's register_remote/register_remote_via survive only as thin
// deprecated shims over it.
//
// The resolver itself is route policy only. Interning (allocating the
// proxy TiD in the AddressTable, optionally naming it) is injected as a
// callback so this library stays free of core symbols.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/hash_ring.hpp"
#include "cluster/relay.hpp"
#include "cluster/route_table.hpp"
#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::cluster {

class Resolver {
 public:
  /// Interns a proxy for (node, remote_tid) reachable through local peer
  /// transport `via_pt`; via_pt == kNullTid marks a relay-routed proxy
  /// (the send path re-consults the route table per frame). `name` may be
  /// empty; otherwise it is registered for name lookup.
  using InternFn = std::function<Result<i2o::Tid>(
      i2o::NodeId node, i2o::Tid remote_tid, i2o::Tid via_pt,
      const std::string& name)>;

  Resolver(i2o::NodeId self, InternFn intern)
      : self_(self), intern_(std::move(intern)) {}

  [[nodiscard]] i2o::NodeId self() const noexcept { return self_; }

  /// Resolves a proxy TiD for device `remote_tid` on `node`, choosing the
  /// route from the route table. Fails with Errc::NotFound when no route
  /// exists and Errc::Unavailable when the relay hop is itself unroutable.
  Result<i2o::Tid> resolve(i2o::NodeId node, i2o::Tid remote_tid,
                           const std::string& name = {});

  /// Resolves with the route pinned to a specific local peer transport
  /// (the paper's multiple-transports-in-parallel configuration) instead
  /// of the table's next hop.
  Result<i2o::Tid> resolve_via(i2o::NodeId node, i2o::Tid remote_tid,
                               i2o::Tid via_pt, const std::string& name = {});

  /// Routing state. The route table is shared with the executive's send
  /// path; gossip and topology wiring mutate it through this accessor.
  [[nodiscard]] RouteTable& routes() noexcept { return routes_; }
  [[nodiscard]] const RouteTable& routes() const noexcept { return routes_; }
  [[nodiscard]] NextHop next_hop(i2o::NodeId node) const {
    return routes_.next_hop(node);
  }

  /// Consistent-hash placement of sharded device instances over member
  /// nodes (daq/topology's hashed layout draws from this ring).
  [[nodiscard]] HashRing& ring() noexcept { return ring_; }

  /// TTL stamped into new relay envelopes.
  [[nodiscard]] std::uint8_t initial_ttl() const noexcept { return ttl_; }
  void set_initial_ttl(std::uint8_t ttl) noexcept { ttl_ = ttl; }

 private:
  i2o::NodeId self_;
  InternFn intern_;
  RouteTable routes_;
  HashRing ring_;
  std::uint8_t ttl_ = kDefaultRelayTtl;
};

}  // namespace xdaq::cluster
