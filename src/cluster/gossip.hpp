// gossip.hpp - SWIM-style membership dissemination over I2O frames.
//
// One GossipDevice runs per node. Every protocol period (a core timer,
// or an explicit tick() in deterministic tests) it:
//   1. runs the failure detector: peers quiet for `suspect_after` periods
//      become Suspect, for `dead_after` periods Dead;
//   2. picks `fanout` random Alive peers and pushes its full member map
//      to each (dissemination doubles as the heartbeat);
//   3. probes one non-Alive peer round-robin - the "gossip to the dead"
//      step without which two sides of a healed partition would keep each
//      other Dead forever.
// Inbound gossip arrives through the executive's kernel (kXdaq/kXfnGossip
// frames are addressed to TiD 1, which every node has) and is forwarded
// to on_gossip() via Executive::set_gossip_sink.
//
// Gossip payload: [u16 sender node] ++ MemberMap wire encoding.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/member_map.hpp"
#include "core/device.hpp"
#include "obs/metrics.hpp"
#include "util/random.hpp"

namespace xdaq::cluster {

class GossipDevice final : public core::Device {
 public:
  struct Config {
    /// Protocol period. 0 disables the timer; tests drive tick() by hand.
    std::chrono::nanoseconds period = std::chrono::milliseconds(20);
    /// Quiet periods after which a peer is suspected / declared dead.
    std::uint32_t suspect_after = 4;
    std::uint32_t dead_after = 10;
    /// Alive peers pushed to per period.
    std::size_t fanout = 2;
    std::uint64_t seed = 1;
  };

  explicit GossipDevice(i2o::NodeId self) : GossipDevice(self, Config{}) {}
  GossipDevice(i2o::NodeId self, Config cfg);

  [[nodiscard]] MemberMap& map() noexcept { return map_; }
  [[nodiscard]] const MemberMap& map() const noexcept { return map_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return tick_.load(std::memory_order_relaxed);
  }

  /// One protocol period: failure detection + dissemination. Also the
  /// timer callback; callable directly for deterministic tests.
  void tick();

  /// Inbound gossip payload (wired via Executive::set_gossip_sink).
  void on_gossip(std::span<const std::byte> payload);

  /// Transport-liveness hint (wired via Executive::add_peer_state_listener):
  /// a peer the transport lost is suspected without waiting out the
  /// quiet-period budget.
  void on_peer_down(i2o::NodeId node);

 protected:
  void plugin() override;
  Status on_enable() override;
  Status on_halt() override;
  void on_timer(std::uint32_t timer_id) override;

 private:
  std::vector<std::byte> make_payload() const;
  void push_to(i2o::NodeId peer, std::span<const std::byte> payload);

  Config cfg_;
  MemberMap map_;
  Rng rng_;

  std::mutex mutex_;  ///< guards last_heard_ and probe_cursor_
  std::map<i2o::NodeId, std::uint64_t> last_heard_;
  std::size_t probe_cursor_ = 0;

  std::atomic<std::uint64_t> tick_{0};
  std::uint32_t timer_id_ = 0;

  obs::Counter* sent_ = nullptr;
  obs::Counter* received_ = nullptr;
  obs::Counter* changes_ = nullptr;
  obs::Counter* suspected_ = nullptr;
  obs::Counter* deaths_ = nullptr;
};

}  // namespace xdaq::cluster
