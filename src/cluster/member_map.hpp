// member_map.hpp - the versioned cluster member map.
//
// ROADMAP item 2: the paper's deployment wires a handful of nodes
// statically; a real processing cluster needs every node to learn, at
// run time, who is up. The member map is the SWIM-style data structure
// gossip disseminates: per-node (incarnation, status) entries merged
// under the usual precedence rules, plus a monotonic map version that
// survives rejoin (the versioned-pool-map idea from DAOS' srv_pool).
//
// Precedence (SWIM): a claim about node N wins when its incarnation is
// higher, or - at equal incarnation - when its status is "stronger"
// (Dead > Suspect > Alive). Only N itself may bump N's incarnation
// (refutation): hearing that you are suspected or dead, you increment
// your incarnation and gossip Alive, which overrides the rumour
// everywhere.
//
// Thread-safe: gossip receive (dispatch thread), the protocol timer and
// peer-state sinks all touch one map.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::cluster {

enum class MemberStatus : std::uint8_t { Alive = 0, Suspect = 1, Dead = 2 };

std::string_view to_string(MemberStatus s) noexcept;

struct Member {
  i2o::NodeId node = i2o::kNullNode;
  std::uint32_t incarnation = 0;
  MemberStatus status = MemberStatus::Alive;
};

class MemberMap {
 public:
  explicit MemberMap(i2o::NodeId self) : self_(self) {
    members_[self] = Member{self, 0, MemberStatus::Alive};
  }

  [[nodiscard]] i2o::NodeId self() const noexcept { return self_; }

  /// Monotonic map version: bumped on every effective change and raised
  /// to at least the version carried by any merged-in remote map. Never
  /// decreases, including across a member's leave/rejoin cycle.
  [[nodiscard]] std::uint64_t version() const;

  /// This node's current incarnation.
  [[nodiscard]] std::uint32_t self_incarnation() const;

  /// Applies one claim under SWIM precedence. Returns true when the map
  /// changed. Claims about self that would mark it Suspect/Dead trigger
  /// refutation instead (incarnation bump + Alive).
  bool observe(const Member& claim);

  /// Local failure-detector verdicts about a peer (no-ops on self).
  bool suspect(i2o::NodeId node);
  bool confirm_dead(i2o::NodeId node);
  /// Direct evidence of life (a frame arrived from `node`): clears a
  /// Suspect verdict at the same incarnation. Deliberately does NOT
  /// resurrect Dead - only a higher incarnation (refutation) may.
  bool note_alive(i2o::NodeId node);

  /// Refute rumours about self: bump incarnation, force Alive.
  void refute();

  [[nodiscard]] std::optional<Member> get(i2o::NodeId node) const;
  [[nodiscard]] std::vector<Member> members() const;
  /// Peers (self excluded) whose status matches the filter.
  [[nodiscard]] std::vector<i2o::NodeId> peers_with_status(
      MemberStatus status) const;
  [[nodiscard]] std::size_t size() const;

  // --- wire format ---------------------------------------------------------
  // [u64 version][u16 count] then per member [u16 node][u32 inc][u8 status].

  [[nodiscard]] std::vector<std::byte> encode() const;

  struct Decoded {
    std::uint64_t version = 0;
    std::vector<Member> members;
  };
  static Result<Decoded> decode(std::span<const std::byte> bytes);

  /// Merges a decoded remote map: every remote claim is observe()d and
  /// the local version is raised to max(local, remote) (+1 when anything
  /// changed). Returns the number of entries that changed.
  std::size_t merge(const Decoded& remote);

  /// Raises the map version to at least `floor`. Used by the replicated
  /// control plane to re-anchor a rejoining node's map at the committed
  /// cluster-wide version, so its gossip never re-announces a stale map.
  /// Returns true when the version moved.
  bool raise_version(std::uint64_t floor);

  /// Wraparound-safe incarnation precedence (RFC 1982 serial-number
  /// compare): `a` is newer than `b` when the signed distance is
  /// positive. A node that lived long enough to wrap its u32 incarnation
  /// must still refute rumours pinned just below the wrap point.
  [[nodiscard]] static bool incarnation_newer(std::uint32_t a,
                                              std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) > 0;
  }

 private:
  static bool wins(const Member& challenger, const Member& incumbent);
  bool observe_locked(const Member& claim);

  i2o::NodeId self_;
  mutable std::mutex mutex_;
  std::map<i2o::NodeId, Member> members_;
  std::uint64_t version_ = 1;
};

}  // namespace xdaq::cluster
