#include "cluster/route_table.hpp"

namespace xdaq::cluster {

void RouteTable::set_direct(i2o::NodeId node, i2o::Tid via_pt) {
  const std::unique_lock lock(mutex_);
  hops_[node] = NextHop{NextHop::Kind::Direct, via_pt, i2o::kNullNode};
}

void RouteTable::set_relay(i2o::NodeId node, i2o::NodeId relay_node) {
  const std::unique_lock lock(mutex_);
  hops_[node] = NextHop{NextHop::Kind::Relay, i2o::kNullTid, relay_node};
}

void RouteTable::erase(i2o::NodeId node) {
  const std::unique_lock lock(mutex_);
  hops_.erase(node);
}

void RouteTable::clear() {
  const std::unique_lock lock(mutex_);
  hops_.clear();
}

NextHop RouteTable::next_hop(i2o::NodeId node) const {
  const std::shared_lock lock(mutex_);
  const auto it = hops_.find(node);
  return it == hops_.end() ? NextHop{} : it->second;
}

std::size_t RouteTable::size() const {
  const std::shared_lock lock(mutex_);
  return hops_.size();
}

std::vector<i2o::NodeId> RouteTable::direct_nodes() const {
  const std::shared_lock lock(mutex_);
  std::vector<i2o::NodeId> out;
  for (const auto& [node, hop] : hops_) {
    if (hop.kind == NextHop::Kind::Direct) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace xdaq::cluster
