// peer_spec.hpp - one description for every peer-transport flavour.
//
// The API-redesign satellite: TCP, FIFO, GM and local-bus peers used to
// be configured through per-transport ad-hoc structs duplicated across
// daq/topology and the bench harnesses. A PeerSpec is the single
// topology-level description - parseable from a short string - that the
// pt layer turns into a concrete TransportDevice (pt::make_transport).
//
// Grammar:
//   "gm"             GM fabric, polling mode
//   "gm:task"        GM fabric, task mode (blocking receive thread)
//   "local"          in-process local bus
//   "local:task"     in-process local bus, task mode
//   "fifo:<path>"    named-pipe transport rooted at <path>
//   "tcp:<host>:<port>"  TCP transport
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/transport.hpp"
#include "util/status.hpp"

namespace xdaq::cluster {

struct PeerSpec {
  enum class Kind : std::uint8_t { Gm = 0, LocalBus = 1, Fifo = 2, Tcp = 3 };

  Kind kind = Kind::Gm;
  core::TransportDevice::Mode mode = core::TransportDevice::Mode::Polling;
  /// Liveness/backoff/retry tuning shared by every transport flavour.
  core::TransportConfig tuning;

  // Kind-specific addressing.
  std::string host;         ///< Tcp
  std::uint16_t port = 0;   ///< Tcp
  std::string path;         ///< Fifo

  /// Receive-ring sizing (Gm; 0 = transport default). Exposed here so a
  /// 64-node in-process run can shrink per-node buffers without touching
  /// transport-specific config types.
  std::size_t receive_buffers = 0;
  std::size_t buffer_bytes = 0;

  static Result<PeerSpec> parse(std::string_view text);

  /// Canonical string form (round-trips through parse()).
  [[nodiscard]] std::string describe() const;
};

std::string_view to_string(PeerSpec::Kind k) noexcept;

}  // namespace xdaq::cluster
