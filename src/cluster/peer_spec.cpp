#include "cluster/peer_spec.hpp"

#include <charconv>

namespace xdaq::cluster {

std::string_view to_string(PeerSpec::Kind k) noexcept {
  switch (k) {
    case PeerSpec::Kind::Gm:
      return "gm";
    case PeerSpec::Kind::LocalBus:
      return "local";
    case PeerSpec::Kind::Fifo:
      return "fifo";
    case PeerSpec::Kind::Tcp:
      return "tcp";
  }
  return "?";
}

Result<PeerSpec> PeerSpec::parse(std::string_view text) {
  PeerSpec spec;
  const auto strip_task = [&spec](std::string_view s) {
    constexpr std::string_view kTask = ":task";
    if (s.size() >= kTask.size() &&
        s.substr(s.size() - kTask.size()) == kTask) {
      spec.mode = core::TransportDevice::Mode::Task;
      return s.substr(0, s.size() - kTask.size());
    }
    return s;
  };
  if (text == "gm" || text == "gm:task") {
    spec.kind = Kind::Gm;
    (void)strip_task(text);
    return spec;
  }
  if (text == "local" || text == "local:task") {
    spec.kind = Kind::LocalBus;
    (void)strip_task(text);
    return spec;
  }
  if (text.starts_with("fifo:")) {
    spec.kind = Kind::Fifo;
    spec.path = std::string(text.substr(5));
    if (spec.path.empty()) {
      return {Errc::InvalidArgument, "fifo peer spec needs a path"};
    }
    return spec;
  }
  if (text.starts_with("tcp:")) {
    spec.kind = Kind::Tcp;
    const std::string_view rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return {Errc::InvalidArgument, "tcp peer spec is tcp:<host>:<port>"};
    }
    spec.host = std::string(rest.substr(0, colon));
    const std::string_view port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 0xFFFF) {
      return {Errc::InvalidArgument,
              "tcp peer spec port is not a valid port number"};
    }
    spec.port = static_cast<std::uint16_t>(port);
    return spec;
  }
  return {Errc::InvalidArgument,
          "unknown peer spec '" + std::string(text) + "'"};
}

std::string PeerSpec::describe() const {
  std::string out{to_string(kind)};
  switch (kind) {
    case Kind::Fifo:
      out += ":" + path;
      break;
    case Kind::Tcp:
      out += ":" + host + ":" + std::to_string(port);
      break;
    case Kind::Gm:
    case Kind::LocalBus:
      if (mode == core::TransportDevice::Mode::Task) {
        out += ":task";
      }
      break;
  }
  return out;
}

}  // namespace xdaq::cluster
