#include "cluster/member_map.hpp"

#include "i2o/wire.hpp"

namespace xdaq::cluster {

std::string_view to_string(MemberStatus s) noexcept {
  switch (s) {
    case MemberStatus::Alive:
      return "Alive";
    case MemberStatus::Suspect:
      return "Suspect";
    case MemberStatus::Dead:
      return "Dead";
  }
  return "?";
}

std::uint64_t MemberMap::version() const {
  const std::scoped_lock lock(mutex_);
  return version_;
}

std::uint32_t MemberMap::self_incarnation() const {
  const std::scoped_lock lock(mutex_);
  return members_.at(self_).incarnation;
}

bool MemberMap::wins(const Member& challenger, const Member& incumbent) {
  if (challenger.incarnation != incumbent.incarnation) {
    return incarnation_newer(challenger.incarnation, incumbent.incarnation);
  }
  return static_cast<std::uint8_t>(challenger.status) >
         static_cast<std::uint8_t>(incumbent.status);
}

bool MemberMap::observe_locked(const Member& claim) {
  if (claim.node == i2o::kNullNode) {
    return false;
  }
  if (claim.node == self_) {
    // Rumours about self: anything un-Alive at our incarnation (or
    // ahead of it) is refuted by overtaking the rumour's incarnation.
    Member& me = members_[self_];
    if (claim.status != MemberStatus::Alive &&
        !incarnation_newer(me.incarnation, claim.incarnation)) {
      me.incarnation = claim.incarnation + 1;
      me.status = MemberStatus::Alive;
      ++version_;
      return true;
    }
    // Rejoin catch-up: the cluster remembers a higher incarnation of us
    // than our (possibly stale) checkpoint does. Adopt it, or every
    // future self-claim we gossip would be discarded as stale.
    if (claim.status == MemberStatus::Alive &&
        incarnation_newer(claim.incarnation, me.incarnation)) {
      me.incarnation = claim.incarnation;
      me.status = MemberStatus::Alive;
      ++version_;
      return true;
    }
    return false;
  }
  const auto it = members_.find(claim.node);
  if (it == members_.end()) {
    members_[claim.node] = claim;
    ++version_;
    return true;
  }
  if (wins(claim, it->second)) {
    it->second = claim;
    ++version_;
    return true;
  }
  return false;
}

bool MemberMap::observe(const Member& claim) {
  const std::scoped_lock lock(mutex_);
  return observe_locked(claim);
}

bool MemberMap::suspect(i2o::NodeId node) {
  if (node == self_) {
    return false;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = members_.find(node);
  if (it == members_.end() || it->second.status != MemberStatus::Alive) {
    return false;
  }
  return observe_locked(
      Member{node, it->second.incarnation, MemberStatus::Suspect});
}

bool MemberMap::confirm_dead(i2o::NodeId node) {
  if (node == self_) {
    return false;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = members_.find(node);
  if (it == members_.end() || it->second.status == MemberStatus::Dead) {
    return false;
  }
  return observe_locked(
      Member{node, it->second.incarnation, MemberStatus::Dead});
}

bool MemberMap::note_alive(i2o::NodeId node) {
  if (node == self_) {
    return false;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = members_.find(node);
  if (it == members_.end()) {
    members_[node] = Member{node, 0, MemberStatus::Alive};
    ++version_;
    return true;
  }
  if (it->second.status == MemberStatus::Suspect) {
    it->second.status = MemberStatus::Alive;
    ++version_;
    return true;
  }
  return false;
}

void MemberMap::refute() {
  const std::scoped_lock lock(mutex_);
  Member& me = members_[self_];
  ++me.incarnation;
  me.status = MemberStatus::Alive;
  ++version_;
}

std::optional<Member> MemberMap::get(i2o::NodeId node) const {
  const std::scoped_lock lock(mutex_);
  const auto it = members_.find(node);
  if (it == members_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<Member> MemberMap::members() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Member> out;
  out.reserve(members_.size());
  for (const auto& [node, m] : members_) {
    out.push_back(m);
  }
  return out;
}

std::vector<i2o::NodeId> MemberMap::peers_with_status(
    MemberStatus status) const {
  const std::scoped_lock lock(mutex_);
  std::vector<i2o::NodeId> out;
  for (const auto& [node, m] : members_) {
    if (node != self_ && m.status == status) {
      out.push_back(node);
    }
  }
  return out;
}

std::size_t MemberMap::size() const {
  const std::scoped_lock lock(mutex_);
  return members_.size();
}

namespace {
constexpr std::size_t kMapHeaderBytes = 10;  // u64 version + u16 count
constexpr std::size_t kEntryBytes = 7;       // u16 node + u32 inc + u8 status
}  // namespace

std::vector<std::byte> MemberMap::encode() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::byte> out(kMapHeaderBytes +
                             kEntryBytes * members_.size());
  i2o::put_u64(out, 0, version_);
  i2o::put_u16(out, 8, static_cast<std::uint16_t>(members_.size()));
  std::size_t off = kMapHeaderBytes;
  for (const auto& [node, m] : members_) {
    i2o::put_u16(out, off, m.node);
    i2o::put_u32(out, off + 2, m.incarnation);
    i2o::put_u8(out, off + 6, static_cast<std::uint8_t>(m.status));
    off += kEntryBytes;
  }
  return out;
}

Result<MemberMap::Decoded> MemberMap::decode(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kMapHeaderBytes) {
    return {Errc::InvalidArgument, "member map truncated"};
  }
  Decoded d;
  d.version = i2o::get_u64(bytes, 0);
  const std::size_t count = i2o::get_u16(bytes, 8);
  if (bytes.size() < kMapHeaderBytes + count * kEntryBytes) {
    return {Errc::InvalidArgument, "member map entry list truncated"};
  }
  d.members.reserve(count);
  std::size_t off = kMapHeaderBytes;
  for (std::size_t i = 0; i < count; ++i) {
    Member m;
    m.node = i2o::get_u16(bytes, off);
    m.incarnation = i2o::get_u32(bytes, off + 2);
    const std::uint8_t s = i2o::get_u8(bytes, off + 6);
    if (s > static_cast<std::uint8_t>(MemberStatus::Dead)) {
      return {Errc::InvalidArgument, "member map carries unknown status"};
    }
    m.status = static_cast<MemberStatus>(s);
    d.members.push_back(m);
    off += kEntryBytes;
  }
  return d;
}

std::size_t MemberMap::merge(const Decoded& remote) {
  const std::scoped_lock lock(mutex_);
  std::size_t changed = 0;
  for (const Member& m : remote.members) {
    if (observe_locked(m)) {
      ++changed;
    }
  }
  // The version lattice: never behind any map merged in, strictly ahead
  // when the merge taught us something. Monotonic by construction.
  const std::uint64_t floor =
      changed > 0 ? remote.version + 1 : remote.version;
  if (version_ < floor) {
    version_ = floor;
  }
  return changed;
}

bool MemberMap::raise_version(std::uint64_t floor) {
  const std::scoped_lock lock(mutex_);
  if (version_ >= floor) {
    return false;
  }
  version_ = floor;
  return true;
}

}  // namespace xdaq::cluster
