// hash_ring.hpp - consistent-hash placement of device instances.
//
// The cluster layer places sharded device instances (readout units,
// builder units, service replicas) onto nodes by consistent hashing:
// each node contributes `vnodes` points on a 64-bit ring, and a key is
// owned by the first point at or clockwise after hash(key). Adding or
// removing one node remaps only ~1/N of the keys - the property that
// makes dynamic membership (gossip) and placement compose.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "i2o/types.hpp"

namespace xdaq::cluster {

/// FNV-1a 64-bit; deterministic across platforms and runs.
[[nodiscard]] std::uint64_t stable_hash(std::string_view key) noexcept;

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  void add_node(i2o::NodeId node);
  void remove_node(i2o::NodeId node);
  [[nodiscard]] bool contains(i2o::NodeId node) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  /// The node owning `key`; kNullNode when the ring is empty.
  [[nodiscard]] i2o::NodeId lookup(std::string_view key) const;
  [[nodiscard]] i2o::NodeId lookup(std::uint64_t hash) const;

 private:
  std::size_t vnodes_;
  std::size_t nodes_ = 0;
  /// ring point -> owning node. A std::map keeps lower_bound cheap at
  /// the scale a ring sees (hundreds of points, mutated rarely).
  std::map<std::uint64_t, i2o::NodeId> ring_;
};

}  // namespace xdaq::cluster
