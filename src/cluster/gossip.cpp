#include "cluster/gossip.hpp"

#include "cluster/relay.hpp"
#include "cluster/resolver.hpp"
#include "core/executive.hpp"
#include "i2o/wire.hpp"

namespace xdaq::cluster {

GossipDevice::GossipDevice(i2o::NodeId self, Config cfg)
    : Device("GossipDevice"),
      cfg_(cfg),
      map_(self),
      rng_(cfg.seed ^ (0x9E3779B97F4A7C15ULL * (self + 1))) {}

void GossipDevice::plugin() {
  auto& metrics = executive().metrics();
  sent_ = &metrics.counter("cluster.gossip.sent");
  received_ = &metrics.counter("cluster.gossip.received");
  changes_ = &metrics.counter("cluster.gossip.changes");
  suspected_ = &metrics.counter("cluster.gossip.suspected");
  deaths_ = &metrics.counter("cluster.gossip.dead");
}

Status GossipDevice::on_enable() {
  if (cfg_.period.count() > 0 && timer_id_ == 0) {
    timer_id_ = executive().arm_timer(tid(), cfg_.period, cfg_.period);
  }
  return Status::ok();
}

Status GossipDevice::on_halt() {
  if (timer_id_ != 0) {
    (void)executive().cancel_timer(timer_id_);
    timer_id_ = 0;
  }
  return Status::ok();
}

void GossipDevice::on_timer(std::uint32_t timer_id) {
  (void)timer_id;
  tick();
}

std::vector<std::byte> GossipDevice::make_payload() const {
  const std::vector<std::byte> encoded = map_.encode();
  std::vector<std::byte> payload(2 + encoded.size());
  i2o::put_u16(payload, 0, map_.self());
  std::copy(encoded.begin(), encoded.end(), payload.begin() + 2);
  return payload;
}

void GossipDevice::push_to(i2o::NodeId peer,
                           std::span<const std::byte> payload) {
  if (!attached()) {
    return;
  }
  // Gossip is always addressed to the peer's executive kernel: TiD 1
  // exists on every node, so no per-device discovery is needed.
  auto proxy = executive().resolver().resolve(peer, i2o::kExecutiveTid);
  if (!proxy.is_ok()) {
    return;
  }
  auto frame = make_private_frame(proxy.value(), i2o::OrgId::kXdaq,
                                  kXfnGossip, payload);
  if (!frame.is_ok()) {
    return;
  }
  if (frame_send(std::move(frame).value()).is_ok() && sent_ != nullptr) {
    sent_->add(1);
  }
}

void GossipDevice::tick() {
  const std::uint64_t t = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  // 1. Failure detection on quiet peers.
  std::vector<i2o::NodeId> to_suspect;
  std::vector<i2o::NodeId> to_kill;
  {
    const std::scoped_lock lock(mutex_);
    for (const Member& m : map_.members()) {
      if (m.node == map_.self() || m.status == MemberStatus::Dead) {
        continue;
      }
      const auto [it, first_sight] = last_heard_.try_emplace(m.node, t);
      if (first_sight) {
        continue;  // the quiet clock starts at first sight
      }
      const std::uint64_t quiet = t - it->second;
      if (quiet >= cfg_.dead_after) {
        to_kill.push_back(m.node);
      } else if (quiet >= cfg_.suspect_after) {
        to_suspect.push_back(m.node);
      }
    }
  }
  for (const i2o::NodeId node : to_suspect) {
    if (map_.suspect(node) && suspected_ != nullptr) {
      suspected_->add(1);
    }
  }
  for (const i2o::NodeId node : to_kill) {
    if (map_.confirm_dead(node) && deaths_ != nullptr) {
      deaths_->add(1);
    }
  }

  // 2. Push the map to `fanout` random Alive peers.
  const std::vector<std::byte> payload = make_payload();
  std::vector<i2o::NodeId> alive =
      map_.peers_with_status(MemberStatus::Alive);
  for (std::size_t i = 0; i < cfg_.fanout && !alive.empty(); ++i) {
    const std::size_t j = static_cast<std::size_t>(rng_.below(alive.size()));
    push_to(alive[j], payload);
    alive[j] = alive.back();
    alive.pop_back();
  }

  // 3. Probe one non-Alive peer round-robin. Without this, two halves of
  // a healed partition would each keep the other Dead forever: nobody
  // gossips to the dead, so the refutation cycle never starts.
  std::vector<i2o::NodeId> gone =
      map_.peers_with_status(MemberStatus::Suspect);
  const std::vector<i2o::NodeId> dead =
      map_.peers_with_status(MemberStatus::Dead);
  gone.insert(gone.end(), dead.begin(), dead.end());
  if (!gone.empty()) {
    std::size_t cursor;
    {
      const std::scoped_lock lock(mutex_);
      cursor = probe_cursor_++;
    }
    push_to(gone[cursor % gone.size()], payload);
  }
}

void GossipDevice::on_gossip(std::span<const std::byte> payload) {
  if (payload.size() < 2) {
    return;
  }
  const i2o::NodeId sender = i2o::get_u16(payload, 0);
  auto decoded = MemberMap::decode(payload.subspan(2));
  if (!decoded.is_ok()) {
    return;
  }
  if (received_ != nullptr) {
    received_->add(1);
  }
  const std::size_t changed = map_.merge(decoded.value());
  if (changed > 0 && changes_ != nullptr) {
    changes_->add(changed);
  }
  map_.note_alive(sender);
  {
    const std::uint64_t t = tick_.load(std::memory_order_relaxed);
    const std::scoped_lock lock(mutex_);
    last_heard_[sender] = t;
    for (const Member& m : decoded.value().members) {
      last_heard_.try_emplace(m.node, t);
    }
  }
  // Route learning: members we cannot reach at all become relay-routed
  // through the peer that told us about them.
  if (attached()) {
    RouteTable& routes = executive().resolver().routes();
    for (const Member& m : decoded.value().members) {
      if (m.node == map_.self() || m.status == MemberStatus::Dead) {
        continue;
      }
      if (routes.next_hop(m.node).kind == NextHop::Kind::None) {
        routes.set_relay(m.node, sender);
      }
    }
  }
}

void GossipDevice::on_peer_down(i2o::NodeId node) {
  if (map_.suspect(node) && suspected_ != nullptr) {
    suspected_->add(1);
  }
}

}  // namespace xdaq::cluster
