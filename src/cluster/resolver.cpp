#include "cluster/resolver.hpp"

namespace xdaq::cluster {

Result<i2o::Tid> Resolver::resolve(i2o::NodeId node, i2o::Tid remote_tid,
                                   const std::string& name) {
  if (node == i2o::kNullNode || node == self_) {
    return {Errc::InvalidArgument, "resolve() is for remote nodes"};
  }
  const NextHop hop = routes_.next_hop(node);
  switch (hop.kind) {
    case NextHop::Kind::Direct:
      return intern_(node, remote_tid, hop.via_pt, name);
    case NextHop::Kind::Relay: {
      // The relay hop must itself be directly reachable, or nothing we
      // send can leave this node.
      const NextHop via = routes_.next_hop(hop.relay_node);
      if (via.kind != NextHop::Kind::Direct) {
        return {Errc::Unavailable,
                "relay hop for node " + std::to_string(node) +
                    " is not directly reachable"};
      }
      // kNullTid marks the proxy relay-routed: frame_send re-consults the
      // route table per frame and wraps in an envelope.
      return intern_(node, remote_tid, i2o::kNullTid, name);
    }
    case NextHop::Kind::None:
      break;
  }
  return {Errc::Unroutable, "no route to node " + std::to_string(node)};
}

Result<i2o::Tid> Resolver::resolve_via(i2o::NodeId node, i2o::Tid remote_tid,
                                       i2o::Tid via_pt,
                                       const std::string& name) {
  if (node == i2o::kNullNode || node == self_) {
    return {Errc::InvalidArgument, "resolve_via() is for remote nodes"};
  }
  if (via_pt == i2o::kNullTid) {
    return {Errc::InvalidArgument, "resolve_via() needs a peer transport"};
  }
  return intern_(node, remote_tid, via_pt, name);
}

}  // namespace xdaq::cluster
