#include "cluster/relay.hpp"

#include "i2o/wire.hpp"

namespace xdaq::cluster {

void encode_relay_header(const RelayHeader& hdr,
                         std::span<std::byte> payload) {
  i2o::put_u16(payload, 0, hdr.src);
  i2o::put_u16(payload, 2, hdr.dst);
  i2o::put_u8(payload, 4, hdr.ttl);
  i2o::put_u8(payload, 5, 0);
  i2o::put_u16(payload, 6, 0);
  i2o::put_u32(payload, 8, hdr.inner_len);
}

Result<RelayHeader> decode_relay_header(std::span<const std::byte> payload) {
  if (payload.size() < kRelayHeaderBytes) {
    return {Errc::InvalidArgument, "relay envelope truncated"};
  }
  RelayHeader hdr;
  hdr.src = i2o::get_u16(payload, 0);
  hdr.dst = i2o::get_u16(payload, 2);
  hdr.ttl = i2o::get_u8(payload, 4);
  hdr.inner_len = i2o::get_u32(payload, 8);
  // The envelope payload is word-padded, so inner_len may be up to three
  // bytes short of what remains - never more.
  if (hdr.inner_len > payload.size() - kRelayHeaderBytes) {
    return {Errc::InvalidArgument, "relay inner frame overruns envelope"};
  }
  if (hdr.dst == i2o::kNullNode) {
    return {Errc::InvalidArgument, "relay envelope has no destination"};
  }
  return hdr;
}

void patch_relay_ttl(std::span<std::byte> payload, std::uint8_t ttl) {
  i2o::put_u8(payload, 4, ttl);
}

std::span<const std::byte> relay_inner(
    const RelayHeader& hdr, std::span<const std::byte> payload) noexcept {
  return payload.subspan(kRelayHeaderBytes, hdr.inner_len);
}

}  // namespace xdaq::cluster
