// route_table.hpp - NodeId -> next hop, the cluster's forwarding state.
//
// Replaces the executive's old flat `node -> via_pt` map. Each entry now
// distinguishes a *direct* hop (a local peer transport reaches the node)
// from a *relay* hop (frames must be wrapped in a relay envelope and sent
// to an intermediate node that is itself routable). Read-mostly: every
// proxy send consults it, membership changes mutate it rarely.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "i2o/types.hpp"

namespace xdaq::cluster {

struct NextHop {
  enum class Kind : std::uint8_t { None = 0, Direct = 1, Relay = 2 };
  Kind kind = Kind::None;
  /// Direct: the local peer-transport TiD that reaches the node.
  i2o::Tid via_pt = i2o::kNullTid;
  /// Relay: the intermediate node the envelope is addressed to. The
  /// relay node must itself resolve to a Direct hop.
  i2o::NodeId relay_node = i2o::kNullNode;
};

class RouteTable {
 public:
  void set_direct(i2o::NodeId node, i2o::Tid via_pt);
  void set_relay(i2o::NodeId node, i2o::NodeId relay_node);
  void erase(i2o::NodeId node);
  void clear();

  /// The hop for `node`; Kind::None when unroutable.
  [[nodiscard]] NextHop next_hop(i2o::NodeId node) const;
  [[nodiscard]] std::size_t size() const;
  /// Nodes with a Direct entry (relay candidates).
  [[nodiscard]] std::vector<i2o::NodeId> direct_nodes() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<i2o::NodeId, NextHop> hops_;
};

}  // namespace xdaq::cluster
