#include "cluster/hash_ring.hpp"

namespace xdaq::cluster {

std::uint64_t stable_hash(std::string_view key) noexcept {
  // FNV-1a 64-bit with a final avalanche mix (splitmix64 finalizer) so
  // short numeric keys spread over the whole ring.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

namespace {
std::uint64_t vnode_point(i2o::NodeId node, std::size_t replica) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "n%u#%zu",
                              static_cast<unsigned>(node), replica);
  return stable_hash(std::string_view(buf, static_cast<std::size_t>(n)));
}
}  // namespace

void HashRing::add_node(i2o::NodeId node) {
  if (node == i2o::kNullNode || contains(node)) {
    return;
  }
  for (std::size_t r = 0; r < vnodes_; ++r) {
    // emplace keeps an existing point's owner on the (astronomically
    // unlikely) collision, which keeps add/remove symmetric.
    ring_.emplace(vnode_point(node, r), node);
  }
  ++nodes_;
}

void HashRing::remove_node(i2o::NodeId node) {
  if (!contains(node)) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  --nodes_;
}

bool HashRing::contains(i2o::NodeId node) const {
  for (const auto& [point, owner] : ring_) {
    if (owner == node) {
      return true;
    }
  }
  return false;
}

i2o::NodeId HashRing::lookup(std::string_view key) const {
  return lookup(stable_hash(key));
}

i2o::NodeId HashRing::lookup(std::uint64_t hash) const {
  if (ring_.empty()) {
    return i2o::kNullNode;
  }
  const auto it = ring_.lower_bound(hash);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

}  // namespace xdaq::cluster
